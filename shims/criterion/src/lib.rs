//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal wall-clock harness with criterion's surface API: `Criterion`,
//! `benchmark_group`, `bench_with_input`/`bench_function`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Behavior:
//!
//! * normal runs warm up briefly, then time batches of iterations until the
//!   group's `measurement_time` budget is spent, and print
//!   `group/function/param  time: <median per iter>`;
//! * `cargo bench -- --test` runs every closure exactly once (smoke mode),
//!   matching criterion's own `--test` flag used by CI.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The harness entry point, holding global options parsed from the CLI.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that the shim safely ignores.
                "--bench" | "--verbose" | "-n" | "--noplot" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = id.to_string();
        let mut group = self.benchmark_group("bench");
        group.run(&label, &mut f);
    }
}

/// Identifier `function/parameter` for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (kept for API compatibility; the shim
    /// uses the time budget as the primary knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label.clone();
        self.run(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks a closure with no extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let label = id.to_string();
        self.run(&label, &mut f);
        self
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if bencher.test_mode {
            println!("test {full} ... ok (smoke)");
        } else if let Some(median) = bencher.median_ns() {
            println!("{full:<55} time: {}", format_ns(median));
        }
    }

    /// Ends the group (printing is done per benchmark; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Runs and times one benchmark body.
pub struct Bencher {
    test_mode: bool,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Calls `f` repeatedly and records per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64();
        let total_iters = ((budget / est_per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        let samples = self.sample_size.max(1) as u64;
        let iters_per_sample = (total_iters / samples).max(1);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let per_iter = t0.elapsed().as_secs_f64() / iters_per_sample as f64;
            self.samples.push(per_iter * 1e9);
        }
    }

    fn median_ns(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        Some(sorted[sorted.len() / 2])
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function calling each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_as_function_slash_param() {
        assert_eq!(BenchmarkId::new("dense", 64).to_string(), "dense/64");
    }

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measurement_records_samples() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("noop", 1), &7u32, |b, &x| {
            b.iter(|| std::hint::black_box(x + 1))
        });
        group.finish();
    }
}
