//! Derive macros for the offline `serde` shim.
//!
//! Supports exactly the item shapes present in this workspace:
//!
//! * structs with named fields → JSON objects in declaration order,
//! * tuple structs with one field (newtypes) → the inner value,
//! * fieldless enums → the variant name as a JSON string.
//!
//! `Deserialize` is accepted but generates nothing (no caller deserializes).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::FieldlessEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("Self::{v} => ::serde::Value::String(\"{v}\".to_string())"))
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let output = format!(
        "impl ::serde::Serialize for {} {{ fn to_value(&self) -> ::serde::Value {{ {} }} }}",
        item.name, body
    );
    output.parse().expect("generated impl parses")
}

/// Accepted for compatibility; generates no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Shape {
    NamedStruct(Vec<String>),
    Newtype,
    FieldlessEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility up to `struct` / `enum`.
    let kind = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            TokenTree::Ident(id) if id.to_string() == "struct" => break "struct",
            TokenTree::Ident(id) if id.to_string() == "enum" => break "enum",
            _ => i += 1,
        }
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    let group = loop {
        match &tokens[i] {
            TokenTree::Group(g) => break g,
            _ => i += 1,
        }
    };
    let shape = match (kind, group.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::NamedStruct(named_fields(group.stream())),
        ("struct", Delimiter::Parenthesis) => {
            let commas = top_level_commas(group.stream());
            assert!(
                commas == 0,
                "derive(Serialize) shim only supports single-field tuple structs"
            );
            Shape::Newtype
        }
        ("enum", Delimiter::Brace) => Shape::FieldlessEnum(enum_variants(group.stream())),
        other => panic!("unsupported item shape {other:?}"),
    };
    Item { name, shape }
}

/// Splits a brace-group token stream on commas that sit outside `<...>`.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("nonempty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn top_level_commas(stream: TokenStream) -> usize {
    split_top_level(stream).len().saturating_sub(1)
}

/// Field names of a named struct: in each comma chunk, the identifier
/// immediately before the first top-level `:` (skipping attributes and
/// visibility).
fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut last_ident: Option<String> = None;
            for tt in &chunk {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == ':' => {
                        return last_ident.expect("field name before `:`");
                    }
                    TokenTree::Ident(id) => last_ident = Some(id.to_string()),
                    _ => {}
                }
            }
            panic!("struct field chunk without `:`")
        })
        .collect()
}

/// Variant names of a fieldless enum (skipping doc attributes).
fn enum_variants(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut iter = chunk.into_iter().peekable();
            loop {
                match iter.next().expect("variant name") {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        iter.next(); // skip the bracket group
                    }
                    TokenTree::Ident(id) => return id.to_string(),
                    _ => {}
                }
            }
        })
        .collect()
}
