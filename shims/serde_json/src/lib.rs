//! Offline stand-in for the `serde_json` crate, layered on the `serde` shim.
//!
//! Provides [`Value`] (re-exported from the shim `serde`), [`to_value`],
//! [`to_string`], [`to_string_pretty`], a [`from_str`] parser (enough JSON to
//! round-trip this workspace's own output — used by the bench harness to diff
//! `BENCH_rpq.json` against the committed snapshot), and a [`json!`] macro
//! supporting the flat `json!({ "key": expr, ... })` object form (plus bare
//! expressions and `json!([ ... ])` arrays).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::Serialize;

/// Serialization error (the shim's direct-to-value encoding cannot fail, but
/// the `Result` API mirrors the real crate).
#[derive(Debug, Clone)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serialization error")
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize>(value: T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to an indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into a [`Value`] tree.
///
/// Supports the full value grammar this workspace emits: objects, arrays,
/// strings with `\uXXXX` and the common escapes, integers, floats (including
/// exponents), booleans, and `null`.  Trailing garbage is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(()));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(()))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error(())),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(())),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => parse_number(bytes, pos),
        None => Err(Error(())),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(Error(()))?;
                        let hex = std::str::from_utf8(hex).map_err(|_| Error(()))?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| Error(()))?;
                        // Surrogate pairs don't occur in this workspace's
                        // output; reject rather than mis-decode.
                        out.push(char::from_u32(code).ok_or(Error(()))?);
                        *pos += 4;
                    }
                    _ => return Err(Error(())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences intact).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| Error(()))?;
                let c = rest.chars().next().ok_or(Error(()))?;
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err(Error(())),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error(()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(()));
    }
    if is_float {
        text.parse::<f64>().map(Value::Float).map_err(|_| Error(()))
    } else {
        text.parse::<i128>().map(Value::Int).map_err(|_| Error(()))
    }
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let rendered = format!("{x}");
                out.push_str(&rendered);
                // Integral floats format without a decimal point ("0", not
                // "0.0"); keep the float-ness on the wire so the value
                // re-parses as Float, not Int.
                if !rendered.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from a flat object, array, or single expression.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$value).expect("shim to_value is infallible")) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $( $crate::to_value(&$item).expect("shim to_value is infallible") ),*
        ])
    };
    (null) => { $crate::Value::Null };
    ($other:expr) => {
        $crate::to_value(&$other).expect("shim to_value is infallible")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_matches_serde_json_shape() {
        let v = json!({ "exact": false, "query": "a·(b+c)", "n": 3 });
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"exact\":false,\"query\":\"a·(b+c)\",\"n\":3}");
    }

    #[test]
    fn pretty_rendering_is_indented_and_reparsable_shape() {
        let v = json!({ "rows": vec![json!({ "k": 1 })] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"rows\": ["));
    }

    #[test]
    fn escapes_quotes_and_controls() {
        let s = to_string("a\"b\\c\nd").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn index_and_eq_work_through_the_reexport() {
        let v = json!({ "flag": true });
        assert_eq!(v["flag"], Value::Bool(true));
    }

    #[test]
    fn from_str_round_trips_own_output() {
        let v = json!({
            "name": "rpq eval |V|=2000",
            "dense_ms": 12.5,
            "count": 42,
            "neg": -3,
            "flags": vec![true, false],
            "nested": json!({ "unicode": "a·b\nε", "none": Value::Null }),
        });
        for rendered in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let parsed = from_str(&rendered).expect("own output parses");
            assert_eq!(parsed, v, "round trip through {rendered}");
        }
        // Exponent floats parse; numeric accessors widen integers.
        assert_eq!(from_str("1.5e3").unwrap().as_f64(), Some(1500.0));
        assert_eq!(v["count"].as_f64(), Some(42.0));
        assert_eq!(v["flags"].as_array().map(<[Value]>::len), Some(2));
    }

    #[test]
    fn integral_floats_stay_floats_on_the_wire() {
        // A `Float(0.0)` must render as "0.0", not "0" — otherwise the value
        // re-parses as Int and snapshot diffs see the type flip.
        let v = json!({ "rejection_rate": 0.0, "neg": -0.0, "big": 1e21, "half": 0.5 });
        let s = to_string(&v).unwrap();
        assert!(s.contains("\"rejection_rate\":0.0"), "got {s}");
        assert!(s.contains("\"half\":0.5"), "got {s}");
        let parsed = from_str(&s).unwrap();
        assert!(matches!(parsed["rejection_rate"], Value::Float(_)));
        assert!(matches!(parsed["neg"], Value::Float(_)));
        assert!(matches!(parsed["big"], Value::Float(_)));
        assert_eq!(parsed, v);
    }

    #[test]
    fn from_str_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "12 34", "\"unterminated", "truthy"] {
            assert!(from_str(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn from_str_handles_escapes_and_empty_containers() {
        let v = from_str(r#"{"s":"a\"b\\cé","arr":[],"obj":{}}"#).unwrap();
        assert_eq!(v["s"].as_str(), Some("a\"b\\cé"));
        assert_eq!(v["arr"], Value::Array(vec![]));
        assert_eq!(v["obj"], Value::Object(vec![]));
    }
}
