//! Offline stand-in for the `serde_json` crate, layered on the `serde` shim.
//!
//! Provides [`Value`] (re-exported from the shim `serde`), [`to_value`],
//! [`to_string`], [`to_string_pretty`] and a [`json!`] macro supporting the
//! flat `json!({ "key": expr, ... })` object form (plus bare expressions and
//! `json!([ ... ])` arrays), which is the surface this workspace uses.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::Serialize;

/// Serialization error (the shim's direct-to-value encoding cannot fail, but
/// the `Result` API mirrors the real crate).
#[derive(Debug, Clone)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serialization error")
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize>(value: T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to an indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from a flat object, array, or single expression.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$value).expect("shim to_value is infallible")) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $( $crate::to_value(&$item).expect("shim to_value is infallible") ),*
        ])
    };
    (null) => { $crate::Value::Null };
    ($other:expr) => {
        $crate::to_value(&$other).expect("shim to_value is infallible")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_matches_serde_json_shape() {
        let v = json!({ "exact": false, "query": "a·(b+c)", "n": 3 });
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"exact\":false,\"query\":\"a·(b+c)\",\"n\":3}");
    }

    #[test]
    fn pretty_rendering_is_indented_and_reparsable_shape() {
        let v = json!({ "rows": vec![json!({ "k": 1 })] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"rows\": ["));
    }

    #[test]
    fn escapes_quotes_and_controls() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn index_and_eq_work_through_the_reexport() {
        let v = json!({ "flag": true });
        assert_eq!(v["flag"], Value::Bool(true));
    }
}
