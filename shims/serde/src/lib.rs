//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal serialization facility with serde's surface syntax: a
//! [`Serialize`] trait (here rendering directly to a JSON [`Value`] rather
//! than through a generic `Serializer`), a no-op `Deserialize` derive, and
//! `#[derive(Serialize)]` support via the sibling `serde_derive` shim.
//! The `serde_json` shim builds its `to_string`/`to_value`/`json!` API on
//! top of this crate.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree (the shim's serialization target).
///
/// Objects preserve insertion order so serialized field order matches
/// declaration order, like `serde_json` with default settings.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Integer numbers (covers every integer width used in the workspace).
    Int(i128),
    /// Floating-point numbers.
    Float(f64),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`: floats directly, integers widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries of an object value, in insertion order.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // May exceed i128; fall back to a decimal string in that case.
        match i128::try_from(*self) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_round_trip_shapes() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Some(3u32).to_value(), Value::Int(3));
        assert_eq!(
            vec!["a".to_string()].to_value(),
            Value::Array(vec![Value::String("a".into())])
        );
    }

    #[test]
    fn object_indexing_finds_keys() {
        let v = Value::Object(vec![("k".into(), Value::Bool(true))]);
        assert_eq!(v["k"], Value::Bool(true));
        assert_eq!(v["missing"], Value::Null);
    }
}
