//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, API-compatible subset of `rand` sufficient for its seeded
//! generators: [`rngs::StdRng`] (a xoshiro256++ generator seeded via
//! SplitMix64), the [`Rng`] extension trait (`gen`, `gen_bool`, `gen_range`)
//! and [`SeedableRng::seed_from_u64`].
//!
//! The stream of values differs from the real `rand` crate (callers only rely
//! on determinism-per-seed, not on specific values), but the statistical
//! quality is comparable: xoshiro256++ is the generator family behind
//! `rand`'s own `SmallRng`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a uniform value of type `T` from raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; the tiny modulo bias of a
                // 64-bit draw over test-sized spans is irrelevant here.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        f64::sample_standard(self) < p
    }

    /// Draws a uniform value from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A seeded xoshiro256++ generator (deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
