//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` inner attribute, `arg in range`
//! argument strategies over integer ranges, and the
//! [`prop_assert!`]/[`prop_assert_eq!`] assertion macros.  Inputs are sampled
//! deterministically (seeded per test by case index), with no shrinking —
//! failures print the sampled arguments via the panic message instead.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A source of random test inputs (the shim's strategy notion).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Runs one property over `config.cases` sampled inputs.
///
/// Used by the [`proptest!`] macro expansion; not meant to be called
/// directly.
pub fn run_cases(config: &ProptestConfig, test_name: &str, mut body: impl FnMut(&mut StdRng, u32)) {
    // Seed deterministically from the test name so runs are reproducible.
    let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        name_hash ^= b as u64;
        name_hash = name_hash.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(name_hash ^ (case as u64).wrapping_mul(0x9e37_79b9));
        body(&mut rng, case);
    }
}

/// Declares property tests over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(&config, stringify!($name), |rng, _case| {
                    $(let $arg = $crate::Strategy::sample(&$strategy, rng);)*
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a property (plain `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The glob-imported prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn sampled_values_stay_in_range(x in 0u64..50, y in 3usize..9) {
            prop_assert!(x < 50);
            prop_assert!((3..9).contains(&y));
        }
    }

    #[test]
    fn run_cases_is_deterministic() {
        let config = ProptestConfig {
            cases: 8,
            ..ProptestConfig::default()
        };
        let mut first = Vec::new();
        super::run_cases(&config, "t", |rng, _| {
            first.push(Strategy::sample(&(0u64..1000), rng))
        });
        let mut second = Vec::new();
        super::run_cases(&config, "t", |rng, _| {
            second.push(Strategy::sample(&(0u64..1000), rng))
        });
        assert_eq!(first, second);
    }
}
