//! The lower-bound machinery of §3.2, run on feasible instances.
//!
//! Theorem 3.3 reduces bounded tiling to nonemptiness of the maximal
//! rewriting; Theorem 3.4 exhibits poly-size instances whose shortest
//! rewriting is astronomically long.  This example runs the reduction on
//! width-2 instances, validates it at the word level against the brute-force
//! tiling solver, and prints the doubly exponential yardstick the paper's
//! counter construction forces.
//!
//! (Materializing the *full* rewriting automaton of these instances is
//! exactly what the lower bound says is expensive; the ignored tests of the
//! `tiling` crate do it for the smallest instance if you have the patience.)
//!
//! Run with: `cargo run --release --example lower_bounds`

use tiling::{
    counter_word, counter_word_length, exponential_family, solve, EncodedTiling, TileSystem,
};

fn main() {
    println!("== Theorem 3.3: tiling ⇔ tiling word in the rewriting (n = 1, rows of width 2) ==\n");
    for (name, system) in [
        ("solvable chain", TileSystem::solvable_chain()),
        ("striped", TileSystem::striped()),
        ("unsolvable", TileSystem::unsolvable()),
    ] {
        let witness = solve(&system, 2, 6);
        let encoded = EncodedTiling::encode(&system, 1);
        println!("tile system `{name}`:");
        println!(
            "  reduction output size (|E0| + |E|)  : {}",
            encoded.instance_size()
        );
        println!("  tiling of a 2×k region exists       : {}", witness.is_some());
        match &witness {
            Some(tiling) => {
                let word: Vec<String> = tiling.iter().flatten().cloned().collect();
                let refs: Vec<&str> = word.iter().map(String::as_str).collect();
                let accepted = encoded.word_in_rewriting(&refs);
                println!("  solver witness word                 : {}", word.join("·"));
                println!("  witness accepted by the rewriting   : {accepted}");
                for (i, row) in tiling.iter().enumerate().rev() {
                    println!("     row {i}: {}", row.join(" "));
                }
                assert!(accepted, "Theorem 3.3: valid tilings are rewriting words");
            }
            None => {
                // Every width-2 candidate word must be rejected.
                let tiles: Vec<&str> = system.tiles.iter().map(String::as_str).collect();
                let any_accepted = tiles
                    .iter()
                    .any(|&a| tiles.iter().any(|&b| encoded.word_in_rewriting(&[a, b])));
                println!("  some 2-tile word in the rewriting   : {any_accepted}");
                assert!(!any_accepted, "Theorem 3.3: no tiling ⇒ no tiling word");
            }
        }
        println!();
    }

    println!("== Theorem 3.4: tiny inputs, enormous rewritings ==\n");
    println!("first exponential level (validated at the word level):");
    for n in 1..=3usize {
        let enc = exponential_family(n);
        let width = enc.row_width();
        let mut word: Vec<&str> = vec!["s"];
        word.extend(std::iter::repeat_n("m", width - 2));
        word.push("f");
        let accepted = enc.word_in_rewriting(&word);
        println!(
            "  n = {n}: instance size {:>5}, the unique tiling word has length 2^{n} = {width} (accepted: {accepted})",
            enc.instance_size()
        );
    }

    println!("\nthe full counter construction's yardstick |w_C| = 2^n · 2^(2^n):");
    for n in 1..=4u32 {
        println!("  n = {n}: {} blocks", counter_word_length(n));
    }
    let wc = counter_word(4);
    println!(
        "\nfor a 4-bit counter the evolution word has {} blocks; its first configuration reads {:?}",
        wc.len(),
        wc.iter().take(4).map(|b| b.symbol()).collect::<Vec<_>>()
    );
}
