//! Travel portal scenario: answering a regular path query through
//! materialized views over a semi-structured database.
//!
//! The paper's introduction motivates regular path queries with requests such
//! as "all pairs of objects connected by a path that mentions Rome or
//! Jerusalem and ends at a restaurant".  This example builds a small travel
//! graph, materializes three views, rewrites the query in terms of the views
//! and shows that evaluating the rewriting over the view extensions gives the
//! same answer as evaluating the query over the base data.
//!
//! Run with: `cargo run --example travel_views`

use graphdb::{eval_str, render_answer, travel_graph};
use rpq::{
    answer_rewriting_over_views, answer_rpq, compare_on_database, rewrite_rpq, RpqRewriteProblem,
};

fn main() {
    // A synthetic travel site: a hub with landmark edges (rome / jerusalem)
    // to cities, flight edges between cities, and restaurant / museum edges.
    let db = travel_graph(8);
    println!("database: {}", db.describe());

    // The query of the introduction, specialized to this label domain:
    // follow a landmark edge, then any number of flights, then a restaurant.
    let query_src = "(rome+jerusalem)·flight*·restaurant";
    let direct = eval_str(&db, query_src);
    println!("\ndirect evaluation of {query_src}: {} answers", direct.len());
    for (x, y) in render_answer(&db, &direct).iter().take(5) {
        println!("  {x} ↝ {y}");
    }

    // The data provider only exposes three views:
    //   v_landmark : a landmark edge (rome or jerusalem)
    //   v_hop      : a single flight
    //   v_eat      : a restaurant edge
    let problem = RpqRewriteProblem::parse_labels(
        "(rome+jerusalem)·flight*·restaurant",
        [
            ("v_landmark", "rome+jerusalem"),
            ("v_hop", "flight"),
            ("v_eat", "restaurant"),
        ],
    )
    .expect("well-formed problem");

    let rewriting = rewrite_rpq(&problem).expect("rewriting can be computed");
    println!("\nmaximal rewriting over the views : {}", rewriting.regex());
    println!("exact                            : {}", rewriting.is_exact());

    // Evaluate the original query and the rewriting-over-views side by side.
    let via_views = answer_rewriting_over_views(&db, &problem, &rewriting);
    let direct = answer_rpq(&db, &problem.query, &problem.theory);
    println!("\nanswers via base data : {}", direct.len());
    println!("answers via views     : {}", via_views.len());
    assert_eq!(direct, via_views, "the rewriting is exact, so answers agree");

    let cmp = compare_on_database(&db, &problem, &rewriting);
    println!(
        "soundness: {}   completeness: {}   materialized view tuples: {}",
        cmp.sound, cmp.complete, cmp.view_tuples
    );

    // Now restrict the provider: no restaurant view.  The rewriting becomes
    // empty — no combination of the remaining views is contained in the
    // query — so view-based answering returns nothing, which is still sound.
    let restricted = RpqRewriteProblem::parse_labels(
        "(rome+jerusalem)·flight*·restaurant",
        [("v_landmark", "rome+jerusalem"), ("v_hop", "flight")],
    )
    .expect("well-formed problem");
    let rewriting = rewrite_rpq(&restricted).expect("rewriting can be computed");
    println!("\nwithout the restaurant view:");
    println!("  maximal rewriting : {}", rewriting.regex());
    println!("  exact             : {}", rewriting.is_exact());
    let via_views = answer_rewriting_over_views(&db, &restricted, &rewriting);
    println!("  answers via views : {}", via_views.len());
}
