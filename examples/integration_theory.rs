//! Data-integration scenario with a background theory and partial rewritings.
//!
//! Section 4 of the paper considers queries written over *formulae* of a
//! decidable complete theory rather than over raw edge labels: a mediator
//! knows that every `EuropeanCity` is a `City`, sources expose views over
//! some of the predicates, and the integration layer must rewrite the user's
//! query over whatever views exist — adding the cheapest possible atomic
//! views (§4.3) when no exact rewriting is available.
//!
//! Run with: `cargo run --example integration_theory`

use automata::Alphabet;
use graphdb::{Formula, GraphDb, Theory};
use regexlang::parse;
use rpq::{
    answer_rewriting_over_views, answer_rpq, find_partial_rewriting, rewrite_rpq, Rpq,
    RpqRewriteProblem,
};

fn main() {
    // The label domain of the integrated graph: city landmarks plus two kinds
    // of amenity edges.
    let domain = Alphabet::from_names(["rome", "paris", "jerusalem", "restaurant", "museum"])
        .expect("distinct labels");
    // The background theory: unary predicates interpreted over the domain.
    let theory = Theory::new(
        domain.clone(),
        [
            (
                "City".to_string(),
                vec!["rome".to_string(), "paris".to_string(), "jerusalem".to_string()],
            ),
            (
                "EuropeanCity".to_string(),
                vec!["rome".to_string(), "paris".to_string()],
            ),
            (
                "Amenity".to_string(),
                vec!["restaurant".to_string(), "museum".to_string()],
            ),
        ],
    );

    // The user asks for: a City edge followed by any number of City edges,
    // ending with an Amenity edge.
    let query = Rpq::new(
        parse("City·City*·Amenity").expect("parses"),
        [
            ("City".to_string(), Formula::pred("City")),
            ("Amenity".to_string(), Formula::pred("Amenity")),
        ],
    )
    .expect("all formula names bound");
    println!("user query           : {query}");
    println!("grounded over domain : {}", query.ground(&theory));

    // The only available sources: European city hops and restaurant edges.
    let v_euro = Rpq::new(
        parse("EuropeanCity").expect("parses"),
        [("EuropeanCity".to_string(), Formula::pred("EuropeanCity"))],
    )
    .expect("bound");
    let v_rest = Rpq::parse_labels("restaurant").expect("parses");
    let problem = RpqRewriteProblem::new(
        query,
        [("src_euro".to_string(), v_euro), ("src_rest".to_string(), v_rest)],
        theory,
    )
    .expect("well-formed problem");

    // 1. The maximal rewriting over the available sources is sound but not
    //    exact: it misses non-European cities and museums.
    let rewriting = rewrite_rpq(&problem).expect("rewriting can be computed");
    println!("\nmaximal rewriting    : {}", rewriting.regex());
    println!("exact                : {}", rewriting.is_exact());
    println!(
        "missed query word    : {:?}",
        rewriting.exactness.counterexample
    );

    // 2. §4.3: extend the source catalogue with the cheapest atomic views
    //    that make the rewriting exact.
    let partial = find_partial_rewriting(&problem).expect("elementary views always suffice");
    let added: Vec<String> = partial.added.iter().map(|v| v.symbol()).collect();
    println!("\nadded atomic views   : {added:?}");
    println!("partial rewriting    : {}", partial.rewriting.regex());
    println!("exact now            : {}", partial.rewriting.is_exact());

    // 3. Evaluate everything over a concrete integrated graph and compare.
    let mut db = GraphDb::new(domain);
    db.add_edge_named("start", "rome", "rome_city");
    db.add_edge_named("rome_city", "paris", "paris_city");
    db.add_edge_named("paris_city", "jerusalem", "jlm_city");
    db.add_edge_named("jlm_city", "restaurant", "falafel_place");
    db.add_edge_named("paris_city", "museum", "louvre");
    db.add_edge_named("rome_city", "restaurant", "trattoria");

    let direct = answer_rpq(&db, &problem.query, &problem.theory);
    let via_available = answer_rewriting_over_views(&db, &problem, &rewriting);
    let via_extended = answer_rewriting_over_views(
        &db,
        &partial.extended_problem,
        &partial.rewriting,
    );
    println!("\nanswers on the integrated graph:");
    println!("  direct evaluation            : {}", direct.len());
    println!("  via the available sources    : {}", via_available.len());
    println!("  via the extended catalogue   : {}", via_extended.len());
    assert!(via_available.is_subset(&direct));
    assert_eq!(via_extended, direct);
}
