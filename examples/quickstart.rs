//! Quickstart: rewrite a regular expression in terms of views.
//!
//! This reproduces the paper's running example (Example 2.2 / Figure 1):
//! the query `a·(b·a+c)*` is rewritten in terms of the views
//! `e1 := a`, `e2 := a·c*·b`, `e3 := c`, giving the exact rewriting
//! `e2*·e1·e3*`.
//!
//! Run with: `cargo run --example quickstart`

use rewriter::{rewrite, RewriteProblem};

fn main() {
    // 1. State the problem: a query E0 and named views over the same
    //    alphabet, all in the paper's concrete syntax.
    let problem = RewriteProblem::parse(
        "a·(b·a+c)*",
        [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
    )
    .expect("well-formed problem");

    println!("query E0 : {}", problem.query);
    println!("views E  : {}", problem.views.render());

    // 2. Compute the Σ_E-maximal rewriting and check whether it is exact.
    let (rewriting, exactness) = rewrite(&problem);

    println!("\nmaximal rewriting R : {}", rewriting.regex());
    println!("rewriting automaton : {} states", rewriting.automaton.num_states());
    println!("exact               : {}", exactness.exact);

    // 3. The rewriting is a language over the view symbols; ask it questions.
    println!("\nmembership checks over the view alphabet:");
    for word in [vec!["e1"], vec!["e2", "e1", "e3"], vec!["e3", "e1"], vec![]] {
        println!("  {:?} -> {}", word, rewriting.accepts(&word));
    }

    // 4. Every word of the rewriting expands to words of the original query:
    //    here is the shortest member and its expansion.
    if let Some(word) = rewriting.shortest_word() {
        let refs: Vec<&str> = word.iter().map(String::as_str).collect();
        let expansion = problem
            .views
            .expand_regex(&regexlang::parse(&refs.join("·")).unwrap());
        println!("\nshortest rewriting word : {}", refs.join("·"));
        println!("its expansion over Σ    : {expansion}");
    }

    // 5. Drop the view `c` and the best rewriting is no longer exact
    //    (Example 2.3): the exactness report provides a counterexample word
    //    of L(E0) that the views can no longer produce.
    let smaller = RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b")])
        .expect("well-formed problem");
    let (rewriting, exactness) = rewrite(&smaller);
    println!("\nwithout the view c:");
    println!("  maximal rewriting : {}", rewriting.regex());
    println!("  exact             : {}", exactness.exact);
    println!("  missed query word : {:?}", exactness.counterexample);
}
