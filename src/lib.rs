//! Workspace facade for the PODS'99 rewriting reproduction.
//!
//! This crate exists to anchor the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); it simply re-exports the
//! member crates so downstream code can depend on one package:
//!
//! * [`automata`] — NFAs/DFAs, the dense bitset/CSR core, determinization,
//!   products, containment;
//! * [`regexlang`] — the paper's regular-expression language and
//!   translations;
//! * [`graphdb`] — edge-labeled graph databases and RPQ evaluation;
//! * [`engine`] — the stateful query engine: parallel evaluation, compile
//!   and view-extension caches, incremental maintenance under insertion;
//! * [`rewriter`] — the Σ_E-maximal rewriting construction and exactness;
//! * [`rpq`] — regular path query rewriting over views (§4);
//! * [`tiling`] — the lower-bound constructions (§3.2).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use automata;
pub use engine;
pub use graphdb;
pub use regexlang;
pub use rewriter;
pub use rpq;
pub use tiling;
