//! Fault injection against a live server: malformed frames, oversized
//! input, disconnects, deadline storms, queue overflow, admission
//! rejection, and graceful shutdown.  The invariant under test everywhere:
//! the server never panics, never wedges, and keeps serving well-formed
//! traffic after every abuse.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use automata::Alphabet;
use graphdb::GraphDb;
use serde_json::Value;
use service::{Server, ServiceConfig};

// ---------------------------------------------------------------------------
// Harness

fn small_db() -> GraphDb {
    let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
    db.add_edge_named("n0", "a", "n1");
    db.add_edge_named("n1", "b", "n2");
    db.add_edge_named("n2", "a", "n1");
    db.add_edge_named("n1", "c", "n3");
    db
}

/// A long `a`-chain: `a*` over it visits O(n²) product pairs, slow enough
/// to still be running when a follow-up request arrives.
fn chain_db(n: usize) -> GraphDb {
    let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b']).unwrap());
    for i in 0..n {
        db.add_edge_named(&format!("v{i}"), "a", &format!("v{}", i + 1));
    }
    db
}

fn test_config() -> ServiceConfig {
    ServiceConfig {
        engine: engine::EngineConfig { threads: 2, ..engine::EngineConfig::default() },
        ..ServiceConfig::default()
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { writer: stream, reader }
    }

    fn send_raw(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        serde_json::from_str(line.trim_end()).expect("response is valid JSON")
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.send_raw(line);
        self.recv()
    }
}

fn assert_ok(response: &Value) {
    assert_eq!(response["ok"].as_bool(), Some(true), "expected ok: {response:?}");
}

fn error_code(response: &Value) -> String {
    assert_eq!(response["ok"].as_bool(), Some(false), "expected error: {response:?}");
    response["error"]["code"].as_str().expect("error.code").to_string()
}

// ---------------------------------------------------------------------------
// Frame-level faults

#[test]
fn malformed_frames_fail_the_frame_not_the_connection() {
    let server = Server::start(small_db(), test_config()).unwrap();
    let mut client = Client::connect(&server);
    for bad in [
        "not json",
        "{",
        "[1,2,3]",
        "42",
        "{\"op\":\"frobnicate\"}",
        "{\"op\":\"query\"}",
        "{\"op\":\"add_edges\",\"edges\":[[\"x\",\"a\"]]}",
        "\u{1F980} unicode garbage",
    ] {
        let response = client.roundtrip(bad);
        assert_eq!(response["ok"].as_bool(), Some(false), "{bad:?}");
    }
    // The same connection still answers real queries.
    let response = client.roundtrip("{\"id\":9,\"op\":\"query\",\"q\":\"a\\u00b7b\"}");
    assert_ok(&response);
    // (n0, n2) directly and (n2, n2) through the a-cycle.
    assert_eq!(response["count"].as_u64(), Some(2));
    assert!(server.stats().protocol_errors >= 8);
    server.shutdown();
}

#[test]
fn oversized_frames_are_drained_and_rejected() {
    let config = ServiceConfig { max_frame_bytes: 256, ..test_config() };
    let server = Server::start(small_db(), config).unwrap();
    let mut client = Client::connect(&server);
    // 64 KiB of garbage on one line, well past the 256-byte cap.
    let huge = "x".repeat(64 * 1024);
    let response = client.roundtrip(&huge);
    assert_eq!(error_code(&response), "frame_too_large");
    // An oversized but well-formed frame is rejected the same way.
    let edges: Vec<String> = (0..200).map(|i| format!("[\"x{i}\",\"a\",\"y{i}\"]")).collect();
    let big_batch = format!("{{\"op\":\"add_edges\",\"edges\":[{}]}}", edges.join(","));
    let response = client.roundtrip(&big_batch);
    assert_eq!(error_code(&response), "frame_too_large");
    // The connection survives and serves normal traffic.
    let response = client.roundtrip("{\"op\":\"query\",\"q\":\"a\"}");
    assert_ok(&response);
    assert_eq!(server.stats().frames_too_large, 2);
    server.shutdown();
}

#[test]
fn oversized_batches_are_rejected_atomically() {
    let config = ServiceConfig { max_batch_edges: 2, ..test_config() };
    let server = Server::start(small_db(), config).unwrap();
    let mut client = Client::connect(&server);
    let response = client.roundtrip(
        "{\"op\":\"add_edges\",\"edges\":[[\"p\",\"a\",\"q\"],[\"q\",\"a\",\"r\"],[\"r\",\"a\",\"s\"]]}",
    );
    assert_eq!(error_code(&response), "batch_too_large");
    // Nothing was applied: the new nodes don't exist.
    let response = client.roundtrip("{\"op\":\"health\"}");
    assert_ok(&response);
    assert_eq!(response["revision"].as_u64(), Some(0), "rejected batch must not bump revision");
    // A conforming batch still works.
    let response =
        client.roundtrip("{\"op\":\"add_edges\",\"edges\":[[\"p\",\"a\",\"q\"],[\"q\",\"a\",\"r\"]]}");
    assert_ok(&response);
    server.shutdown();
}

#[test]
fn invalid_mutations_reject_the_whole_batch() {
    let server = Server::start(small_db(), test_config()).unwrap();
    let mut client = Client::connect(&server);
    // Unknown label rejects atomically (first triple alone would be fine).
    let response = client
        .roundtrip("{\"op\":\"add_edges\",\"edges\":[[\"n0\",\"a\",\"n2\"],[\"n0\",\"z\",\"n2\"]]}");
    assert_eq!(error_code(&response), "unknown_label");
    // Removing a non-present occurrence rejects atomically too.
    let response = client
        .roundtrip("{\"op\":\"remove_edges\",\"edges\":[[\"n0\",\"a\",\"n1\"],[\"n0\",\"a\",\"n1\"]]}");
    assert_eq!(error_code(&response), "edge_not_present");
    let response = client.roundtrip("{\"op\":\"health\"}");
    assert_eq!(response["revision"].as_u64(), Some(0));
    // A view over an out-of-domain label is rejected; the view is absent.
    let response =
        client.roundtrip("{\"op\":\"register_view\",\"name\":\"w\",\"regex\":\"z*\"}");
    assert_eq!(error_code(&response), "unknown_label");
    let response = client.roundtrip("{\"op\":\"view\",\"name\":\"w\"}");
    assert_eq!(error_code(&response), "unknown_view");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Disconnects

#[test]
fn mid_query_disconnects_leave_the_server_healthy() {
    let server = Server::start(chain_db(600), test_config()).unwrap();
    for _ in 0..4 {
        let mut client = Client::connect(&server);
        // Fire an expensive query and hang up without reading the answer.
        client.send_raw("{\"op\":\"query\",\"q\":\"a*\",\"timeout_ms\":10000}");
        drop(client);
    }
    // Fresh connections are served while/after the orphans burn out.
    let mut client = Client::connect(&server);
    let response = client.roundtrip("{\"op\":\"query\",\"q\":\"a·a\",\"timeout_ms\":10000}");
    assert_ok(&response);
    assert_eq!(response["count"].as_u64(), Some(599));
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Budgets under load

#[test]
fn deadline_storms_interrupt_queries_but_never_poison_answers() {
    let server = Server::start(chain_db(900), test_config()).unwrap();
    let mut client = Client::connect(&server);
    let mut interrupted = 0;
    for i in 0..12 {
        // timeout_ms: 0 expires immediately; a tiny visit cap trips fast.
        let frame = if i % 2 == 0 {
            format!("{{\"id\":{i},\"op\":\"query\",\"q\":\"a*\",\"timeout_ms\":0}}")
        } else {
            format!("{{\"id\":{i},\"op\":\"query\",\"q\":\"a*\",\"max_visited\":64}}")
        };
        let response = client.roundtrip(&frame);
        let code = error_code(&response);
        assert!(
            matches!(code.as_str(), "deadline_exceeded" | "visit_budget_exceeded"),
            "unexpected code {code}"
        );
        interrupted += 1;
    }
    assert_eq!(interrupted, 12);
    assert!(server.stats().queries_interrupted >= 12);
    // The interrupted partial answers were never cached: a full-budget run
    // of the same query text returns the complete closure.
    let response = client.roundtrip("{\"op\":\"query\",\"q\":\"a*\",\"timeout_ms\":30000}");
    assert_ok(&response);
    let expected = (901 * 902) / 2; // all i <= j pairs on a 901-node chain
    assert_eq!(response["count"].as_u64(), Some(expected));
    server.shutdown();
}

#[test]
fn admission_gate_rejects_excess_load_with_retry_hint() {
    let config = ServiceConfig { max_inflight: 1, ..test_config() };
    let server = Server::start(chain_db(1200), config).unwrap();

    // Occupy the single slot with a slow query on its own connection.
    let mut slow = Client::connect(&server);
    slow.send_raw("{\"id\":1,\"op\":\"query\",\"q\":\"a*\",\"timeout_ms\":30000,\"limit\":1}");

    // While it runs, a second connection must see `overloaded` (+ hint).
    let mut fast = Client::connect(&server);
    let mut saw_rejection = false;
    for _ in 0..2000 {
        let response = fast.roundtrip("{\"id\":2,\"op\":\"query\",\"q\":\"a·a\",\"timeout_ms\":1000}");
        if response["ok"].as_bool() == Some(false) {
            assert_eq!(response["error"]["code"].as_str(), Some("overloaded"));
            assert!(response["retry_after_ms"].as_u64().unwrap() > 0);
            saw_rejection = true;
            break;
        }
    }
    assert!(saw_rejection, "gate never rejected while the slot was held");

    // The slow query finishes and the gate reopens: retrying succeeds.
    assert_ok(&slow.recv());
    let mut recovered = false;
    for _ in 0..200 {
        let response = fast.roundtrip("{\"id\":3,\"op\":\"query\",\"q\":\"a·a\",\"timeout_ms\":1000}");
        if response["ok"].as_bool() == Some(true) {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(recovered, "gate never reopened after the slow query finished");
    assert!(server.stats().queries_rejected >= 1);
    server.shutdown();
}

#[test]
fn writer_queue_overflow_is_backpressure_not_a_stall() {
    let config = ServiceConfig { writer_queue_depth: 1, ..test_config() };
    let server = Server::start(chain_db(1500), config).unwrap();

    // Make the writer slow: materializing `a*` over a 1501-node chain is
    // ~1.1M pairs of BTreeSet work.
    let mut blocker = Client::connect(&server);
    blocker.send_raw("{\"id\":1,\"op\":\"register_view\",\"name\":\"star\",\"regex\":\"a*\"}");

    // While the writer chews, fill the depth-1 queue and overflow it.
    std::thread::sleep(Duration::from_millis(30));
    let mut filler = Client::connect(&server);
    filler.send_raw("{\"id\":2,\"op\":\"add_edges\",\"edges\":[[\"x\",\"b\",\"y\"]]}");
    let mut spammer = Client::connect(&server);
    let mut saw_overflow = false;
    for i in 0..500 {
        let frame =
            format!("{{\"id\":{},\"op\":\"add_edges\",\"edges\":[[\"s{i}\",\"b\",\"t{i}\"]]}}", i + 3);
        let response = spammer.roundtrip(&frame);
        match response["ok"].as_bool() {
            Some(true) => {}
            Some(false) => {
                assert_eq!(response["error"]["code"].as_str(), Some("overloaded"));
                assert!(response["retry_after_ms"].as_u64().unwrap() > 0);
                saw_overflow = true;
                break;
            }
            None => panic!("malformed response {response:?}"),
        }
    }
    assert!(saw_overflow, "depth-1 writer queue never overflowed under spam");

    // Every accepted write still completed: the blocker and filler replies
    // arrive, and the server drains cleanly.
    assert_ok(&blocker.recv());
    assert_ok(&filler.recv());
    assert!(server.stats().writer_overflows >= 1);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Lifecycle

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let server = Server::start(chain_db(800), test_config()).unwrap();
    let addr = server.addr();

    let mut client = Client::connect(&server);
    client.send_raw("{\"id\":1,\"op\":\"query\",\"q\":\"a*\",\"timeout_ms\":30000,\"limit\":1}");
    // Let the query get admitted before the drain starts.
    std::thread::sleep(Duration::from_millis(20));

    let reader_thread = std::thread::spawn(move || client.recv());
    server.shutdown();

    // The in-flight query was drained, not dropped.
    let response = reader_thread.join().expect("reader panicked");
    assert_ok(&response);
    assert!(response["truncated"].as_bool().unwrap());

    // The listener is gone: new connections fail.
    std::thread::sleep(Duration::from_millis(50));
    assert!(TcpStream::connect(addr).is_err(), "listener must be closed after shutdown");
}

#[test]
fn client_initiated_shutdown_stops_the_server() {
    let server = Server::start(small_db(), test_config()).unwrap();
    let mut client = Client::connect(&server);
    let response = client.roundtrip("{\"op\":\"shutdown\"}");
    assert_ok(&response);
    assert_eq!(response["status"].as_str(), Some("draining"));
    for _ in 0..200 {
        if server.is_shutting_down() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(server.is_shutting_down());
    server.shutdown();
}

#[test]
fn writes_after_shutdown_are_refused_not_lost() {
    let server = Server::start(small_db(), test_config()).unwrap();
    let mut a = Client::connect(&server);
    let mut b = Client::connect(&server);
    assert_ok(&a.roundtrip("{\"op\":\"add_edges\",\"edges\":[[\"n0\",\"a\",\"n2\"]]}"));
    assert_ok(&b.roundtrip("{\"op\":\"shutdown\"}"));
    // The draining server may close `a` or answer `shutting_down`; either
    // way it must not hang and must not apply the write.
    a.send_raw("{\"op\":\"add_edges\",\"edges\":[[\"n2\",\"a\",\"n0\"]]}");
    let mut line = String::new();
    let n = a.reader.read_line(&mut line).unwrap_or(0);
    if n > 0 {
        let response: Value = serde_json::from_str(line.trim_end()).expect("valid JSON");
        assert_eq!(error_code(&response), "shutting_down");
    }
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Observability

#[test]
fn health_and_stats_report_the_serving_state() {
    let server = Server::start(small_db(), test_config()).unwrap();
    let mut client = Client::connect(&server);

    let health = client.roundtrip("{\"op\":\"health\"}");
    assert_ok(&health);
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert_eq!(health["in_flight"].as_u64(), Some(0));

    assert_ok(&client.roundtrip("{\"op\":\"query\",\"q\":\"a·b\"}"));
    assert_ok(&client.roundtrip("{\"op\":\"query\",\"q\":\"a·b\"}"));
    assert_ok(&client.roundtrip("{\"op\":\"register_view\",\"name\":\"ab\",\"regex\":\"a·b\"}"));
    let view = client.roundtrip("{\"op\":\"view\",\"name\":\"ab\"}");
    assert_ok(&view);
    assert_eq!(view["count"].as_u64(), Some(2));

    let stats = client.roundtrip("{\"op\":\"stats\"}");
    assert_ok(&stats);
    assert_eq!(stats["service"]["queries_ok"].as_u64(), Some(2));
    assert_eq!(stats["service"]["writes_applied"].as_u64(), Some(1));
    assert_eq!(stats["service"]["protocol_errors"].as_u64(), Some(0));
    // The second identical query hit the answer cache.
    assert!(stats["engine"]["answer_hits"].as_u64().unwrap() >= 1);
    server.shutdown();
}

#[test]
fn result_truncation_caps_the_payload_not_the_count() {
    let config = ServiceConfig { max_result_pairs: 5, ..test_config() };
    let server = Server::start(chain_db(50), config).unwrap();
    let mut client = Client::connect(&server);
    let response = client.roundtrip("{\"op\":\"query\",\"q\":\"a*\",\"timeout_ms\":30000}");
    assert_ok(&response);
    assert_eq!(response["pairs"].as_array().unwrap().len(), 5);
    assert_eq!(response["count"].as_u64(), Some((51 * 52) / 2));
    assert!(response["truncated"].as_bool().unwrap());
    // An explicit smaller limit narrows it further.
    let response = client.roundtrip("{\"op\":\"query\",\"q\":\"a*\",\"timeout_ms\":30000,\"limit\":2}");
    assert_eq!(response["pairs"].as_array().unwrap().len(), 2);
    server.shutdown();
}
