//! Observability against a live server: trace-id propagation over the TCP
//! round trip, the explain (`trace`) payload shape, the metrics op in both
//! formats, and the slow-query log under concurrent readers.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use automata::Alphabet;
use graphdb::GraphDb;
use serde_json::Value;
use service::{Server, ServiceConfig};

// ---------------------------------------------------------------------------
// Harness (same shape as the fault-injection suite)

fn chain_db(n: usize) -> GraphDb {
    let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b']).unwrap());
    for i in 0..n {
        db.add_edge_named(&format!("v{i}"), "a", &format!("v{}", i + 1));
    }
    db
}

fn test_config() -> ServiceConfig {
    ServiceConfig {
        engine: engine::EngineConfig { threads: 2, ..engine::EngineConfig::default() },
        ..ServiceConfig::default()
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { writer: stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        serde_json::from_str(reply.trim_end()).expect("response is valid JSON")
    }
}

fn assert_ok(response: &Value) {
    assert_eq!(response["ok"].as_bool(), Some(true), "expected ok: {response:?}");
}

// ---------------------------------------------------------------------------
// Tracing

#[test]
fn traced_queries_return_a_phase_breakdown_and_echo_trace_ids() {
    let server = Server::start(chain_db(300), test_config()).unwrap();
    let mut client = Client::connect(&server);

    // Caller-supplied trace id comes back verbatim.
    let response =
        client.roundtrip(r#"{"id":1,"op":"query","q":"a*","trace":true,"trace_id":4242}"#);
    assert_ok(&response);
    let trace = &response["trace"];
    assert_eq!(trace["trace_id"].as_u64(), Some(4242));

    // The explain surface: every pipeline phase of a cold evaluation shows
    // up as a top-level total, and their sum is bounded by the wall time.
    let totals = &trace["phase_totals"];
    for phase in ["parse", "cache_lookup", "compile", "product_bfs", "chunk_merge"] {
        assert!(totals[phase].as_u64().is_some(), "missing {phase}: {response:?}");
    }
    let total_us = trace["total_us"].as_u64().expect("total_us");
    let top_level_us = trace["top_level_us"].as_u64().expect("top_level_us");
    assert!(top_level_us <= total_us.max(1), "{top_level_us} > {total_us}");
    assert!(trace["spans"].as_array().is_some_and(|s| !s.is_empty()));
    assert_eq!(trace["dropped_spans"].as_u64(), Some(0));
    // Success responses carry the eval/queue-wait split input.
    assert!(response["eval_us"].as_u64().is_some());

    // Absent trace_id: the server allocates a nonzero one.
    let response = client.roundtrip(r#"{"id":2,"op":"query","q":"a·a","trace":true}"#);
    assert_ok(&response);
    let allocated = response["trace"]["trace_id"].as_u64().expect("allocated id");
    assert!(allocated > 0);

    // Untraced queries carry no trace object at all.
    let response = client.roundtrip(r#"{"id":3,"op":"query","q":"a"}"#);
    assert_ok(&response);
    assert!(response["trace"].as_object().is_none());

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Metrics op

#[test]
fn metrics_op_reports_histograms_in_both_formats() {
    let server = Server::start(chain_db(100), test_config()).unwrap();
    let mut client = Client::connect(&server);
    for i in 0..5 {
        let response = client.roundtrip(&format!(r#"{{"id":{i},"op":"query","q":"a*"}}"#));
        assert_ok(&response);
    }
    let response = client.roundtrip(r#"{"op":"add_edges","edges":[["x","a","y"]]}"#);
    assert_ok(&response);

    // JSON: engine + service histograms with non-zero counts after load.
    let response = client.roundtrip(r#"{"op":"metrics"}"#);
    assert_ok(&response);
    assert_eq!(response["telemetry_enabled"].as_bool(), Some(true));
    assert_eq!(response["engine"]["eval"]["count"].as_u64(), Some(5));
    assert_eq!(response["engine"]["compile"]["count"].as_u64(), Some(1), "4 of 5 were cache hits");
    assert!(response["engine"]["snapshot_publish"]["count"].as_u64().unwrap_or(0) >= 2);
    assert_eq!(response["service"]["query"]["count"].as_u64(), Some(5));
    assert_eq!(response["service"]["eval"]["count"].as_u64(), Some(5));
    assert_eq!(response["service"]["write"]["count"].as_u64(), Some(1));
    let p50 = response["service"]["query"]["p50_ms"].as_f64().expect("p50_ms");
    let p99 = response["service"]["query"]["p99_ms"].as_f64().expect("p99_ms");
    assert!(p50 <= p99, "percentiles must be monotone: {p50} > {p99}");
    assert!(response["snapshot_age_s"].as_f64().is_some());
    assert!(response["snapshot_ages"].as_array().is_some_and(|a| !a.is_empty()));

    // Prometheus: well-formed exposition text with the expected families.
    let response = client.roundtrip(r#"{"op":"metrics","format":"prometheus"}"#);
    assert_ok(&response);
    let text = response["exposition"].as_str().expect("exposition text");
    for needle in [
        "# TYPE rpq_engine_eval_duration_seconds histogram",
        "# TYPE rpq_service_query_duration_seconds histogram",
        "rpq_queries_ok_total 5",
        "rpq_writes_applied_total 1",
        "# TYPE rpq_snapshot_age_seconds gauge",
        "rpq_retained_snapshot_age_seconds{revision=",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
        value.parse::<f64>().unwrap_or_else(|_| panic!("bad value on line: {line}"));
    }

    // Unknown format fails the frame, not the connection.
    let response = client.roundtrip(r#"{"op":"metrics","format":"xml"}"#);
    assert_eq!(response["ok"].as_bool(), Some(false));
    assert!(client.roundtrip(r#"{"op":"health"}"#)["ok"].as_bool().unwrap());

    server.shutdown();
}

#[test]
fn disabled_telemetry_keeps_serving_and_reports_empty_histograms() {
    let mut config = test_config();
    config.engine.telemetry = false;
    let server = Server::start(chain_db(50), config).unwrap();
    let mut client = Client::connect(&server);
    let response = client.roundtrip(r#"{"op":"query","q":"a*"}"#);
    assert_ok(&response);
    assert!(response["eval_us"].as_u64().is_none(), "no timing when disabled");

    let response = client.roundtrip(r#"{"op":"metrics"}"#);
    assert_ok(&response);
    assert_eq!(response["telemetry_enabled"].as_bool(), Some(false));
    assert_eq!(response["service"]["query"]["count"].as_u64(), Some(0));
    assert_eq!(response["engine"]["eval"]["count"].as_u64(), Some(0));

    // Explicit tracing still works — it is per-query opt-in, not gated.
    let response = client.roundtrip(r#"{"op":"query","q":"a·a","trace":true,"trace_id":9}"#);
    assert_ok(&response);
    assert_eq!(response["trace"]["trace_id"].as_u64(), Some(9));

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Slow-query log

#[test]
fn slow_query_log_drains_once_through_stats() {
    let mut config = test_config();
    config.slow_query_threshold_ms = 0; // log every query
    config.slow_query_log_capacity = 4;
    let server = Server::start(chain_db(50), config).unwrap();
    let mut client = Client::connect(&server);

    for i in 0..6 {
        let response =
            client.roundtrip(&format!(r#"{{"op":"query","q":"a*","trace":true,"trace_id":{}}}"#, i + 100));
        assert_ok(&response);
    }

    // Capacity 4 with 6 observations: the newest 4 survive, evictions are
    // reflected in the metrics counter (total observed stays 6).
    let response = client.roundtrip(r#"{"op":"metrics"}"#);
    assert_eq!(response["slow_query_log"]["pending"].as_u64(), Some(4));
    assert_eq!(response["slow_query_log"]["total_observed"].as_u64(), Some(6));

    let response = client.roundtrip(r#"{"op":"stats"}"#);
    assert_ok(&response);
    let slow = response["slow_queries"].as_array().expect("slow_queries").to_vec();
    assert_eq!(slow.len(), 4);
    for entry in &slow {
        assert_eq!(entry["query"].as_str(), Some("a*"));
        assert!(entry["elapsed_us"].as_u64().is_some());
        assert!(entry["trace_id"].as_u64().unwrap() >= 100, "newest entries win");
    }
    // Ring order: oldest surviving entry first.
    assert_eq!(slow[0]["trace_id"].as_u64(), Some(102));
    assert_eq!(slow[3]["trace_id"].as_u64(), Some(105));

    // Draining is exactly-once: a second stats call reports nothing.
    let response = client.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(response["slow_queries"].as_array().map(|s| s.len()), Some(0));

    server.shutdown();
}

#[test]
fn slow_query_log_stays_consistent_under_concurrent_readers() {
    let mut config = test_config();
    config.slow_query_threshold_ms = 0;
    config.slow_query_log_capacity = 8;
    let server = Server::start(chain_db(30), config).unwrap();

    const WRITERS: usize = 4;
    const QUERIES_PER_WRITER: usize = 10;
    let mut drained = 0usize;
    std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = (0..WRITERS)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(server);
                    for _ in 0..QUERIES_PER_WRITER {
                        assert_ok(&client.roundtrip(r#"{"op":"query","q":"a·a"}"#));
                    }
                })
            })
            .collect();
        // A concurrent drainer: stats calls race the observers without
        // panicking, duplicating, or wedging anything.
        let mut client = Client::connect(server);
        while handles.iter().any(|h| !h.is_finished()) {
            let response = client.roundtrip(r#"{"op":"stats"}"#);
            assert_ok(&response);
            drained += response["slow_queries"].as_array().map_or(0, |s| s.len());
        }
        for handle in handles {
            handle.join().expect("writer client");
        }
    });

    // Final drain: everything observed was reported at most once, and
    // nothing beyond what was actually sent.
    let mut client = Client::connect(&server);
    let response = client.roundtrip(r#"{"op":"stats"}"#);
    drained += response["slow_queries"].as_array().map_or(0, |s| s.len());
    assert!(drained <= WRITERS * QUERIES_PER_WRITER, "{drained} drained of 40 sent");
    let response = client.roundtrip(r#"{"op":"metrics"}"#);
    assert_eq!(
        response["slow_query_log"]["total_observed"].as_u64(),
        Some((WRITERS * QUERIES_PER_WRITER) as u64)
    );

    server.shutdown();
}
