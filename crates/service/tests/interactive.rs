//! Interactive ops against a live server: `single_pair` / `reachable_from`
//! round trips, budget clamping (visit caps and the server-side timeout
//! ceiling), `limit` truncation with exact counts, malformed-argument
//! rejection that keeps the connection alive, and trace-id echo on the
//! interactive explain surface.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use automata::Alphabet;
use graphdb::GraphDb;
use serde_json::Value;
use service::{Server, ServiceConfig};

// ---------------------------------------------------------------------------
// Harness (same shape as the telemetry suite)

fn chain_db(n: usize) -> GraphDb {
    let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b']).unwrap());
    for i in 0..n {
        db.add_edge_named(&format!("v{i}"), "a", &format!("v{}", i + 1));
    }
    db
}

fn test_config() -> ServiceConfig {
    ServiceConfig {
        engine: engine::EngineConfig { threads: 2, ..engine::EngineConfig::default() },
        ..ServiceConfig::default()
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { writer: stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        serde_json::from_str(reply.trim_end()).expect("response is valid JSON")
    }
}

fn assert_ok(response: &Value) {
    assert_eq!(response["ok"].as_bool(), Some(true), "expected ok: {response:?}");
}

fn error_code(response: &Value) -> &str {
    assert_eq!(response["ok"].as_bool(), Some(false), "expected error: {response:?}");
    response["error"]["code"].as_str().expect("error.code")
}

// ---------------------------------------------------------------------------
// Round trips

#[test]
fn interactive_ops_round_trip_on_a_live_connection() {
    // chain_db(10) numbers v0..v10 as node ids 0..10 in creation order.
    let server = Server::start(chain_db(10), test_config()).unwrap();
    let mut client = Client::connect(&server);

    let response =
        client.roundtrip(r#"{"id":1,"op":"single_pair","q":"a*","from":0,"to":7}"#);
    assert_ok(&response);
    assert_eq!(response["connected"].as_bool(), Some(true));
    assert!(response["revision"].as_u64().is_some());

    // The chain only runs forward: the reversed pair is a clean `false`,
    // not an error.
    let response =
        client.roundtrip(r#"{"id":2,"op":"single_pair","q":"a*","from":7,"to":0}"#);
    assert_ok(&response);
    assert_eq!(response["connected"].as_bool(), Some(false));

    let response =
        client.roundtrip(r#"{"id":3,"op":"reachable_from","q":"a·a*","from":3}"#);
    assert_ok(&response);
    assert_eq!(response["count"].as_u64(), Some(7), "nodes 4..=10");
    assert_eq!(response["truncated"].as_bool(), Some(false));
    let targets: Vec<u64> =
        response["targets"].as_array().expect("targets").iter().map(|t| t.as_u64().unwrap()).collect();
    assert_eq!(targets, (4..=10).collect::<Vec<u64>>());

    // Interactive answers stay revision-consistent with writes on the same
    // connection.
    let response = client.roundtrip(r#"{"op":"add_edges","edges":[["v10","a","v0"]]}"#);
    assert_ok(&response);
    let response =
        client.roundtrip(r#"{"id":4,"op":"single_pair","q":"a*","from":7,"to":0}"#);
    assert_ok(&response);
    assert_eq!(response["connected"].as_bool(), Some(true), "the new back-edge closes the cycle");

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Limits

#[test]
fn reachable_from_truncates_with_exact_counts() {
    let mut config = test_config();
    config.max_result_pairs = 4;
    let server = Server::start(chain_db(10), config).unwrap();
    let mut client = Client::connect(&server);

    // Client limit below the server cap: exactly `limit` targets come back
    // and the truncation is flagged.
    let response =
        client.roundtrip(r#"{"op":"reachable_from","q":"a*","from":0,"limit":2}"#);
    assert_ok(&response);
    assert_eq!(response["count"].as_u64(), Some(2));
    assert_eq!(response["truncated"].as_bool(), Some(true));
    assert_eq!(response["targets"].as_array().map(|t| t.len()), Some(2));

    // No client limit: the server's own result-size bound still applies.
    let response = client.roundtrip(r#"{"op":"reachable_from","q":"a*","from":0}"#);
    assert_ok(&response);
    assert_eq!(response["count"].as_u64(), Some(4), "max_result_pairs cap");
    assert_eq!(response["truncated"].as_bool(), Some(true));

    // A cold limit that happens to match the true target count still reports
    // truncation: the early-exited sweep cannot prove the set was done.
    let response =
        client.roundtrip(r#"{"op":"reachable_from","q":"a*","from":8,"limit":3}"#);
    assert_ok(&response);
    assert_eq!(response["count"].as_u64(), Some(3), "nodes 8, 9, 10");
    assert_eq!(response["truncated"].as_bool(), Some(true));

    // After an unlimited sweep caches the complete drain, the same limit is
    // recognized as the whole answer.
    let response = client.roundtrip(r#"{"op":"reachable_from","q":"a*","from":8}"#);
    assert_ok(&response);
    assert_eq!(response["count"].as_u64(), Some(3));
    assert_eq!(response["truncated"].as_bool(), Some(false));
    let response =
        client.roundtrip(r#"{"op":"reachable_from","q":"a*","from":8,"limit":3}"#);
    assert_ok(&response);
    assert_eq!(response["count"].as_u64(), Some(3));
    assert_eq!(response["truncated"].as_bool(), Some(false));

    // limit 0 is a valid (if degenerate) ask: nothing comes back and the
    // non-empty remainder is flagged as truncated.
    let response =
        client.roundtrip(r#"{"op":"reachable_from","q":"a*","from":0,"limit":0}"#);
    assert_ok(&response);
    assert_eq!(response["count"].as_u64(), Some(0));
    assert_eq!(response["truncated"].as_bool(), Some(true));

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Budgets

#[test]
fn interactive_budgets_clamp_and_interrupt() {
    // Budget checks fire every 4096 sweep pops: the chain must be longer
    // than one check interval for a cap of 1 to ever trip.
    let server = Server::start(chain_db(6000), test_config()).unwrap();
    let mut client = Client::connect(&server);

    let response = client
        .roundtrip(r#"{"op":"single_pair","q":"a*","from":0,"to":6000,"max_visited":1}"#);
    assert_eq!(error_code(&response), "visit_budget_exceeded");

    let response = client
        .roundtrip(r#"{"op":"reachable_from","q":"a*","from":0,"max_visited":1}"#);
    assert_eq!(error_code(&response), "visit_budget_exceeded");

    // The connection survives the interrupts, and an unbudgeted retry of the
    // same lookups succeeds.
    let response =
        client.roundtrip(r#"{"op":"single_pair","q":"a*","from":0,"to":6000}"#);
    assert_ok(&response);
    assert_eq!(response["connected"].as_bool(), Some(true));

    server.shutdown();
}

#[test]
fn client_timeouts_are_clamped_to_the_server_ceiling() {
    // max_timeout_ms = 1: whatever the client asks for is clamped to a 1 ms
    // deadline.  A 400 000-hop chain sweep cannot finish inside it, so the
    // interrupt is proof the 60-second request did not win.
    let mut config = test_config();
    config.max_timeout_ms = 1;
    let domain = Alphabet::from_chars(['a', 'b']).unwrap();
    let a = domain.symbol("a").expect("a in domain");
    let mut db = GraphDb::new(domain);
    let mut prev = db.add_node();
    for _ in 0..400_000 {
        let next = db.add_node();
        db.add_edge(prev, a, next);
        prev = next;
    }
    let last = prev;
    let server = Server::start(db, config).unwrap();
    let mut client = Client::connect(&server);

    let response = client.roundtrip(&format!(
        r#"{{"op":"single_pair","q":"a*","from":0,"to":{last},"timeout_ms":60000}}"#
    ));
    assert_eq!(error_code(&response), "deadline_exceeded");

    let response = client
        .roundtrip(r#"{"op":"reachable_from","q":"a*","from":0,"timeout_ms":60000}"#);
    assert_eq!(error_code(&response), "deadline_exceeded");

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Malformed arguments

#[test]
fn malformed_interactive_frames_fail_the_frame_not_the_connection() {
    let server = Server::start(chain_db(10), test_config()).unwrap();
    let mut client = Client::connect(&server);

    for (frame, why) in [
        (r#"{"op":"single_pair","q":"a*","from":0}"#, "missing to"),
        (r#"{"op":"single_pair","q":"a*","to":0}"#, "missing from"),
        (r#"{"op":"single_pair","from":0,"to":1}"#, "missing q"),
        (r#"{"op":"single_pair","q":"a*","from":-1,"to":1}"#, "negative node id"),
        (r#"{"op":"single_pair","q":"a*","from":"v0","to":1}"#, "string node id"),
        (r#"{"op":"reachable_from","q":"a*"}"#, "missing from"),
        (r#"{"op":"reachable_from","from":0}"#, "missing q"),
        (r#"{"op":"reachable_from","q":"a*","from":1.5}"#, "fractional node id"),
    ] {
        let response = client.roundtrip(frame);
        assert_eq!(error_code(&response), "parse_error", "{why}: {response:?}");
    }

    // Well-formed frames with bad *semantics* map to their own codes.
    let response =
        client.roundtrip(r#"{"op":"single_pair","q":"a*","from":0,"to":999999}"#);
    assert_eq!(error_code(&response), "node_out_of_range");
    let response =
        client.roundtrip(r#"{"op":"reachable_from","q":"a·(","from":0}"#);
    assert_eq!(error_code(&response), "parse_error");

    // Every rejection above failed only its frame: the connection still
    // serves.
    let response = client.roundtrip(r#"{"op":"single_pair","q":"a*","from":0,"to":1}"#);
    assert_ok(&response);
    assert_eq!(response["connected"].as_bool(), Some(true));

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Tracing

#[test]
fn interactive_traces_echo_ids_and_expose_the_bidirectional_phases() {
    let server = Server::start(chain_db(300), test_config()).unwrap();
    let mut client = Client::connect(&server);

    // A fresh single-pair search: caller-supplied trace id comes back
    // verbatim and the bidirectional halves show up as phases.
    let response = client.roundtrip(
        r#"{"id":1,"op":"single_pair","q":"a*","from":0,"to":299,"trace":true,"trace_id":777}"#,
    );
    assert_ok(&response);
    let trace = &response["trace"];
    assert_eq!(trace["trace_id"].as_u64(), Some(777));
    let totals = &trace["phase_totals"];
    for phase in ["parse", "meet_check", "compile", "bidir_forward", "bidir_backward"] {
        assert!(totals[phase].as_u64().is_some(), "missing {phase}: {response:?}");
    }
    assert!(response["eval_us"].as_u64().is_some());

    // A traced single-source sweep runs the product BFS, not the
    // bidirectional search.
    let response = client.roundtrip(
        r#"{"id":2,"op":"reachable_from","q":"a·a*","from":0,"trace":true,"trace_id":778}"#,
    );
    assert_ok(&response);
    let trace = &response["trace"];
    assert_eq!(trace["trace_id"].as_u64(), Some(778));
    assert!(trace["phase_totals"]["product_bfs"].as_u64().is_some(), "{response:?}");

    // Absent trace_id: the server allocates a nonzero one.
    let response = client.roundtrip(
        r#"{"id":3,"op":"single_pair","q":"a·a","from":0,"to":2,"trace":true}"#,
    );
    assert_ok(&response);
    assert!(response["trace"]["trace_id"].as_u64().expect("allocated id") > 0);

    // Untraced interactive ops carry no trace object at all.
    let response = client.roundtrip(r#"{"id":4,"op":"single_pair","q":"a","from":0,"to":1}"#);
    assert_ok(&response);
    assert!(response["trace"].as_object().is_none());

    server.shutdown();
}
