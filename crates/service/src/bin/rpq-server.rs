//! `rpq-server` — serve RPQ evaluation over line-delimited JSON on TCP.
//!
//! ```text
//! rpq-server [--addr HOST:PORT] [--labels a,b,c] [--max-inflight N] [--timeout-ms MS]
//!            [--slow-query-ms MS] [--no-telemetry]
//! ```
//!
//! Starts with an empty database over the given edge-label alphabet; load
//! data through `add_edges` frames.  Try it with netcat:
//!
//! ```text
//! $ rpq-server --addr 127.0.0.1:7878 --labels a,b &
//! $ printf '%s\n' '{"id":1,"op":"add_edges","edges":[["x","a","y"],["y","b","z"]]}' \
//!     '{"id":2,"op":"query","q":"a·b"}' | nc 127.0.0.1 7878
//! {"id":1,"ok":true,"revision":1,"num_nodes":3,"applied":2}
//! {"id":2,"ok":true,"revision":1,"count":1,"truncated":false,"pairs":[[0,2]]}
//! ```
//!
//! Observability is built in: `{"op":"query","q":"a·b","trace":true}`
//! returns a per-phase `trace` breakdown, `{"op":"metrics"}` returns latency
//! histograms and snapshot-age gauges (add `"format":"prometheus"` for text
//! exposition), and `{"op":"stats"}` drains the slow-query log.
//!
//! A client `{"op":"shutdown"}` frame drains and stops the process.

use automata::Alphabet;
use graphdb::GraphDb;
use service::{Server, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: rpq-server [--addr HOST:PORT] [--labels a,b,c] \
         [--max-inflight N] [--timeout-ms MS] [--slow-query-ms MS] [--no-telemetry]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServiceConfig { addr: "127.0.0.1:7878".to_string(), ..Default::default() };
    let mut labels: Vec<char> = vec!['a', 'b', 'c'];

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_for(flag));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--labels" => {
                labels = value("--labels")
                    .split(',')
                    .filter_map(|part| part.trim().chars().next())
                    .collect();
            }
            "--max-inflight" => {
                config.max_inflight = value("--max-inflight").parse().unwrap_or_else(|_| usage())
            }
            "--timeout-ms" => {
                config.default_timeout_ms =
                    value("--timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--slow-query-ms" => {
                config.slow_query_threshold_ms =
                    value("--slow-query-ms").parse().unwrap_or_else(|_| usage())
            }
            "--no-telemetry" => config.engine.telemetry = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let alphabet = Alphabet::from_chars(labels.iter().copied()).unwrap_or_else(|e| {
        eprintln!("rpq-server: bad --labels: {e}");
        std::process::exit(2);
    });
    let server = Server::start(GraphDb::new(alphabet), config).unwrap_or_else(|e| {
        eprintln!("rpq-server: failed to start: {e}");
        std::process::exit(1);
    });
    println!("rpq-server listening on {}", server.addr());

    // No signal handling without external crates: run until a client sends
    // the shutdown op, then drain and exit.
    while !server.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    server.shutdown();
    println!("rpq-server drained; bye");
}

fn usage_for(flag: &str) -> String {
    eprintln!("rpq-server: {flag} needs a value");
    usage()
}
