//! The serving loop: TCP accept, per-connection framing, admission control,
//! the single-writer mutation queue, and graceful shutdown.
//!
//! ## Threading model
//!
//! One **accept thread** polls a non-blocking listener and spawns one
//! **connection thread** per client.  Reads go straight to the engine's
//! MVCC layer: each query pins the current published
//! [`engine::EngineSnapshot`] (an `Arc` clone under a short read lock) and
//! evaluates against it without ever blocking the writer.  All mutations
//! funnel through one **writer thread** owning the [`engine::QueryEngine`]:
//! connections enqueue jobs on a bounded channel ([`try_send`] — a full
//! queue is an immediate `overloaded` rejection, never a hidden stall) and
//! block on a private reply channel.  After each applied batch the writer
//! publishes a fresh snapshot and stores it for subsequent readers, so a
//! client that observed its own write's reply is guaranteed to read at
//! least that revision.
//!
//! ## Robustness invariants
//!
//! * A malformed or oversized frame fails **that frame**, not the
//!   connection and never the server: oversized input is drained to the
//!   next newline and answered with `frame_too_large`.
//! * Every query runs under a [`QueryBudget`] derived from the request's
//!   `timeout_ms`/`max_visited` (clamped by the server config), so no
//!   client can pin a connection thread on an unbounded product sweep.
//! * Admission control caps concurrently evaluating queries; excess load
//!   is rejected with a `retry_after_ms` hint instead of queuing without
//!   bound.
//! * Shutdown is graceful: the gate closes, queued writes drain, in-flight
//!   queries finish (up to `drain_timeout_ms`), and every thread is joined.
//! * Observability rides the same paths: query/eval/write latency
//!   histograms and the slow-query log (gated by the engine `telemetry`
//!   flag), per-query span tracing on request (`"trace": true`), and a
//!   `metrics` op exposing both JSON summaries and Prometheus text.
//!
//! [`try_send`]: std::sync::mpsc::SyncSender::try_send

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use engine::{EngineError, EngineSnapshot, QueryBudget, QueryEngine};
use graphdb::GraphDb;
use serde_json::Value;
use telemetry::{next_trace_id, prometheus, Histogram, Phase, SlowQueryLog, TraceContext};

use crate::protocol::{parse_frame, render_err, render_ok, Request};
use crate::ServiceConfig;

/// How long clients rejected for overload are asked to back off.
const RETRY_AFTER_MS: u64 = 25;
/// Read-timeout tick used to poll the shutdown flag on idle connections.
const READ_TICK: Duration = Duration::from_millis(50);
/// Accept-loop poll interval (the listener is non-blocking).
const ACCEPT_TICK: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------------
// Stats

#[derive(Default)]
struct ServiceStats {
    connections: AtomicU64,
    frames: AtomicU64,
    protocol_errors: AtomicU64,
    frames_too_large: AtomicU64,
    queries_ok: AtomicU64,
    queries_rejected: AtomicU64,
    queries_interrupted: AtomicU64,
    queries_failed: AtomicU64,
    writes_applied: AtomicU64,
    writes_rejected: AtomicU64,
    writer_overflows: AtomicU64,
}

/// A point-in-time copy of the service counters (see [`Server::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStatsSnapshot {
    /// Connections accepted since start.
    pub connections: u64,
    /// Frames successfully parsed and dispatched.
    pub frames: u64,
    /// Frames rejected before dispatch (bad JSON, bad shape, unknown op).
    pub protocol_errors: u64,
    /// Frames rejected for exceeding `max_frame_bytes`.
    pub frames_too_large: u64,
    /// Queries answered successfully.
    pub queries_ok: u64,
    /// Queries rejected by the admission gate.
    pub queries_rejected: u64,
    /// Queries interrupted by their budget (deadline, visit cap, cancel).
    pub queries_interrupted: u64,
    /// Queries failed by non-budget engine errors (parse, unknown label…).
    pub queries_failed: u64,
    /// Mutation batches applied by the writer.
    pub writes_applied: u64,
    /// Mutation batches rejected by validation.
    pub writes_rejected: u64,
    /// Mutation batches bounced off the full writer queue.
    pub writer_overflows: u64,
    /// Queries evaluating right now.
    pub in_flight: u64,
}

impl ServiceStats {
    fn snapshot(&self, in_flight: u64) -> ServiceStatsSnapshot {
        // ordering: Relaxed — advisory fold of monotone counters; a snapshot
        // may mix adjacent updates, which stats consumers tolerate.
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceStatsSnapshot {
            connections: load(&self.connections),
            frames: load(&self.frames),
            protocol_errors: load(&self.protocol_errors),
            frames_too_large: load(&self.frames_too_large),
            queries_ok: load(&self.queries_ok),
            queries_rejected: load(&self.queries_rejected),
            queries_interrupted: load(&self.queries_interrupted),
            queries_failed: load(&self.queries_failed),
            writes_applied: load(&self.writes_applied),
            writes_rejected: load(&self.writes_rejected),
            writer_overflows: load(&self.writer_overflows),
            in_flight,
        }
    }
}

fn bump(counter: &AtomicU64) {
    // ordering: Relaxed — monotone statistic; nothing is published through it.
    counter.fetch_add(1, Ordering::Relaxed);
}

fn as_us(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

// ---------------------------------------------------------------------------
// Telemetry

/// Service-side timing state: request-scoped latency histograms plus the
/// slow-query log.  Collection is gated by the engine's `telemetry` flag
/// (one switch disables every `Instant::now()` on the serving path too);
/// per-query tracing is an explicit opt-in and keeps working regardless.
struct ServiceTelemetry {
    enabled: bool,
    /// Whole query handling: admission to rendered response.
    query_latency: Histogram,
    /// The engine-evaluation portion alone; `query - eval` is service
    /// overhead (framing, rendering, result capping).
    eval_latency: Histogram,
    /// Writer-thread batches: apply + snapshot publish.
    write_latency: Histogram,
    slow_log: SlowQueryLog,
}

impl ServiceTelemetry {
    fn new(config: &ServiceConfig) -> Self {
        ServiceTelemetry {
            enabled: config.engine.telemetry,
            query_latency: Histogram::new(),
            eval_latency: Histogram::new(),
            write_latency: Histogram::new(),
            slow_log: SlowQueryLog::new(
                config.slow_query_threshold_ms.saturating_mul(1_000),
                config.slow_query_log_capacity,
            ),
        }
    }

    /// `(name, histogram)` pairs for the metrics op, request path first.
    fn histograms(&self) -> [(&'static str, &Histogram); 3] {
        [
            ("query", &self.query_latency),
            ("eval", &self.eval_latency),
            ("write", &self.write_latency),
        ]
    }
}

// ---------------------------------------------------------------------------
// Writer queue

enum WriteOp {
    AddEdges(Vec<(String, String, String)>),
    RemoveEdges(Vec<(String, String, String)>),
    RegisterView { name: String, regex: String },
}

struct WriteSummary {
    revision: u64,
    num_nodes: usize,
}

struct WriteJob {
    op: WriteOp,
    reply: SyncSender<Result<WriteSummary, EngineError>>,
}

fn apply_write(engine: &mut QueryEngine, op: &WriteOp) -> Result<(), EngineError> {
    match op {
        WriteOp::AddEdges(edges) => {
            let refs: Vec<(&str, &str, &str)> =
                edges.iter().map(|(f, l, t)| (f.as_str(), l.as_str(), t.as_str())).collect();
            engine.try_add_edges_named(&refs)
        }
        WriteOp::RemoveEdges(edges) => {
            let refs: Vec<(&str, &str, &str)> =
                edges.iter().map(|(f, l, t)| (f.as_str(), l.as_str(), t.as_str())).collect();
            engine.try_remove_edges_named(&refs)
        }
        WriteOp::RegisterView { name, regex } => {
            let expr = regexlang::parse(regex).map_err(EngineError::from)?;
            engine.try_register_view(name, expr)
        }
    }
}

/// Owns the engine; drains the job queue until every sender is dropped
/// (shutdown), publishing one snapshot per applied batch.
fn writer_loop(mut engine: QueryEngine, jobs: Receiver<WriteJob>, shared: Arc<Shared>) {
    for job in jobs.iter() {
        let started = shared.telemetry.enabled.then(Instant::now);
        match apply_write(&mut engine, &job.op) {
            Ok(()) => {
                let snapshot = engine.publish_snapshot();
                // A poisoned slot still holds a valid Arc (the swap is the
                // only write and cannot unwind mid-store): recover it
                // rather than cascading the panic through the writer.
                *shared
                    .snapshot
                    .write()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = snapshot.clone();
                bump(&shared.stats.writes_applied);
                if let Some(started) = started {
                    shared.telemetry.write_latency.record_duration(started.elapsed());
                }
                let _ = job.reply.send(Ok(WriteSummary {
                    revision: snapshot.revision(),
                    num_nodes: snapshot.num_nodes(),
                }));
            }
            Err(e) => {
                bump(&shared.stats.writes_rejected);
                let _ = job.reply.send(Err(e));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared server state

struct Shared {
    config: ServiceConfig,
    snapshot: RwLock<Arc<EngineSnapshot>>,
    stats: ServiceStats,
    telemetry: ServiceTelemetry,
    in_flight: AtomicUsize,
    shutdown: AtomicBool,
    /// `None` once shutdown begins: dropping the last sender lets the
    /// writer thread drain and exit.
    writer: Mutex<Option<SyncSender<WriteJob>>>,
}

impl Shared {
    fn pinned_snapshot(&self) -> Arc<EngineSnapshot> {
        // Poison cannot leave a torn value here (the slot only ever holds
        // a complete Arc), so readers recover instead of panicking.
        self.snapshot
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// RAII admission permit: holding one means a query slot is occupied.
struct Permit<'a>(&'a AtomicUsize);

impl<'a> Permit<'a> {
    fn acquire(gate: &'a AtomicUsize, max: usize) -> Option<Self> {
        // ordering: the successful CAS is Acquire to pair with the Release
        // decrement in Drop, so everything a finished query did under its
        // slot happens-before the slot's reuse.  The seed load and the CAS
        // failure path are Relaxed: they only feed the next CAS attempt,
        // which re-validates the count.
        let mut current = gate.load(Ordering::Relaxed);
        loop {
            if current >= max {
                return None;
            }
            match gate.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit(gate)),
                Err(observed) => current = observed,
            }
        }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        // ordering: Release — pairs with the Acquire CAS in `acquire` so the
        // released slot's work is visible to whoever re-occupies it.
        self.0.fetch_sub(1, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Framing

enum FrameRead {
    /// A complete line is in the buffer (without the newline).
    Frame,
    /// The line exceeded the frame cap; it was drained to the newline.
    TooLarge,
    /// EOF or unrecoverable socket error.
    Closed,
    /// Idle tick (no bytes pending) — caller should poll shutdown.
    Idle,
}

fn read_frame(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
    shutdown: &AtomicBool,
) -> FrameRead {
    buf.clear();
    let mut oversized = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return FrameRead::Closed,
            Ok(chunk) => chunk,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) {
                    // A half-sent frame must not block the drain.
                    return FrameRead::Closed;
                }
                if buf.is_empty() && !oversized {
                    return FrameRead::Idle;
                }
                // Mid-frame stall: keep waiting (the read timeout paces the
                // loop); the OS reports disconnects as EOF/reset here.
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return FrameRead::Closed,
        };
        if let Some(newline) = chunk.iter().position(|&b| b == b'\n') {
            if !oversized {
                // lint: allow(panic) — `newline` is position() on this same chunk
                buf.extend_from_slice(&chunk[..newline]);
            }
            reader.consume(newline + 1);
            if oversized || buf.len() > max {
                return FrameRead::TooLarge;
            }
            return FrameRead::Frame;
        }
        if !oversized {
            buf.extend_from_slice(chunk);
            if buf.len() > max {
                oversized = true;
                buf.clear();
            }
        }
        let consumed = chunk.len();
        reader.consume(consumed);
    }
}

// ---------------------------------------------------------------------------
// Request dispatch

fn pairs_payload(answer: &graphdb::Answer, cap: usize) -> (Vec<Value>, usize, bool) {
    let total = answer.len();
    let pairs: Vec<Value> = answer
        .iter()
        .take(cap)
        .map(|&(x, y)| Value::Array(vec![Value::Int(x as i128), Value::Int(y as i128)]))
        .collect();
    let truncated = total > pairs.len();
    (pairs, total, truncated)
}

/// Renders a completed trace as the wire-level `trace` object: identity,
/// wall time, per-phase totals (top-level, non-overlapping spans only), and
/// the raw span list with per-worker detail.
fn trace_value(trace: &TraceContext) -> Value {
    let spans = trace.spans();
    let mut phase_totals: Vec<(String, Value)> = Vec::new();
    for phase in Phase::ALL {
        let total: u64 = spans
            .iter()
            .filter(|s| s.phase == phase && s.worker.is_none())
            .map(|s| s.duration_us)
            .sum();
        if total > 0 || spans.iter().any(|s| s.phase == phase && s.worker.is_none()) {
            phase_totals.push((phase.as_str().to_string(), Value::Int(total as i128)));
        }
    }
    let span_values: Vec<Value> = spans
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("phase".to_string(), Value::String(s.phase.as_str().to_string())),
                (
                    "worker".to_string(),
                    s.worker.map_or(Value::Null, |w| Value::Int(w as i128)),
                ),
                ("start_us".to_string(), Value::Int(s.start_us as i128)),
                ("duration_us".to_string(), Value::Int(s.duration_us as i128)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("trace_id".to_string(), Value::Int(trace.trace_id() as i128)),
        ("total_us".to_string(), Value::Int(trace.total_us() as i128)),
        ("top_level_us".to_string(), Value::Int(trace.top_level_sum_us() as i128)),
        ("dropped_spans".to_string(), Value::Int(trace.dropped() as i128)),
        ("phase_totals".to_string(), Value::Object(phase_totals)),
        ("spans".to_string(), Value::Array(span_values)),
    ])
}

#[allow(clippy::too_many_arguments)]
fn handle_query(
    shared: &Shared,
    id: Option<i64>,
    q: &str,
    timeout_ms: Option<u64>,
    max_visited: Option<u64>,
    limit: Option<usize>,
    trace: bool,
    trace_id: Option<u64>,
) -> String {
    let config = &shared.config;
    if shared.shutdown.load(Ordering::SeqCst) {
        return render_err(id, "shutting_down", "server is draining", None);
    }
    let Some(_permit) = Permit::acquire(&shared.in_flight, config.max_inflight) else {
        bump(&shared.stats.queries_rejected);
        return render_err(
            id,
            "overloaded",
            "query admission gate is full",
            Some(RETRY_AFTER_MS),
        );
    };
    let telemetry = &shared.telemetry;
    // One switch: with telemetry off and no trace requested, the query path
    // makes zero clock calls (the overhead-guard contract).
    let started = (telemetry.enabled || trace).then(Instant::now);
    let timeout = timeout_ms.unwrap_or(config.default_timeout_ms).min(config.max_timeout_ms);
    let mut budget = QueryBudget::with_timeout(Duration::from_millis(timeout));
    if let Some(cap) = max_visited {
        budget = budget.max_visited(cap);
    }
    let snapshot = shared.pinned_snapshot();
    let trace_ctx = trace.then(|| TraceContext::new(trace_id.unwrap_or_else(next_trace_id)));
    let eval_started = started.map(|_| Instant::now());
    let result = match &trace_ctx {
        Some(trace) => snapshot.eval_str_traced(q, &budget, trace),
        None => snapshot.eval_str_budgeted(q, &budget),
    };
    let eval_us = eval_started.map(|at| as_us(at.elapsed()));
    let response = match result {
        Ok(answer) => {
            bump(&shared.stats.queries_ok);
            let cap = limit.unwrap_or(usize::MAX).min(config.max_result_pairs);
            let (pairs, total, truncated) = pairs_payload(&answer, cap);
            let mut fields = vec![
                ("revision".to_string(), Value::Int(snapshot.revision() as i128)),
                ("count".to_string(), Value::Int(total as i128)),
                ("truncated".to_string(), Value::Bool(truncated)),
                ("pairs".to_string(), Value::Array(pairs)),
            ];
            if let Some(us) = eval_us {
                // Lets clients split round-trip time into queue-wait vs
                // evaluation without a second request.
                fields.push(("eval_us".to_string(), Value::Int(us as i128)));
            }
            if let Some(trace) = &trace_ctx {
                fields.push(("trace".to_string(), trace_value(trace)));
            }
            render_ok(id, fields)
        }
        Err(e) => {
            if e.is_budget_interrupt() {
                bump(&shared.stats.queries_interrupted);
            } else {
                bump(&shared.stats.queries_failed);
            }
            render_err(id, e.code(), &e.to_string(), None)
        }
    };
    if let Some(started) = started {
        let total_us = as_us(started.elapsed());
        if telemetry.enabled {
            telemetry.query_latency.record(total_us);
            if let Some(us) = eval_us {
                telemetry.eval_latency.record(us);
            }
            telemetry.slow_log.observe(
                trace_ctx.as_ref().map_or(0, |t| t.trace_id()),
                q,
                total_us,
                snapshot.revision(),
            );
        }
    }
    response
}

/// Shared scaffolding of the two interactive ops (`single_pair` /
/// `reachable_from`): the same admission gate, budget clamping, error
/// mapping, and latency/slow-log accounting as `handle_query`, around an
/// op-specific evaluation and success payload.
#[allow(clippy::too_many_arguments)]
fn handle_interactive<T>(
    shared: &Shared,
    id: Option<i64>,
    q: &str,
    timeout_ms: Option<u64>,
    max_visited: Option<u64>,
    trace: bool,
    trace_id: Option<u64>,
    eval: impl FnOnce(&EngineSnapshot, &QueryBudget, Option<&TraceContext>) -> Result<T, EngineError>,
    fields_of: impl FnOnce(T) -> Vec<(String, Value)>,
) -> String {
    let config = &shared.config;
    if shared.shutdown.load(Ordering::SeqCst) {
        return render_err(id, "shutting_down", "server is draining", None);
    }
    let Some(_permit) = Permit::acquire(&shared.in_flight, config.max_inflight) else {
        bump(&shared.stats.queries_rejected);
        return render_err(
            id,
            "overloaded",
            "query admission gate is full",
            Some(RETRY_AFTER_MS),
        );
    };
    let telemetry = &shared.telemetry;
    let started = (telemetry.enabled || trace).then(Instant::now);
    let timeout = timeout_ms.unwrap_or(config.default_timeout_ms).min(config.max_timeout_ms);
    let mut budget = QueryBudget::with_timeout(Duration::from_millis(timeout));
    if let Some(cap) = max_visited {
        budget = budget.max_visited(cap);
    }
    let snapshot = shared.pinned_snapshot();
    let trace_ctx = trace.then(|| TraceContext::new(trace_id.unwrap_or_else(next_trace_id)));
    let eval_started = started.map(|_| Instant::now());
    let result = eval(&snapshot, &budget, trace_ctx.as_ref());
    let eval_us = eval_started.map(|at| as_us(at.elapsed()));
    let response = match result {
        Ok(value) => {
            bump(&shared.stats.queries_ok);
            let mut fields =
                vec![("revision".to_string(), Value::Int(snapshot.revision() as i128))];
            fields.extend(fields_of(value));
            if let Some(us) = eval_us {
                fields.push(("eval_us".to_string(), Value::Int(us as i128)));
            }
            if let Some(trace) = &trace_ctx {
                fields.push(("trace".to_string(), trace_value(trace)));
            }
            render_ok(id, fields)
        }
        Err(e) => {
            if e.is_budget_interrupt() {
                bump(&shared.stats.queries_interrupted);
            } else {
                bump(&shared.stats.queries_failed);
            }
            render_err(id, e.code(), &e.to_string(), None)
        }
    };
    if let Some(started) = started {
        let total_us = as_us(started.elapsed());
        if telemetry.enabled {
            telemetry.query_latency.record(total_us);
            if let Some(us) = eval_us {
                telemetry.eval_latency.record(us);
            }
            telemetry.slow_log.observe(
                trace_ctx.as_ref().map_or(0, |t| t.trace_id()),
                q,
                total_us,
                snapshot.revision(),
            );
        }
    }
    response
}

#[allow(clippy::too_many_arguments)]
fn handle_single_pair(
    shared: &Shared,
    id: Option<i64>,
    q: &str,
    from: usize,
    to: usize,
    timeout_ms: Option<u64>,
    max_visited: Option<u64>,
    trace: bool,
    trace_id: Option<u64>,
) -> String {
    handle_interactive(
        shared,
        id,
        q,
        timeout_ms,
        max_visited,
        trace,
        trace_id,
        |snapshot, budget, trace_ctx| match trace_ctx {
            Some(trace) => snapshot.eval_pair_str_traced(q, from, to, budget, trace),
            None => snapshot.eval_pair_str_budgeted(q, from, to, budget),
        },
        |connected| vec![("connected".to_string(), Value::Bool(connected))],
    )
}

#[allow(clippy::too_many_arguments)]
fn handle_reachable_from(
    shared: &Shared,
    id: Option<i64>,
    q: &str,
    from: usize,
    limit: Option<usize>,
    timeout_ms: Option<u64>,
    max_visited: Option<u64>,
    trace: bool,
    trace_id: Option<u64>,
) -> String {
    // The server's result-size bound applies even without a client limit;
    // `truncated` reports early stop by either cap.
    let cap = limit.unwrap_or(usize::MAX).min(shared.config.max_result_pairs);
    handle_interactive(
        shared,
        id,
        q,
        timeout_ms,
        max_visited,
        trace,
        trace_id,
        |snapshot, budget, trace_ctx| match trace_ctx {
            Some(trace) => snapshot.eval_from_str_traced(q, from, Some(cap), budget, trace),
            None => snapshot.eval_from_str_budgeted(q, from, Some(cap), budget),
        },
        |result| {
            let targets: Vec<Value> =
                result.targets.iter().map(|&t| Value::Int(t as i128)).collect();
            vec![
                ("count".to_string(), Value::Int(result.targets.len() as i128)),
                ("truncated".to_string(), Value::Bool(!result.complete)),
                ("targets".to_string(), Value::Array(targets)),
            ]
        },
    )
}

/// Summarizes one histogram for the JSON metrics payload.
fn histogram_summary(hist: &Histogram) -> Value {
    Value::Object(vec![
        ("count".to_string(), Value::Int(hist.count() as i128)),
        ("p50_ms".to_string(), Value::Float(hist.percentile_ms(0.50))),
        ("p90_ms".to_string(), Value::Float(hist.percentile_ms(0.90))),
        ("p99_ms".to_string(), Value::Float(hist.percentile_ms(0.99))),
        ("max_ms".to_string(), Value::Float(hist.max_us() as f64 / 1_000.0)),
        ("mean_ms".to_string(), Value::Float(hist.mean_us() / 1_000.0)),
    ])
}

/// Renders the full Prometheus text exposition: engine + service duration
/// histograms, the service counters, and the snapshot-age gauges.
fn prometheus_exposition(shared: &Shared, snapshot: &EngineSnapshot) -> String {
    let mut out = String::new();
    for (name, hist) in snapshot.telemetry().histograms() {
        prometheus::render_duration_histogram(
            &mut out,
            &format!("rpq_engine_{name}_duration_seconds"),
            &format!("Engine {name} phase latency."),
            hist,
        );
    }
    for (name, hist) in shared.telemetry.histograms() {
        prometheus::render_duration_histogram(
            &mut out,
            &format!("rpq_service_{name}_duration_seconds"),
            &format!("Service {name} latency."),
            hist,
        );
    }
    // ordering: Relaxed — in_flight is an advisory gauge in a metrics dump.
    let stats = shared.stats.snapshot(shared.in_flight.load(Ordering::Relaxed) as u64);
    let engine_stats = snapshot.stats();
    let counters: [(&str, &str, u64); 10] = [
        ("rpq_queries_ok_total", "Queries answered successfully.", stats.queries_ok),
        ("rpq_queries_rejected_total", "Queries rejected by admission.", stats.queries_rejected),
        (
            "rpq_queries_interrupted_total",
            "Queries interrupted by their budget.",
            stats.queries_interrupted,
        ),
        ("rpq_queries_failed_total", "Queries failed by engine errors.", stats.queries_failed),
        ("rpq_writes_applied_total", "Mutation batches applied.", stats.writes_applied),
        ("rpq_writes_rejected_total", "Mutation batches rejected.", stats.writes_rejected),
        ("rpq_frames_total", "Frames parsed and dispatched.", stats.frames),
        (
            "rpq_slow_queries_total",
            "Queries over the slow-query threshold.",
            shared.telemetry.slow_log.total_observed(),
        ),
        (
            "rpq_parallel_chunks_total",
            "Source-range chunks processed by parallel-pool workers.",
            engine_stats.parallel_chunks,
        ),
        (
            "rpq_parallel_steals_total",
            "Chunks stolen between parallel-pool workers.",
            engine_stats.parallel_steals,
        ),
    ];
    for (name, help, value) in counters {
        prometheus::render_counter(&mut out, name, help, value);
    }
    prometheus::render_gauge(
        &mut out,
        "rpq_in_flight_queries",
        "Queries evaluating right now.",
        stats.in_flight as f64,
    );
    prometheus::render_gauge(
        &mut out,
        "rpq_snapshot_age_seconds",
        "Age of the currently served snapshot.",
        snapshot.age().as_secs_f64(),
    );
    let ages: Vec<(String, f64)> = snapshot
        .telemetry()
        .snapshot_ages()
        .into_iter()
        .map(|(revision, age)| (revision.to_string(), age))
        .collect();
    prometheus::render_labelled_gauge(
        &mut out,
        "rpq_retained_snapshot_age_seconds",
        "Age per retained (pinned) snapshot revision.",
        "revision",
        &ages,
    );
    prometheus::render_gauge(
        &mut out,
        "rpq_slow_query_log_depth",
        "Slow-query entries waiting to be drained.",
        shared.telemetry.slow_log.len() as f64,
    );
    out
}

fn handle_metrics(shared: &Shared, id: Option<i64>, format: Option<&str>) -> String {
    let snapshot = shared.pinned_snapshot();
    match format {
        Some("prometheus") => render_ok(
            id,
            vec![
                ("format".to_string(), Value::String("prometheus".to_string())),
                (
                    "exposition".to_string(),
                    Value::String(prometheus_exposition(shared, &snapshot)),
                ),
            ],
        ),
        None | Some("json") => {
            let engine_hists: Vec<(String, Value)> = snapshot
                .telemetry()
                .histograms()
                .iter()
                .map(|(name, hist)| (name.to_string(), histogram_summary(hist)))
                .collect();
            let service_hists: Vec<(String, Value)> = shared
                .telemetry
                .histograms()
                .iter()
                .map(|(name, hist)| (name.to_string(), histogram_summary(hist)))
                .collect();
            let ages: Vec<Value> = snapshot
                .telemetry()
                .snapshot_ages()
                .into_iter()
                .map(|(revision, age)| {
                    Value::Object(vec![
                        ("revision".to_string(), Value::Int(revision as i128)),
                        ("age_s".to_string(), Value::Float(age)),
                    ])
                })
                .collect();
            let slow = &shared.telemetry.slow_log;
            render_ok(
                id,
                vec![
                    ("revision".to_string(), Value::Int(snapshot.revision() as i128)),
                    (
                        "telemetry_enabled".to_string(),
                        Value::Bool(snapshot.telemetry().enabled()),
                    ),
                    ("engine".to_string(), Value::Object(engine_hists)),
                    ("service".to_string(), Value::Object(service_hists)),
                    (
                        "snapshot_age_s".to_string(),
                        Value::Float(snapshot.age().as_secs_f64()),
                    ),
                    ("snapshot_ages".to_string(), Value::Array(ages)),
                    (
                        "slow_query_log".to_string(),
                        Value::Object(vec![
                            (
                                "threshold_ms".to_string(),
                                Value::Int((slow.threshold_us() / 1_000) as i128),
                            ),
                            ("capacity".to_string(), Value::Int(slow.capacity() as i128)),
                            ("pending".to_string(), Value::Int(slow.len() as i128)),
                            (
                                "total_observed".to_string(),
                                Value::Int(slow.total_observed() as i128),
                            ),
                        ]),
                    ),
                ],
            )
        }
        Some(other) => render_err(
            id,
            "parse_error",
            &format!("unsupported metrics format {other:?} (use \"json\" or \"prometheus\")"),
            None,
        ),
    }
}

fn handle_write(shared: &Shared, id: Option<i64>, op: WriteOp, applied: usize) -> String {
    if shared.shutdown.load(Ordering::SeqCst) {
        return render_err(id, "shutting_down", "server is draining", None);
    }
    if let WriteOp::AddEdges(edges) | WriteOp::RemoveEdges(edges) = &op {
        if edges.len() > shared.config.max_batch_edges {
            bump(&shared.stats.writes_rejected);
            return render_err(
                id,
                "batch_too_large",
                &format!(
                    "batch of {} edges exceeds max_batch_edges = {}",
                    edges.len(),
                    shared.config.max_batch_edges
                ),
                None,
            );
        }
    }
    // The slot only ever holds a complete Option<SyncSender>; recover from
    // poison instead of panicking inside a connection thread.
    let sender = shared
        .writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let Some(sender) = sender else {
        return render_err(id, "shutting_down", "server is draining", None);
    };
    let (reply_tx, reply_rx) = sync_channel(1);
    match sender.try_send(WriteJob { op, reply: reply_tx }) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            bump(&shared.stats.writer_overflows);
            return render_err(
                id,
                "overloaded",
                "writer queue is full",
                Some(RETRY_AFTER_MS),
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            return render_err(id, "shutting_down", "server is draining", None);
        }
    }
    // The writer always replies (or hangs up on shutdown, in which case the
    // queued job was still drained first).
    match reply_rx.recv() {
        Ok(Ok(summary)) => render_ok(
            id,
            vec![
                ("revision".to_string(), Value::Int(summary.revision as i128)),
                ("num_nodes".to_string(), Value::Int(summary.num_nodes as i128)),
                ("applied".to_string(), Value::Int(applied as i128)),
            ],
        ),
        Ok(Err(e)) => render_err(id, e.code(), &e.to_string(), None),
        Err(_) => render_err(id, "shutting_down", "server is draining", None),
    }
}

fn stats_fields(shared: &Shared) -> Vec<(String, Value)> {
    let snapshot = shared.pinned_snapshot();
    // ordering: Relaxed — in_flight is an advisory gauge in a stats reply.
    let service = shared.stats.snapshot(shared.in_flight.load(Ordering::Relaxed) as u64);
    let engine_stats = snapshot.stats();
    let int = |n: u64| Value::Int(n as i128);
    vec![
        ("revision".to_string(), int(snapshot.revision())),
        ("num_nodes".to_string(), Value::Int(snapshot.num_nodes() as i128)),
        (
            "service".to_string(),
            Value::Object(vec![
                ("connections".to_string(), int(service.connections)),
                ("frames".to_string(), int(service.frames)),
                ("protocol_errors".to_string(), int(service.protocol_errors)),
                ("frames_too_large".to_string(), int(service.frames_too_large)),
                ("queries_ok".to_string(), int(service.queries_ok)),
                ("queries_rejected".to_string(), int(service.queries_rejected)),
                ("queries_interrupted".to_string(), int(service.queries_interrupted)),
                ("queries_failed".to_string(), int(service.queries_failed)),
                ("writes_applied".to_string(), int(service.writes_applied)),
                ("writes_rejected".to_string(), int(service.writes_rejected)),
                ("writer_overflows".to_string(), int(service.writer_overflows)),
                ("in_flight".to_string(), int(service.in_flight)),
            ]),
        ),
        (
            "engine".to_string(),
            Value::Object(vec![
                ("answer_hits".to_string(), int(engine_stats.answer_hits)),
                ("answer_misses".to_string(), int(engine_stats.answer_misses)),
                ("compile_hits".to_string(), int(engine_stats.compile_hits)),
                ("compile_misses".to_string(), int(engine_stats.compile_misses)),
                ("parallel_evals".to_string(), int(engine_stats.parallel_evals)),
                ("sequential_evals".to_string(), int(engine_stats.sequential_evals)),
                ("parallel_chunks".to_string(), int(engine_stats.parallel_chunks)),
                ("parallel_steals".to_string(), int(engine_stats.parallel_steals)),
                (
                    "budget_interrupted_evals".to_string(),
                    int(engine_stats.budget_interrupted_evals),
                ),
                ("repair_budget_drops".to_string(), int(engine_stats.repair_budget_drops)),
                ("snapshot_retained".to_string(), int(engine_stats.snapshot_retained)),
                ("snapshot_dropped".to_string(), int(engine_stats.snapshot_dropped)),
                ("answer_compactions".to_string(), int(engine_stats.answer_compactions)),
                ("point_hits".to_string(), int(engine_stats.point_hits)),
                ("point_misses".to_string(), int(engine_stats.point_misses)),
                ("point_compactions".to_string(), int(engine_stats.point_compactions)),
                ("pair_evals".to_string(), int(engine_stats.pair_evals)),
                ("from_evals".to_string(), int(engine_stats.from_evals)),
                ("point_extension_hits".to_string(), int(engine_stats.point_extension_hits)),
            ]),
        ),
        (
            // Draining: each entry is reported exactly once across all
            // `stats` calls (concurrent observers keep accumulating).
            "slow_queries".to_string(),
            Value::Array(
                shared
                    .telemetry
                    .slow_log
                    .drain()
                    .into_iter()
                    .map(|entry| {
                        Value::Object(vec![
                            ("trace_id".to_string(), int(entry.trace_id)),
                            ("query".to_string(), Value::String(entry.query)),
                            ("elapsed_us".to_string(), int(entry.elapsed_us)),
                            ("revision".to_string(), int(entry.revision)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]
}

/// Outcome of one dispatched frame: the response line, plus whether the
/// connection (or the whole server) should wind down afterwards.
struct Dispatch {
    response: String,
    close_connection: bool,
}

fn dispatch(shared: &Shared, line: &str) -> Dispatch {
    let (id, request) = parse_frame(line);
    let request = match request {
        Ok(request) => request,
        Err(e) => {
            bump(&shared.stats.protocol_errors);
            return Dispatch {
                response: render_err(id, e.code, &e.message, None),
                close_connection: false,
            };
        }
    };
    bump(&shared.stats.frames);
    let response = match request {
        Request::Query { q, timeout_ms, max_visited, limit, trace, trace_id } => {
            handle_query(shared, id, &q, timeout_ms, max_visited, limit, trace, trace_id)
        }
        Request::SinglePair { q, from, to, timeout_ms, max_visited, trace, trace_id } => {
            handle_single_pair(shared, id, &q, from, to, timeout_ms, max_visited, trace, trace_id)
        }
        Request::ReachableFrom { q, from, limit, timeout_ms, max_visited, trace, trace_id } => {
            handle_reachable_from(
                shared,
                id,
                &q,
                from,
                limit,
                timeout_ms,
                max_visited,
                trace,
                trace_id,
            )
        }
        Request::AddEdges { edges } => {
            let applied = edges.len();
            handle_write(shared, id, WriteOp::AddEdges(edges), applied)
        }
        Request::RemoveEdges { edges } => {
            let applied = edges.len();
            handle_write(shared, id, WriteOp::RemoveEdges(edges), applied)
        }
        Request::RegisterView { name, regex } => {
            handle_write(shared, id, WriteOp::RegisterView { name, regex }, 1)
        }
        Request::View { name } => {
            let snapshot = shared.pinned_snapshot();
            match snapshot.view_extension(&name) {
                Some(answer) => {
                    let (pairs, total, truncated) =
                        pairs_payload(answer, shared.config.max_result_pairs);
                    render_ok(
                        id,
                        vec![
                            ("revision".to_string(), Value::Int(snapshot.revision() as i128)),
                            ("count".to_string(), Value::Int(total as i128)),
                            ("truncated".to_string(), Value::Bool(truncated)),
                            ("pairs".to_string(), Value::Array(pairs)),
                        ],
                    )
                }
                None => render_err(id, "unknown_view", &format!("no view named {name:?}"), None),
            }
        }
        Request::Stats => render_ok(id, stats_fields(shared)),
        Request::Metrics { format } => handle_metrics(shared, id, format.as_deref()),
        Request::Health => {
            let snapshot = shared.pinned_snapshot();
            render_ok(
                id,
                vec![
                    ("status".to_string(), Value::String("ok".to_string())),
                    ("revision".to_string(), Value::Int(snapshot.revision() as i128)),
                    (
                        "in_flight".to_string(),
                        // ordering: Relaxed — advisory gauge in a health reply.
                        Value::Int(shared.in_flight.load(Ordering::Relaxed) as i128),
                    ),
                ],
            )
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            return Dispatch {
                response: render_ok(
                    id,
                    vec![("status".to_string(), Value::String("draining".to_string()))],
                ),
                close_connection: true,
            };
        }
    };
    Dispatch { response, close_connection: false }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    bump(&shared.stats.connections);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let mut buf = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut reader, &mut buf, shared.config.max_frame_bytes, &shared.shutdown) {
            FrameRead::Idle => continue,
            FrameRead::Closed => return,
            FrameRead::TooLarge => {
                bump(&shared.stats.frames_too_large);
                let response = render_err(
                    None,
                    "frame_too_large",
                    &format!("frame exceeds max_frame_bytes = {}", shared.config.max_frame_bytes),
                    None,
                );
                if writer.write_all(response.as_bytes()).is_err() {
                    return;
                }
            }
            FrameRead::Frame => {
                let Ok(line) = std::str::from_utf8(&buf) else {
                    bump(&shared.stats.protocol_errors);
                    let response =
                        render_err(None, "parse_error", "frame is not valid UTF-8", None);
                    if writer.write_all(response.as_bytes()).is_err() {
                        return;
                    }
                    continue;
                };
                let outcome = dispatch(&shared, line);
                if writer.write_all(outcome.response.as_bytes()).is_err() {
                    return;
                }
                if outcome.close_connection {
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Server handle

/// A running RPQ server.  Dropping the handle shuts the server down
/// gracefully (prefer calling [`shutdown`](Server::shutdown) explicitly).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    writer_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Validates `config`, builds the engine around `db`, binds the
    /// listener, and starts the accept + writer threads.  `addr` may use
    /// port 0 to let the OS choose (see [`Server::addr`]).
    pub fn start(db: GraphDb, config: ServiceConfig) -> io::Result<Server> {
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let mut engine = QueryEngine::try_with_config(db, config.engine.clone())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let first_snapshot = engine.publish_snapshot();

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let (writer_tx, writer_rx) = sync_channel(config.writer_queue_depth);
        let telemetry = ServiceTelemetry::new(&config);
        let shared = Arc::new(Shared {
            config,
            snapshot: RwLock::new(first_snapshot),
            stats: ServiceStats::default(),
            telemetry,
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            writer: Mutex::new(Some(writer_tx)),
        });

        let writer_shared = shared.clone();
        let writer_thread = std::thread::spawn(move || writer_loop(engine, writer_rx, writer_shared));

        let accept_shared = shared.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut connections: Vec<JoinHandle<()>> = Vec::new();
            while !accept_shared.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn_shared = accept_shared.clone();
                        connections.push(std::thread::spawn(move || {
                            handle_connection(stream, conn_shared)
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_TICK);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_TICK),
                }
                // Reap finished connection threads so long-lived servers
                // don't accumulate handles.
                connections.retain(|handle| !handle.is_finished());
            }
            for handle in connections {
                let _ = handle.join();
            }
        });

        Ok(Server {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            writer_thread: Some(writer_thread),
        })
    }

    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown has been requested (by [`shutdown`](Self::shutdown)
    /// or a client's `shutdown` op).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Current service counters.
    pub fn stats(&self) -> ServiceStatsSnapshot {
        // ordering: Relaxed — in_flight is an advisory gauge in a stats call.
        self.shared
            .stats
            .snapshot(self.shared.in_flight.load(Ordering::Relaxed) as u64)
    }

    /// Graceful shutdown: stop accepting, reject new writes, drain queued
    /// writes and in-flight queries (bounded by `drain_timeout_ms`), then
    /// join every thread.
    pub fn shutdown(mut self) {
        self.wind_down();
    }

    fn wind_down(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Dropping the sender lets the writer drain its queue and exit.
        // Recover from poison: shutdown must proceed even if a connection
        // thread died, and the slot only ever holds a complete Option.
        *self
            .shared
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        let drain_deadline =
            Instant::now() + Duration::from_millis(self.shared.config.drain_timeout_ms);
        // ordering: Relaxed — drain polling; a late-observed decrement only
        // costs one extra 2ms sleep, and the deadline bounds the wait anyway.
        while self.shared.in_flight.load(Ordering::Relaxed) > 0
            && Instant::now() < drain_deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        if let Some(handle) = self.writer_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() || self.writer_thread.is_some() {
            self.wind_down();
        }
    }
}
