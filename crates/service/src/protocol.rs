//! Wire protocol: line-delimited JSON frames.
//!
//! Every request is one JSON object on one line; every response is one JSON
//! object on one line.  Requests carry an optional numeric `"id"` which is
//! echoed verbatim in the response so clients may pipeline.  Success
//! responses have `"ok": true`; failures have `"ok": false` plus an
//! `"error"` object with a stable machine-readable `"code"` (the
//! [`engine::EngineError::code`] strings plus the service-level codes below)
//! and a human-readable `"message"`.  Overload rejections additionally carry
//! `"retry_after_ms"` so well-behaved clients can back off.
//!
//! Service-level error codes (not produced by the engine itself):
//!
//! | code              | meaning                                             |
//! |-------------------|-----------------------------------------------------|
//! | `parse_error`     | frame is not valid JSON / not an object / bad shape |
//! | `unknown_op`      | `"op"` missing or not one of the supported verbs    |
//! | `frame_too_large` | request line exceeded `max_frame_bytes`             |
//! | `batch_too_large` | mutation batch exceeded `max_batch_edges`           |
//! | `overloaded`      | admission gate or writer queue full — retry later   |
//! | `unknown_view`    | `view` request named an unregistered view           |
//! | `shutting_down`   | server is draining; no new work accepted            |

use serde_json::Value;

/// A parsed request verb with its operands.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate an RPQ (concrete syntax, e.g. `a·(b+c)*`) against the
    /// current published snapshot under a per-request budget.
    Query {
        /// Query text in the concrete regex syntax.
        q: String,
        /// Per-request deadline in milliseconds (clamped to the server's
        /// `max_timeout_ms`; the server default applies when absent).
        timeout_ms: Option<u64>,
        /// Cap on visited product pairs (admission-controlled work bound).
        max_visited: Option<u64>,
        /// Cap on returned pairs (the full count is still reported).
        limit: Option<usize>,
        /// When true the response carries a `trace` object: per-phase spans
        /// (parse / cache_lookup / compile / product_bfs / chunk_merge, plus
        /// per-worker detail) and their totals — the explain surface.
        trace: bool,
        /// Caller-supplied trace id, echoed in the trace object so clients
        /// can correlate across systems; the server allocates one if absent.
        trace_id: Option<u64>,
    },
    /// Single-pair reachability probe: is node `to` reachable from node
    /// `from` along a path matching `q`?  Served by the snapshot's
    /// interactive read path (materialized-answer probe, then bidirectional
    /// meet-in-the-middle search) — never a full materialization.
    SinglePair {
        /// Query text in the concrete regex syntax.
        q: String,
        /// Source node id (as reported by mutation responses).
        from: usize,
        /// Target node id.
        to: usize,
        /// Per-request deadline in milliseconds (clamped like `query`).
        timeout_ms: Option<u64>,
        /// Cap on visited product pairs.
        max_visited: Option<u64>,
        /// When true the response carries a `trace` object with the
        /// interactive phases (`meet_check`, `bidir_forward`,
        /// `bidir_backward`) alongside parse/compile.
        trace: bool,
        /// Caller-supplied trace id, echoed in the trace object.
        trace_id: Option<u64>,
    },
    /// Single-source sweep: all nodes reachable from `from` along paths
    /// matching `q`, optionally stopping early after `limit` targets
    /// (top-k).  Served by the snapshot's interactive read path.
    ReachableFrom {
        /// Query text in the concrete regex syntax.
        q: String,
        /// Source node id.
        from: usize,
        /// Stop after this many distinct targets (the response's
        /// `truncated` flag reports whether the sweep stopped early).
        limit: Option<usize>,
        /// Per-request deadline in milliseconds (clamped like `query`).
        timeout_ms: Option<u64>,
        /// Cap on visited product pairs.
        max_visited: Option<u64>,
        /// When true the response carries a `trace` object.
        trace: bool,
        /// Caller-supplied trace id, echoed in the trace object.
        trace_id: Option<u64>,
    },
    /// Insert a batch of `[from, label, to]` name triples atomically.
    AddEdges {
        /// Edge triples; unknown node names are created, unknown labels
        /// reject the whole batch.
        edges: Vec<(String, String, String)>,
    },
    /// Remove a batch of `[from, label, to]` name triples atomically
    /// (validate-before-mutate: a missing occurrence rejects the batch).
    RemoveEdges {
        /// Edge triples to remove.
        edges: Vec<(String, String, String)>,
    },
    /// Register (or replace) a named materialized view.
    RegisterView {
        /// View name.
        name: String,
        /// View definition in the concrete regex syntax.
        regex: String,
    },
    /// Read a registered view's extension from the current snapshot.
    View {
        /// View name.
        name: String,
    },
    /// Service + engine counters.
    Stats,
    /// Latency histograms, snapshot-age gauges, and slow-query-log depth.
    Metrics {
        /// `None`/`"json"` returns structured summaries; `"prometheus"`
        /// returns text exposition (format 0.0.4) in an `exposition` field.
        format: Option<String>,
    },
    /// Liveness probe.
    Health,
    /// Ask the server to stop accepting work and drain.
    Shutdown,
}

/// A protocol-level failure: stable code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    fn parse(message: impl Into<String>) -> Self {
        ProtocolError { code: "parse_error", message: message.into() }
    }
}

fn parse_edges(value: Option<&Value>) -> Result<Vec<(String, String, String)>, ProtocolError> {
    let items = value
        .and_then(Value::as_array)
        .ok_or_else(|| ProtocolError::parse("\"edges\" must be an array of [from, label, to]"))?;
    let mut edges = Vec::with_capacity(items.len());
    for item in items {
        let triple = item
            .as_array()
            .filter(|parts| parts.len() == 3)
            .ok_or_else(|| ProtocolError::parse("each edge must be a [from, label, to] array"))?;
        let mut parts = triple.iter().map(|part| {
            part.as_str()
                .map(str::to_string)
                .ok_or_else(|| ProtocolError::parse("edge endpoints and labels must be strings"))
        });
        let (Some(from), Some(label), Some(to)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(ProtocolError::parse("each edge must be a [from, label, to] array"));
        };
        edges.push((from?, label?, to?));
    }
    Ok(edges)
}

fn required_str(obj: &Value, key: &str) -> Result<String, ProtocolError> {
    obj.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtocolError::parse(format!("\"{key}\" must be a string")))
}

fn required_node(obj: &Value, key: &str) -> Result<usize, ProtocolError> {
    obj.get(key)
        .and_then(Value::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| {
            ProtocolError::parse(format!("\"{key}\" must be a non-negative integer node id"))
        })
}

/// Parses one request line.  The request id (echoed in responses) is
/// extracted best-effort even when the rest of the frame is malformed, so
/// pipelining clients can correlate errors.
pub fn parse_frame(line: &str) -> (Option<i64>, Result<Request, ProtocolError>) {
    let value = match serde_json::from_str(line) {
        Ok(value) => value,
        Err(_) => return (None, Err(ProtocolError::parse("frame is not valid JSON"))),
    };
    if value.as_object().is_none() {
        return (None, Err(ProtocolError::parse("frame must be a JSON object")));
    }
    let id = value.get("id").and_then(Value::as_i64);
    (id, parse_request(&value))
}

fn parse_request(value: &Value) -> Result<Request, ProtocolError> {
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtocolError { code: "unknown_op", message: "missing \"op\"".into() })?;
    match op {
        "query" => Ok(Request::Query {
            q: required_str(value, "q")?,
            timeout_ms: value.get("timeout_ms").and_then(Value::as_u64),
            max_visited: value.get("max_visited").and_then(Value::as_u64),
            limit: value.get("limit").and_then(Value::as_u64).map(|n| n as usize),
            trace: value.get("trace").and_then(Value::as_bool).unwrap_or(false),
            trace_id: value.get("trace_id").and_then(Value::as_u64),
        }),
        "single_pair" => Ok(Request::SinglePair {
            q: required_str(value, "q")?,
            from: required_node(value, "from")?,
            to: required_node(value, "to")?,
            timeout_ms: value.get("timeout_ms").and_then(Value::as_u64),
            max_visited: value.get("max_visited").and_then(Value::as_u64),
            trace: value.get("trace").and_then(Value::as_bool).unwrap_or(false),
            trace_id: value.get("trace_id").and_then(Value::as_u64),
        }),
        "reachable_from" => Ok(Request::ReachableFrom {
            q: required_str(value, "q")?,
            from: required_node(value, "from")?,
            limit: value.get("limit").and_then(Value::as_u64).map(|n| n as usize),
            timeout_ms: value.get("timeout_ms").and_then(Value::as_u64),
            max_visited: value.get("max_visited").and_then(Value::as_u64),
            trace: value.get("trace").and_then(Value::as_bool).unwrap_or(false),
            trace_id: value.get("trace_id").and_then(Value::as_u64),
        }),
        "add_edges" => Ok(Request::AddEdges { edges: parse_edges(value.get("edges"))? }),
        "remove_edges" => Ok(Request::RemoveEdges { edges: parse_edges(value.get("edges"))? }),
        "register_view" => Ok(Request::RegisterView {
            name: required_str(value, "name")?,
            regex: required_str(value, "regex")?,
        }),
        "view" => Ok(Request::View { name: required_str(value, "name")? }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics {
            format: value.get("format").and_then(Value::as_str).map(str::to_string),
        }),
        "health" => Ok(Request::Health),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtocolError {
            code: "unknown_op",
            message: format!("unsupported op {other:?}"),
        }),
    }
}

fn id_value(id: Option<i64>) -> Value {
    match id {
        Some(id) => Value::Int(id as i128),
        None => Value::Null,
    }
}

/// Serializes a response value plus trailing newline.  The shim renderer
/// has no failure modes today, but the serving path must stay panic-free
/// even if one appears, so a render failure degrades to a hand-written
/// `internal_error` frame instead of unwinding the connection thread.
fn render_line(value: &Value) -> String {
    let mut line = serde_json::to_string(value).unwrap_or_else(|_| {
        concat!(
            "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"internal_error\",",
            "\"message\":\"response serialization failed\"}}"
        )
        .to_string()
    });
    line.push('\n');
    line
}

/// Renders a success response: `{"id":…,"ok":true, …fields}` plus newline.
pub fn render_ok(id: Option<i64>, fields: Vec<(String, Value)>) -> String {
    let mut entries = vec![("id".to_string(), id_value(id)), ("ok".to_string(), Value::Bool(true))];
    entries.extend(fields);
    render_line(&Value::Object(entries))
}

/// Renders a failure response: `{"id":…,"ok":false,"error":{…}}` plus
/// newline; `retry_after_ms` is included only for overload rejections.
pub fn render_err(
    id: Option<i64>,
    code: &str,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut entries = vec![
        ("id".to_string(), id_value(id)),
        ("ok".to_string(), Value::Bool(false)),
        (
            "error".to_string(),
            Value::Object(vec![
                ("code".to_string(), Value::String(code.to_string())),
                ("message".to_string(), Value::String(message.to_string())),
            ]),
        ),
    ];
    if let Some(ms) = retry_after_ms {
        entries.push(("retry_after_ms".to_string(), Value::Int(ms as i128)));
    }
    render_line(&Value::Object(entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_frames_parse_with_optional_budgets() {
        let (id, req) =
            parse_frame(r#"{"id":7,"op":"query","q":"a·b*","timeout_ms":50,"limit":10}"#);
        assert_eq!(id, Some(7));
        assert_eq!(
            req.unwrap(),
            Request::Query {
                q: "a·b*".into(),
                timeout_ms: Some(50),
                max_visited: None,
                limit: Some(10),
                trace: false,
                trace_id: None,
            }
        );
    }

    #[test]
    fn trace_flags_and_metrics_frames_parse() {
        let (_, req) = parse_frame(r#"{"op":"query","q":"a","trace":true,"trace_id":4242}"#);
        match req.unwrap() {
            Request::Query { trace, trace_id, .. } => {
                assert!(trace);
                assert_eq!(trace_id, Some(4242));
            }
            other => panic!("expected query, got {other:?}"),
        }

        let (_, req) = parse_frame(r#"{"op":"metrics"}"#);
        assert_eq!(req.unwrap(), Request::Metrics { format: None });
        let (_, req) = parse_frame(r#"{"op":"metrics","format":"prometheus"}"#);
        assert_eq!(req.unwrap(), Request::Metrics { format: Some("prometheus".into()) });
    }

    #[test]
    fn edge_batches_parse_as_name_triples() {
        let (_, req) = parse_frame(r#"{"op":"add_edges","edges":[["x","a","y"],["y","b","z"]]}"#);
        assert_eq!(
            req.unwrap(),
            Request::AddEdges {
                edges: vec![
                    ("x".into(), "a".into(), "y".into()),
                    ("y".into(), "b".into(), "z".into()),
                ],
            }
        );
    }

    #[test]
    fn interactive_frames_parse_with_integer_node_ids() {
        let (id, req) =
            parse_frame(r#"{"id":2,"op":"single_pair","q":"a·b*","from":3,"to":9}"#);
        assert_eq!(id, Some(2));
        assert_eq!(
            req.unwrap(),
            Request::SinglePair {
                q: "a·b*".into(),
                from: 3,
                to: 9,
                timeout_ms: None,
                max_visited: None,
                trace: false,
                trace_id: None,
            }
        );

        let (_, req) =
            parse_frame(r#"{"op":"reachable_from","q":"a","from":0,"limit":5,"trace":true}"#);
        assert_eq!(
            req.unwrap(),
            Request::ReachableFrom {
                q: "a".into(),
                from: 0,
                limit: Some(5),
                timeout_ms: None,
                max_visited: None,
                trace: true,
                trace_id: None,
            }
        );
    }

    #[test]
    fn malformed_frames_fail_without_panicking() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            "42",
            r#"{"op":"query"}"#,
            r#"{"op":"add_edges","edges":[["x","a"]]}"#,
            r#"{"op":"add_edges","edges":[["x","a",3]]}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"q":"a"}"#,
            r#"{"op":"single_pair","q":"a","from":0}"#,
            r#"{"op":"single_pair","q":"a","to":1}"#,
            r#"{"op":"single_pair","from":0,"to":1}"#,
            r#"{"op":"single_pair","q":"a","from":-1,"to":1}"#,
            r#"{"op":"single_pair","q":"a","from":"n0","to":1}"#,
            r#"{"op":"reachable_from","q":"a"}"#,
            r#"{"op":"reachable_from","from":0}"#,
            r#"{"op":"reachable_from","q":"a","from":1.5}"#,
        ] {
            let (_, req) = parse_frame(bad);
            assert!(req.is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn ids_survive_malformed_request_bodies() {
        let (id, req) = parse_frame(r#"{"id":3,"op":"query"}"#);
        assert_eq!(id, Some(3));
        assert!(req.is_err());
    }

    #[test]
    fn responses_render_as_single_lines() {
        let ok = render_ok(Some(1), vec![("count".into(), Value::Int(2))]);
        assert_eq!(ok, "{\"id\":1,\"ok\":true,\"count\":2}\n");
        let err = render_err(None, "overloaded", "try later", Some(25));
        assert_eq!(
            err,
            "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"overloaded\",\
             \"message\":\"try later\"},\"retry_after_ms\":25}\n"
        );
        let parsed = serde_json::from_str(err.trim_end()).unwrap();
        assert_eq!(parsed["error"]["code"].as_str(), Some("overloaded"));
    }
}
