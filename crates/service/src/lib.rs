//! A hardened serving layer over the [`engine`] crate: a line-delimited
//! JSON protocol on plain TCP (`std::net` only — no external server
//! frameworks exist in this environment), built so that **no client input
//! and no load pattern can panic, wedge, or starve the engine**.
//!
//! The paper's setting (Calvanese–De Giacomo–Lenzerini–Vardi, PODS'99)
//! treats query rewriting and evaluation as offline algebra; this crate is
//! the part a reproduction needs once those algorithms sit behind a
//! network socket: request framing with hard size caps, per-request
//! deadlines mapped onto [`engine::QueryBudget`]s, admission control with
//! explicit backpressure (`overloaded` + `retry_after_ms` rather than
//! unbounded queueing), a single-writer mutation queue preserving the
//! engine's validate-before-mutate atomicity, and graceful drain on
//! shutdown.
//!
//! * [`protocol`] — the frame grammar and response rendering.
//! * [`server`] — the accept/connection/writer threading model.
//! * [`ServiceConfig`] — every robustness knob in one place.
//!
//! ```no_run
//! use service::{Server, ServiceConfig};
//!
//! let db = graphdb::GraphDb::new(automata::Alphabet::from_chars(['a', 'b']).unwrap());
//! let server = Server::start(db, ServiceConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod protocol;
pub mod server;

pub use protocol::{ProtocolError, Request};
pub use server::{Server, ServiceStatsSnapshot};

use engine::{EngineConfig, EngineError};

/// Every robustness knob of a [`Server`] in one place.
///
/// The defaults are sized for a small deployment; tests shrink the caps to
/// force the failure paths deterministically.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; port 0 lets the OS pick (see [`Server::addr`]).
    pub addr: String,
    /// Maximum concurrently evaluating queries; excess requests are
    /// rejected with `overloaded` + `retry_after_ms`.
    pub max_inflight: usize,
    /// Bounded depth of the single-writer mutation queue; a full queue
    /// rejects the write immediately instead of stalling the connection.
    pub writer_queue_depth: usize,
    /// Deadline applied to queries that do not send `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Hard ceiling on any requested `timeout_ms`.
    pub max_timeout_ms: u64,
    /// Maximum edges per mutation batch (`batch_too_large` beyond it).
    pub max_batch_edges: usize,
    /// Maximum request-line length in bytes (`frame_too_large` beyond it;
    /// the connection survives).
    pub max_frame_bytes: usize,
    /// Hard cap on pairs returned per response (the true count is still
    /// reported and `truncated` is set).
    pub max_result_pairs: usize,
    /// How long a graceful shutdown waits for in-flight queries.
    pub drain_timeout_ms: u64,
    /// Queries slower than this land in the slow-query log (drained through
    /// the `stats` op).  0 logs every query — useful in tests, noisy in
    /// production.
    pub slow_query_threshold_ms: u64,
    /// Ring capacity of the slow-query log: the newest entries win; evicted
    /// ones are counted, never silently lost.
    pub slow_query_log_capacity: usize,
    /// Engine tuning; must pass [`EngineConfig::validate`].  Its
    /// `telemetry` flag also gates the service-side latency histograms.
    pub engine: EngineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 32,
            writer_queue_depth: 64,
            default_timeout_ms: 2_000,
            max_timeout_ms: 30_000,
            max_batch_edges: 10_000,
            max_frame_bytes: 1 << 20,
            max_result_pairs: 100_000,
            drain_timeout_ms: 5_000,
            slow_query_threshold_ms: 250,
            slow_query_log_capacity: 128,
            engine: EngineConfig::serving(),
        }
    }
}

impl ServiceConfig {
    /// Rejects configurations that would make the server unable to accept
    /// any work (zero capacities) or unable to bound it (zero caps), plus
    /// whatever [`EngineConfig::validate`] rejects.
    pub fn validate(&self) -> Result<(), EngineError> {
        let invalid = |message: &str| EngineError::InvalidConfig { message: message.to_string() };
        if self.max_inflight == 0 {
            return Err(invalid("max_inflight must be at least 1"));
        }
        if self.writer_queue_depth == 0 {
            return Err(invalid("writer_queue_depth must be at least 1"));
        }
        if self.max_timeout_ms == 0 {
            return Err(invalid("max_timeout_ms must be at least 1"));
        }
        if self.max_frame_bytes < 2 {
            return Err(invalid("max_frame_bytes must hold at least a tiny frame"));
        }
        if self.max_result_pairs == 0 {
            return Err(invalid("max_result_pairs must be at least 1"));
        }
        if self.max_batch_edges == 0 {
            return Err(invalid("max_batch_edges must be at least 1"));
        }
        if self.slow_query_log_capacity == 0 {
            return Err(invalid(
                "slow_query_log_capacity must be at least 1 (raise the threshold to silence it)",
            ));
        }
        self.engine.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServiceConfig::default().validate().is_ok());
    }

    #[test]
    fn each_degenerate_knob_is_rejected() {
        type Breaker = Box<dyn Fn(&mut ServiceConfig)>;
        let cases: Vec<(&str, Breaker)> = vec![
            ("max_inflight", Box::new(|c| c.max_inflight = 0)),
            ("writer_queue_depth", Box::new(|c| c.writer_queue_depth = 0)),
            ("max_timeout_ms", Box::new(|c| c.max_timeout_ms = 0)),
            ("max_frame_bytes", Box::new(|c| c.max_frame_bytes = 0)),
            ("max_result_pairs", Box::new(|c| c.max_result_pairs = 0)),
            ("max_batch_edges", Box::new(|c| c.max_batch_edges = 0)),
            ("slow_query_log_capacity", Box::new(|c| c.slow_query_log_capacity = 0)),
            ("engine.threads", Box::new(|c| c.engine.threads = 0)),
            ("engine.answer_cache_capacity", Box::new(|c| c.engine.answer_cache_capacity = 0)),
        ];
        for (knob, break_it) in cases {
            let mut config = ServiceConfig::default();
            break_it(&mut config);
            let err = config.validate().expect_err(knob);
            assert_eq!(err.code(), "invalid_config", "{knob}");
        }
    }
}
