//! Glushkov (position automaton) translation: regular expression → ε-free NFA.
//!
//! The Glushkov automaton has exactly `#positions + 1` states and no
//! ε-transitions, which often determinizes to fewer states than the Thompson
//! automaton; DESIGN.md ablation #2 compares the two as front-ends of the
//! rewriting pipeline (benchmark E6).

use std::collections::{BTreeMap, BTreeSet};

use automata::{Alphabet, Nfa};

use crate::ast::Regex;
use crate::thompson::UnknownSymbol;

/// A regular expression annotated with distinct positions at every symbol
/// occurrence, together with the classic `nullable` / `first` / `last` /
/// `follow` sets.
#[derive(Debug)]
struct Positions {
    /// Symbol name of each position (positions are 1-based; 0 is the fresh
    /// initial state of the automaton).
    symbol_of: Vec<String>,
}

#[derive(Debug, Clone)]
struct Glu {
    nullable: bool,
    first: BTreeSet<usize>,
    last: BTreeSet<usize>,
    follow: BTreeMap<usize, BTreeSet<usize>>,
}

impl Glu {
    fn empty_sets() -> Self {
        Glu {
            nullable: false,
            first: BTreeSet::new(),
            last: BTreeSet::new(),
            follow: BTreeMap::new(),
        }
    }

    fn merge_follow(mut a: BTreeMap<usize, BTreeSet<usize>>, b: BTreeMap<usize, BTreeSet<usize>>) -> BTreeMap<usize, BTreeSet<usize>> {
        for (k, v) in b {
            a.entry(k).or_default().extend(v);
        }
        a
    }
}

fn analyze(expr: &Regex, positions: &mut Positions) -> Glu {
    match expr {
        Regex::Empty => Glu::empty_sets(),
        Regex::Epsilon => Glu {
            nullable: true,
            ..Glu::empty_sets()
        },
        Regex::Symbol(name) => {
            positions.symbol_of.push(name.to_string());
            let p = positions.symbol_of.len(); // 1-based
            Glu {
                nullable: false,
                first: BTreeSet::from([p]),
                last: BTreeSet::from([p]),
                follow: BTreeMap::new(),
            }
        }
        Regex::Concat(parts) => {
            let mut acc = Glu {
                nullable: true,
                ..Glu::empty_sets()
            };
            for part in parts {
                let g = analyze(part, positions);
                let mut follow = Glu::merge_follow(acc.follow.clone(), g.follow.clone());
                // last(acc) × first(g) are follow pairs.
                for &l in &acc.last {
                    follow.entry(l).or_default().extend(g.first.iter().copied());
                }
                let first = if acc.nullable {
                    acc.first.union(&g.first).copied().collect()
                } else {
                    acc.first.clone()
                };
                let last = if g.nullable {
                    acc.last.union(&g.last).copied().collect()
                } else {
                    g.last.clone()
                };
                acc = Glu {
                    nullable: acc.nullable && g.nullable,
                    first,
                    last,
                    follow,
                };
            }
            acc
        }
        Regex::Union(parts) => {
            let mut acc = Glu::empty_sets();
            for part in parts {
                let g = analyze(part, positions);
                acc = Glu {
                    nullable: acc.nullable || g.nullable,
                    first: acc.first.union(&g.first).copied().collect(),
                    last: acc.last.union(&g.last).copied().collect(),
                    follow: Glu::merge_follow(acc.follow, g.follow),
                };
            }
            acc
        }
        Regex::Star(inner) | Regex::Plus(inner) => {
            let g = analyze(inner, positions);
            let mut follow = g.follow.clone();
            for &l in &g.last {
                follow.entry(l).or_default().extend(g.first.iter().copied());
            }
            Glu {
                nullable: matches!(expr, Regex::Star(_)) || g.nullable,
                first: g.first,
                last: g.last,
                follow,
            }
        }
        Regex::Optional(inner) => {
            let g = analyze(inner, positions);
            Glu {
                nullable: true,
                ..g
            }
        }
    }
}

/// Translates `expr` into an ε-free NFA over `alphabet` using the Glushkov
/// position-automaton construction.
pub fn glushkov(expr: &Regex, alphabet: &Alphabet) -> Result<Nfa, UnknownSymbol> {
    // Check symbols up front so that the error matches Thompson's behaviour.
    for name in expr.symbols() {
        if alphabet.symbol(&name).is_none() {
            return Err(UnknownSymbol {
                name,
                alphabet: alphabet.render(),
            });
        }
    }
    let mut positions = Positions { symbol_of: Vec::new() };
    let g = analyze(expr, &mut positions);
    let num_positions = positions.symbol_of.len();

    let mut nfa = Nfa::new(alphabet.clone());
    // State 0 is the fresh initial state; state p (1-based) is position p.
    let states = nfa.add_states(num_positions + 1);
    nfa.set_initial(states[0]);
    if g.nullable {
        nfa.set_final(states[0]);
    }
    for &p in &g.last {
        nfa.set_final(states[p]);
    }
    for &p in &g.first {
        let sym = alphabet
            .symbol(&positions.symbol_of[p - 1])
            .expect("checked above");
        nfa.add_transition(states[0], sym, states[p]);
    }
    for (&p, follows) in &g.follow {
        for &q in follows {
            let sym = alphabet
                .symbol(&positions.symbol_of[q - 1])
                .expect("checked above");
            nfa.add_transition(states[p], sym, states[q]);
        }
    }
    Ok(nfa)
}

/// Translates `expr` over its own inferred alphabet.
pub fn glushkov_auto(expr: &Regex) -> Nfa {
    let alphabet = expr.inferred_alphabet();
    glushkov(expr, &alphabet).expect("inferred alphabet covers all symbols")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::thompson::thompson;
    use automata::nfa_equivalent;

    fn abc() -> Alphabet {
        Alphabet::from_chars(['a', 'b', 'c']).unwrap()
    }

    #[test]
    fn position_automaton_has_no_epsilons_and_linear_states() {
        let alpha = abc();
        let expr = parse("a·(b·a+c)*").unwrap();
        let nfa = glushkov(&expr, &alpha).unwrap();
        // 4 symbol occurrences + 1 initial state.
        assert_eq!(nfa.num_states(), 5);
        assert!(nfa.transitions().all(|(_, label, _)| label.is_some()));
    }

    #[test]
    fn accepts_same_words_as_thompson() {
        let alpha = abc();
        for src in [
            "a·(b·a+c)*",
            "a·c*·b",
            "(a+b)*·c",
            "ε",
            "∅",
            "a?·b^+",
            "(a·b)*+(b·c)*",
            "((a+ε)·c)*",
        ] {
            let expr = parse(src).unwrap();
            let g = glushkov(&expr, &alpha).unwrap();
            let t = thompson(&expr, &alpha).unwrap();
            assert!(
                nfa_equivalent(&g, &t).holds(),
                "Glushkov and Thompson disagree on {src}"
            );
        }
    }

    #[test]
    fn nullable_expressions_accept_epsilon() {
        let alpha = abc();
        let nfa = glushkov(&parse("(a·b)*").unwrap(), &alpha).unwrap();
        assert!(nfa.accepts(&[]));
        let nfa = glushkov(&parse("a·b?").unwrap(), &alpha).unwrap();
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn unknown_symbol_is_an_error() {
        let alpha = Alphabet::from_chars(['a']).unwrap();
        let err = glushkov(&parse("a·q").unwrap(), &alpha).unwrap_err();
        assert_eq!(err.name, "q");
    }

    #[test]
    fn auto_alphabet_works() {
        let nfa = glushkov_auto(&parse("x·y*·z").unwrap());
        assert!(nfa.accepts_names(&["x", "z"]));
        assert!(nfa.accepts_names(&["x", "y", "y", "z"]));
        assert!(!nfa.accepts_names(&["x", "y"]));
    }
}
