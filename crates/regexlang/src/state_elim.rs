//! State elimination: automaton → regular expression.
//!
//! The rewriting algorithm of the paper produces the Σ_E-maximal rewriting as
//! an *automaton* (`R_{E,E0}` is the complement of `A'`).  To present it in
//! the paper's notation — e.g. `e2*·e1·e3*` for Figure 1 — the automaton is
//! converted back into a regular expression by generalized-NFA (GNFA) state
//! elimination, simplifying edge labels as they are combined.

use std::collections::BTreeMap;

use automata::{Dfa, Nfa, StateId};

use crate::ast::Regex;
use crate::simplify::simplify;

/// Converts an NFA into an equivalent regular expression over the symbol
/// names of its alphabet.
pub fn nfa_to_regex(nfa: &Nfa) -> Regex {
    // Work on the trimmed automaton: dead states only bloat the elimination.
    let nfa = nfa.trim();
    if nfa.num_states() == 0 {
        return Regex::Empty;
    }
    let n = nfa.num_states();
    // GNFA states: 0 = fresh initial, 1..=n = original states, n+1 = fresh final.
    let init = 0usize;
    let fin = n + 1;
    let mut edges: BTreeMap<(usize, usize), Regex> = BTreeMap::new();
    let add_edge = |edges: &mut BTreeMap<(usize, usize), Regex>, from: usize, to: usize, label: Regex| {
        edges
            .entry((from, to))
            .and_modify(|existing| *existing = existing.clone().or(label.clone()))
            .or_insert(label);
    };

    for &s in nfa.initial_states() {
        add_edge(&mut edges, init, s + 1, Regex::Epsilon);
    }
    for &s in nfa.final_states() {
        add_edge(&mut edges, s + 1, fin, Regex::Epsilon);
    }
    for (from, label, to) in nfa.transitions() {
        let regex = match label {
            Some(sym) => Regex::symbol(nfa.alphabet().name(sym)),
            None => Regex::Epsilon,
        };
        add_edge(&mut edges, from + 1, to + 1, regex);
    }

    // Eliminate original states one at a time, lowest fan-in×fan-out first
    // (a standard heuristic that keeps intermediate expressions small).
    let mut remaining: Vec<usize> = (1..=n).collect();
    while let Some(pick_idx) = pick_state(&remaining, &edges) {
        let s = remaining.remove(pick_idx);
        let self_loop = edges.remove(&(s, s));
        let loop_star = match self_loop {
            Some(r) => simplify(&r.star()),
            None => Regex::Epsilon,
        };
        let incoming: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|(&(_, to), _)| to == s)
            .map(|(&(from, _), r)| (from, r.clone()))
            .collect();
        let outgoing: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|(&(from, _), _)| from == s)
            .map(|(&(_, to), r)| (to, r.clone()))
            .collect();
        edges.retain(|&(from, to), _| from != s && to != s);
        for (p, r_in) in &incoming {
            for (q, r_out) in &outgoing {
                let through = simplify(
                    &r_in
                        .clone()
                        .then(loop_star.clone())
                        .then(r_out.clone()),
                );
                if through == Regex::Empty {
                    continue;
                }
                edges
                    .entry((*p, *q))
                    .and_modify(|existing| *existing = simplify(&existing.clone().or(through.clone())))
                    .or_insert(through);
            }
        }
    }

    match edges.get(&(init, fin)) {
        Some(r) => simplify(r),
        None => Regex::Empty,
    }
}

/// Converts a DFA into an equivalent regular expression.
pub fn dfa_to_regex(dfa: &Dfa) -> Regex {
    nfa_to_regex(&Nfa::from_dfa(dfa))
}

/// Picks the index (within `remaining`) of the next state to eliminate:
/// the one minimizing `in-degree × out-degree`, which empirically keeps the
/// resulting expression shortest.
fn pick_state(remaining: &[StateId], edges: &BTreeMap<(usize, usize), Regex>) -> Option<usize> {
    if remaining.is_empty() {
        return None;
    }
    let mut best: Option<(usize, usize)> = None; // (index, cost)
    for (idx, &s) in remaining.iter().enumerate() {
        let fan_in = edges.keys().filter(|&&(from, to)| to == s && from != s).count();
        let fan_out = edges.keys().filter(|&&(from, to)| from == s && to != s).count();
        let cost = fan_in * fan_out;
        if best.map(|(_, c)| cost < c).unwrap_or(true) {
            best = Some((idx, cost));
        }
    }
    best.map(|(idx, _)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::thompson::{thompson, thompson_auto};
    use automata::{determinize, nfa_equivalent, Alphabet};

    /// Round-trips an expression through NFA → regex and checks language
    /// equality.
    fn roundtrip_preserves(src: &str) {
        let expr = parse(src).unwrap();
        let alpha = expr.inferred_alphabet();
        let nfa = thompson(&expr, &alpha).unwrap();
        let back = nfa_to_regex(&nfa);
        let back_nfa = thompson(&back, &alpha).unwrap();
        assert!(
            nfa_equivalent(&nfa, &back_nfa).holds(),
            "round-trip changed the language of {src}: got {back}"
        );
    }

    #[test]
    fn roundtrips_basic_expressions() {
        for src in [
            "a",
            "a·b",
            "a+b",
            "a*",
            "a·(b·a+c)*",
            "a·c*·b",
            "(a+b)*·c·(a+b)*",
            "a^+·b?",
        ] {
            roundtrip_preserves(src);
        }
    }

    #[test]
    fn empty_language_automaton_gives_empty_regex() {
        let alpha = Alphabet::from_chars(['a']).unwrap();
        assert_eq!(nfa_to_regex(&Nfa::empty(alpha.clone())), Regex::Empty);
        assert_eq!(dfa_to_regex(&Dfa::empty(alpha)), Regex::Empty);
    }

    #[test]
    fn epsilon_automaton_gives_nullable_regex() {
        let alpha = Alphabet::from_chars(['a']).unwrap();
        let r = nfa_to_regex(&Nfa::epsilon(alpha));
        assert!(r.is_nullable());
        assert!(thompson_auto(&r).accepts(&[]));
    }

    #[test]
    fn dfa_roundtrip_preserves_language() {
        let expr = parse("a·(b·a+c)*").unwrap();
        let alpha = expr.inferred_alphabet();
        let dfa = determinize(&thompson(&expr, &alpha).unwrap());
        let back = dfa_to_regex(&dfa);
        let back_nfa = thompson(&back, &alpha).unwrap();
        let orig_nfa = thompson(&expr, &alpha).unwrap();
        assert!(nfa_equivalent(&orig_nfa, &back_nfa).holds(), "got {back}");
    }

    #[test]
    fn figure1_rewriting_shape() {
        // The rewriting automaton of Figure 1 over the view alphabet
        // {e1, e2, e3}: state 0 --e2--> 0, 0 --e1--> 1, 1 --e3--> 1,
        // initial 0, final 1.  Expected expression: e2*·e1·e3*.
        let alpha = Alphabet::from_names(["e1", "e2", "e3"]).unwrap();
        let e1 = alpha.symbol("e1").unwrap();
        let e2 = alpha.symbol("e2").unwrap();
        let e3 = alpha.symbol("e3").unwrap();
        let dfa = Dfa::from_parts(
            alpha.clone(),
            2,
            0,
            [1],
            [(0, e2, 0), (0, e1, 1), (1, e3, 1)],
        );
        let regex = dfa_to_regex(&dfa);
        assert_eq!(regex.to_string(), "e2*·e1·e3*");
    }

    #[test]
    fn universal_automaton_roundtrips() {
        let alpha = Alphabet::from_chars(['a', 'b']).unwrap();
        let r = dfa_to_regex(&Dfa::universal(alpha.clone()));
        let nfa = thompson(&r, &alpha).unwrap();
        assert!(nfa_equivalent(&nfa, &Nfa::universal(alpha)).holds());
    }
}
