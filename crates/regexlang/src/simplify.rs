//! Algebraic simplification of regular expressions.
//!
//! The rewritings produced by state elimination (automaton → expression) are
//! syntactically noisy; these local rewrite rules — all of them sound
//! language-preserving identities of Kleene algebra — keep them readable.
//! Example 2.3 of the paper expects the rewriting automaton of Figure 1 to
//! read back as `e2*·e1·e3*`, which only falls out after simplification.

use crate::ast::Regex;

/// Applies language-preserving simplification rules bottom-up until a fixed
/// point is reached (bounded by a small iteration limit to guarantee
/// termination even on pathological inputs).
pub fn simplify(expr: &Regex) -> Regex {
    let mut current = expr.clone();
    for _ in 0..16 {
        let next = simplify_once(&current);
        if next == current {
            return next;
        }
        current = next;
    }
    current
}

fn simplify_once(expr: &Regex) -> Regex {
    match expr {
        Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => expr.clone(),
        Regex::Concat(parts) => simplify_concat(parts),
        Regex::Union(parts) => simplify_union(parts),
        Regex::Star(inner) => simplify_star(&simplify_once(inner)),
        Regex::Plus(inner) => simplify_plus(&simplify_once(inner)),
        Regex::Optional(inner) => simplify_optional(&simplify_once(inner)),
    }
}

fn simplify_concat(parts: &[Regex]) -> Regex {
    let mut flat: Vec<Regex> = Vec::new();
    for part in parts {
        let p = simplify_once(part);
        match p {
            Regex::Empty => return Regex::Empty, // ∅ is absorbing for ·
            Regex::Epsilon => {}                 // ε is the unit of ·
            Regex::Concat(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    // x*·x* = x*   and   x*·x? = x*   (adjacent collapsible repetitions)
    let mut collapsed: Vec<Regex> = Vec::new();
    for p in flat {
        if let (Some(Regex::Star(prev)), Regex::Star(cur)) = (collapsed.last(), &p) {
            if prev == cur {
                continue;
            }
        }
        if let (Some(Regex::Star(prev)), Regex::Optional(cur)) = (collapsed.last(), &p) {
            if prev == cur {
                continue;
            }
        }
        collapsed.push(p);
    }
    Regex::concat_all(collapsed)
}

fn simplify_union(parts: &[Regex]) -> Regex {
    let mut flat: Vec<Regex> = Vec::new();
    for part in parts {
        let p = simplify_once(part);
        match p {
            Regex::Empty => {} // ∅ is the unit of +
            Regex::Union(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    // Deduplicate while preserving the first-occurrence order.
    let mut unique: Vec<Regex> = Vec::new();
    for p in flat {
        if !unique.contains(&p) {
            unique.push(p);
        }
    }
    // ε + x  where x is nullable  =  x.
    if unique.len() > 1 && unique.iter().any(|p| *p != Regex::Epsilon && p.is_nullable()) {
        unique.retain(|p| *p != Regex::Epsilon);
    }
    Regex::union_all(unique)
}

fn simplify_star(inner: &Regex) -> Regex {
    match inner {
        Regex::Empty | Regex::Epsilon => Regex::Epsilon, // ∅* = ε* = ε
        Regex::Star(x) => Regex::Star(x.clone()),        // (x*)* = x*
        Regex::Plus(x) => Regex::Star(x.clone()),        // (x^+)* = x*
        Regex::Optional(x) => Regex::Star(x.clone()),    // (x?)* = x*
        other => Regex::Star(Box::new(other.clone())),
    }
}

fn simplify_plus(inner: &Regex) -> Regex {
    match inner {
        Regex::Empty => Regex::Empty,                    // ∅^+ = ∅
        Regex::Epsilon => Regex::Epsilon,                // ε^+ = ε
        Regex::Star(x) => Regex::Star(x.clone()),        // (x*)^+ = x*
        Regex::Optional(x) => Regex::Star(x.clone()),    // (x?)^+ = x*
        Regex::Plus(x) => Regex::Plus(x.clone()),        // (x^+)^+ = x^+
        other => Regex::Plus(Box::new(other.clone())),
    }
}

fn simplify_optional(inner: &Regex) -> Regex {
    match inner {
        Regex::Empty | Regex::Epsilon => Regex::Epsilon, // ∅? = ε? = ε
        Regex::Star(x) => Regex::Star(x.clone()),        // (x*)? = x*
        Regex::Plus(x) => Regex::Star(x.clone()),        // (x^+)? = x*
        Regex::Optional(x) => Regex::Optional(x.clone()),
        other if other.is_nullable() => other.clone(),   // x? = x when ε ∈ L(x)
        other => Regex::Optional(Box::new(other.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::thompson::thompson_auto;
    use automata::nfa_equivalent;

    fn simp(src: &str) -> String {
        simplify(&parse(src).unwrap()).to_string()
    }

    #[test]
    fn units_and_absorbing_elements() {
        assert_eq!(simp("a·ε·b"), "a·b");
        assert_eq!(simp("a·∅·b"), "∅");
        assert_eq!(simp("∅+a+∅"), "a");
        assert_eq!(simp("ε·ε"), "ε");
    }

    #[test]
    fn star_laws() {
        assert_eq!(simp("∅*"), "ε");
        assert_eq!(simp("ε*"), "ε");
        assert_eq!(simp("(a*)*"), "a*");
        assert_eq!(simp("(a^+)*"), "a*");
        assert_eq!(simp("(a?)*"), "a*");
        assert_eq!(simp("a*·a*"), "a*");
        assert_eq!(simp("a*·a?"), "a*");
    }

    #[test]
    fn plus_and_optional_laws() {
        assert_eq!(simp("∅^+"), "∅");
        assert_eq!(simp("ε^+"), "ε");
        assert_eq!(simp("(a*)^+"), "a*");
        assert_eq!(simp("(a*)?"), "a*");
        assert_eq!(simp("(a^+)?"), "a*");
        assert_eq!(simp("(a·b*)?"), "(a·b*)?");
        assert_eq!(simp("(a?·b*)?"), "a?·b*");
    }

    #[test]
    fn union_dedup_and_epsilon_absorption() {
        assert_eq!(simp("a+a+b"), "a+b");
        assert_eq!(simp("ε+a*"), "a*");
        assert_eq!(simp("a*+ε"), "a*");
        assert_eq!(simp("ε+a"), "ε+a"); // a is not nullable: ε must stay
    }

    #[test]
    fn nested_simplification_reaches_fixpoint() {
        assert_eq!(simp("((a+∅)·ε)*·((a*)*)?"), "a*");
        assert_eq!(simp("(∅·x+y·ε)?"), "y?");
    }

    #[test]
    fn simplification_preserves_language() {
        for src in [
            "a·(b·a+c)*",
            "((a+∅)·ε)*·((b*)*)?",
            "(a?·b*)?+∅^+",
            "a*·a*·a?",
            "ε+a+a·b",
            "(a·b)*·(a·b)*",
            "(ε+a)·(ε+b)",
        ] {
            let original = parse(src).unwrap();
            let simplified = simplify(&original);
            let lhs = thompson_auto(&original);
            let rhs = thompson_auto(&simplified);
            // Guard: languages over symbols possibly missing from the
            // simplified expression — lift both to the original's alphabet.
            let alpha = original.inferred_alphabet();
            let lhs = lhs.with_alphabet(alpha.clone());
            let rhs_nfa = crate::thompson::thompson(&simplified, &alpha).unwrap();
            assert!(
                nfa_equivalent(&lhs, &rhs_nfa).holds(),
                "simplification changed the language of {src}: {} vs {}",
                original,
                simplified
            );
            let _ = rhs;
        }
    }

    #[test]
    fn simplified_size_never_grows() {
        for src in ["a·(b·a+c)*", "((a+∅)·ε)*", "a*·a*·a*", "(x?)*·(y^+)?"] {
            let original = parse(src).unwrap();
            let simplified = simplify(&original);
            assert!(simplified.size() <= original.size(), "{src}");
        }
    }
}
