//! Abstract syntax of regular expressions.
//!
//! Symbols are *named*: the paper's queries range over multi-character edge
//! labels (`rome`, `restaurant`) and over view symbols (`e1`, `e2`, …), so an
//! AST leaf carries a symbol name rather than a character.  Expressions are
//! bound to an [`automata::Alphabet`] only when they are translated to
//! automata.
//!
//! The operator set follows the paper: union (`+`), concatenation (`·`),
//! Kleene star (`*`), plus the standard derived operators `+` (one-or-more,
//! written `^+` in concrete syntax to avoid clashing with union) and `?`.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use automata::Alphabet;

/// A regular expression over named symbols.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The language {ε}.
    Epsilon,
    /// A single named symbol.
    Symbol(Arc<str>),
    /// Concatenation of the sub-expressions, in order.
    Concat(Vec<Regex>),
    /// Union (the paper's `+`) of the sub-expressions.
    Union(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One-or-more repetitions.
    Plus(Box<Regex>),
    /// Zero-or-one occurrence.
    Optional(Box<Regex>),
}

impl Regex {
    /// A single symbol expression.
    pub fn symbol(name: impl AsRef<str>) -> Regex {
        Regex::Symbol(Arc::from(name.as_ref()))
    }

    /// The empty-language expression ∅.
    pub fn empty() -> Regex {
        Regex::Empty
    }

    /// The empty-word expression ε.
    pub fn epsilon() -> Regex {
        Regex::Epsilon
    }

    /// Concatenation `self · other` (flattening nested concatenations).
    pub fn then(self, other: Regex) -> Regex {
        match (self, other) {
            (Regex::Concat(mut xs), Regex::Concat(ys)) => {
                xs.extend(ys);
                Regex::Concat(xs)
            }
            (Regex::Concat(mut xs), y) => {
                xs.push(y);
                Regex::Concat(xs)
            }
            (x, Regex::Concat(mut ys)) => {
                ys.insert(0, x);
                Regex::Concat(ys)
            }
            (x, y) => Regex::Concat(vec![x, y]),
        }
    }

    /// Union `self + other` (flattening nested unions).
    pub fn or(self, other: Regex) -> Regex {
        match (self, other) {
            (Regex::Union(mut xs), Regex::Union(ys)) => {
                xs.extend(ys);
                Regex::Union(xs)
            }
            (Regex::Union(mut xs), y) => {
                xs.push(y);
                Regex::Union(xs)
            }
            (x, Regex::Union(mut ys)) => {
                ys.insert(0, x);
                Regex::Union(ys)
            }
            (x, y) => Regex::Union(vec![x, y]),
        }
    }

    /// Kleene star `self*`.
    pub fn star(self) -> Regex {
        Regex::Star(Box::new(self))
    }

    /// One-or-more `self^+`.
    pub fn plus(self) -> Regex {
        Regex::Plus(Box::new(self))
    }

    /// Zero-or-one `self?`.
    pub fn optional(self) -> Regex {
        Regex::Optional(Box::new(self))
    }

    /// Concatenation of a sequence of expressions (ε when empty), flattening
    /// nested concatenations.
    pub fn concat_all(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut flat: Vec<Regex> = Vec::new();
        for p in parts {
            match p {
                Regex::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Regex::Epsilon,
            1 => flat.into_iter().next().unwrap(),
            _ => Regex::Concat(flat),
        }
    }

    /// Union of a sequence of expressions (∅ when empty), flattening nested
    /// unions.
    pub fn union_all(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut flat: Vec<Regex> = Vec::new();
        for p in parts {
            match p {
                Regex::Union(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Regex::Empty,
            1 => flat.into_iter().next().unwrap(),
            _ => Regex::Union(flat),
        }
    }

    /// The word `w[0]·w[1]·…` as an expression.
    pub fn word<S: AsRef<str>>(symbols: impl IntoIterator<Item = S>) -> Regex {
        Regex::concat_all(symbols.into_iter().map(Regex::symbol))
    }

    /// Union of all symbols of an alphabet (the paper's `Δ` or `Σ` as a
    /// one-letter-language expression).
    pub fn any_of(alphabet: &Alphabet) -> Regex {
        Regex::union_all(alphabet.names().map(Regex::symbol))
    }

    /// The set of symbol names occurring in the expression.
    pub fn symbols(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut BTreeSet<String>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Symbol(name) => {
                out.insert(name.to_string());
            }
            Regex::Concat(parts) | Regex::Union(parts) => {
                for p in parts {
                    p.collect_symbols(out);
                }
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Optional(inner) => {
                inner.collect_symbols(out)
            }
        }
    }

    /// The smallest alphabet containing all symbols of the expression.
    pub fn inferred_alphabet(&self) -> Alphabet {
        Alphabet::from_names(self.symbols()).expect("symbol set has no duplicates")
    }

    /// Number of AST nodes (a standard size measure for complexity sweeps).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => 1,
            Regex::Concat(parts) | Regex::Union(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Optional(inner) => 1 + inner.size(),
        }
    }

    /// Star height (maximum nesting depth of `*`/`^+`).
    pub fn star_height(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => 0,
            Regex::Concat(parts) | Regex::Union(parts) => {
                parts.iter().map(Regex::star_height).max().unwrap_or(0)
            }
            Regex::Star(inner) | Regex::Plus(inner) => 1 + inner.star_height(),
            Regex::Optional(inner) => inner.star_height(),
        }
    }

    /// Whether ε belongs to the language (the *nullable* predicate).
    pub fn is_nullable(&self) -> bool {
        match self {
            Regex::Empty => false,
            Regex::Epsilon => true,
            Regex::Symbol(_) => false,
            Regex::Concat(parts) => parts.iter().all(Regex::is_nullable),
            Regex::Union(parts) => parts.iter().any(Regex::is_nullable),
            Regex::Star(_) | Regex::Optional(_) => true,
            Regex::Plus(inner) => inner.is_nullable(),
        }
    }

    /// Whether the expression *syntactically* denotes the empty language.
    ///
    /// (`false` does not guarantee nonemptiness for arbitrary nestings of ∅;
    /// use the automaton-level emptiness check for a semantic answer.)
    pub fn is_syntactically_empty(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Symbol(_) => false,
            Regex::Concat(parts) => parts.iter().any(Regex::is_syntactically_empty),
            Regex::Union(parts) => parts.iter().all(Regex::is_syntactically_empty),
            Regex::Star(_) | Regex::Optional(_) => false,
            Regex::Plus(inner) => inner.is_syntactically_empty(),
        }
    }

    /// Renames every symbol through `f` (used to move expressions between the
    /// base alphabet Σ and the view alphabet Σ_E).
    pub fn map_symbols(&self, f: &impl Fn(&str) -> String) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Symbol(name) => Regex::symbol(f(name)),
            Regex::Concat(parts) => Regex::Concat(parts.iter().map(|p| p.map_symbols(f)).collect()),
            Regex::Union(parts) => Regex::Union(parts.iter().map(|p| p.map_symbols(f)).collect()),
            Regex::Star(inner) => Regex::Star(Box::new(inner.map_symbols(f))),
            Regex::Plus(inner) => Regex::Plus(Box::new(inner.map_symbols(f))),
            Regex::Optional(inner) => Regex::Optional(Box::new(inner.map_symbols(f))),
        }
    }

    /// Substitutes every symbol by a whole expression (regular-language
    /// homomorphism).  This implements the paper's expansion `exp_Σ` at the
    /// syntactic level: replacing each view symbol `e_i` by `re(e_i)`.
    pub fn substitute(&self, f: &impl Fn(&str) -> Regex) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Symbol(name) => f(name),
            Regex::Concat(parts) => {
                Regex::concat_all(parts.iter().map(|p| p.substitute(f)))
            }
            Regex::Union(parts) => Regex::union_all(parts.iter().map(|p| p.substitute(f))),
            Regex::Star(inner) => inner.substitute(f).star(),
            Regex::Plus(inner) => inner.substitute(f).plus(),
            Regex::Optional(inner) => inner.substitute(f).optional(),
        }
    }

    /// Operator precedence used by the printer (higher binds tighter).
    fn precedence(&self) -> u8 {
        match self {
            Regex::Union(_) => 0,
            Regex::Concat(_) => 1,
            Regex::Star(_) | Regex::Plus(_) | Regex::Optional(_) => 2,
            Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => 3,
        }
    }

    fn fmt_with_parens(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        let my_prec = self.precedence();
        let needs_parens = my_prec < parent_prec;
        if needs_parens {
            write!(f, "(")?;
        }
        match self {
            Regex::Empty => write!(f, "∅")?,
            Regex::Epsilon => write!(f, "ε")?,
            Regex::Symbol(name) => write!(f, "{name}")?,
            Regex::Concat(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    p.fmt_with_parens(f, 2)?;
                }
            }
            Regex::Union(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    p.fmt_with_parens(f, 1)?;
                }
            }
            Regex::Star(inner) => {
                inner.fmt_with_parens(f, 3)?;
                write!(f, "*")?;
            }
            Regex::Plus(inner) => {
                inner.fmt_with_parens(f, 3)?;
                write!(f, "^+")?;
            }
            Regex::Optional(inner) => {
                inner.fmt_with_parens(f, 3)?;
                write!(f, "?")?;
            }
        }
        if needs_parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Regex {
    /// Prints the expression in the paper's concrete syntax: `·` for
    /// concatenation, `+` for union, postfix `*`, `^+`, `?`, with parentheses
    /// only where precedence requires them.  The output round-trips through
    /// [`crate::parser::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with_parens(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Regex {
        Regex::symbol(s)
    }

    #[test]
    fn builders_flatten() {
        let e = sym("a").then(sym("b")).then(sym("c"));
        assert!(matches!(&e, Regex::Concat(parts) if parts.len() == 3));
        let u = sym("a").or(sym("b")).or(sym("c"));
        assert!(matches!(&u, Regex::Union(parts) if parts.len() == 3));
    }

    #[test]
    fn display_matches_paper_syntax() {
        // E0 of Example 2.2: a·(b·a+c)*
        let e0 = sym("a").then(sym("b").then(sym("a")).or(sym("c")).star());
        assert_eq!(e0.to_string(), "a·(b·a+c)*");
        // View 2 of Example 2.2: a·c*·b
        let e2 = sym("a").then(sym("c").star()).then(sym("b"));
        assert_eq!(e2.to_string(), "a·c*·b");
        // Union binds loosest.
        let u = sym("a").or(sym("b")).then(sym("c"));
        assert_eq!(u.to_string(), "(a+b)·c");
        assert_eq!(Regex::epsilon().to_string(), "ε");
        assert_eq!(Regex::empty().to_string(), "∅");
        assert_eq!(sym("a").plus().to_string(), "a^+");
        assert_eq!(sym("a").optional().to_string(), "a?");
        assert_eq!(sym("a").or(sym("b")).star().to_string(), "(a+b)*");
    }

    #[test]
    fn symbols_and_alphabet() {
        let e = sym("rome").or(sym("jerusalem")).then(sym("restaurant"));
        let syms = e.symbols();
        assert_eq!(
            syms.iter().cloned().collect::<Vec<_>>(),
            vec!["jerusalem", "restaurant", "rome"]
        );
        let alpha = e.inferred_alphabet();
        assert_eq!(alpha.len(), 3);
        assert!(alpha.symbol("rome").is_some());
    }

    #[test]
    fn size_and_star_height() {
        let e = sym("a").then(sym("b").then(sym("a")).or(sym("c")).star());
        assert_eq!(e.size(), 8);
        assert_eq!(e.star_height(), 1);
        assert_eq!(sym("a").star().star().star_height(), 2);
        assert_eq!(sym("a").optional().star_height(), 0);
        assert_eq!(sym("a").plus().star_height(), 1);
    }

    #[test]
    fn nullable_predicate() {
        assert!(Regex::epsilon().is_nullable());
        assert!(!Regex::empty().is_nullable());
        assert!(!sym("a").is_nullable());
        assert!(sym("a").star().is_nullable());
        assert!(sym("a").optional().is_nullable());
        assert!(!sym("a").plus().is_nullable());
        assert!(!sym("a").then(sym("b").star()).is_nullable());
        assert!(sym("a").star().then(sym("b").star()).is_nullable());
        assert!(sym("a").or(Regex::epsilon()).is_nullable());
    }

    #[test]
    fn syntactic_emptiness() {
        assert!(Regex::empty().is_syntactically_empty());
        assert!(Regex::empty().then(sym("a")).is_syntactically_empty());
        assert!(!Regex::empty().or(sym("a")).is_syntactically_empty());
        assert!(!Regex::empty().star().is_syntactically_empty());
        assert!(Regex::empty().plus().is_syntactically_empty());
    }

    #[test]
    fn map_and_substitute() {
        let e = sym("a").then(sym("b")).star();
        let renamed = e.map_symbols(&|s| format!("{s}{s}"));
        assert_eq!(renamed.to_string(), "(aa·bb)*");
        // Substitution implements expansion: replace b by c*·d.
        let expanded = e.substitute(&|s| {
            if s == "b" {
                sym("c").star().then(sym("d"))
            } else {
                Regex::symbol(s)
            }
        });
        assert_eq!(expanded.to_string(), "(a·c*·d)*");
    }

    #[test]
    fn word_and_any_of() {
        let w = Regex::word(["a", "b", "c"]);
        assert_eq!(w.to_string(), "a·b·c");
        assert_eq!(Regex::word(Vec::<&str>::new()), Regex::Epsilon);
        let alpha = Alphabet::from_chars(['x', 'y']).unwrap();
        assert_eq!(Regex::any_of(&alpha).to_string(), "x+y");
    }

    #[test]
    fn union_all_and_concat_all_edge_cases() {
        assert_eq!(Regex::union_all(Vec::new()), Regex::Empty);
        assert_eq!(Regex::concat_all(Vec::new()), Regex::Epsilon);
        assert_eq!(Regex::union_all([sym("a")]), sym("a"));
        assert_eq!(Regex::concat_all([sym("a")]), sym("a"));
    }
}
