//! Seeded random regular-expression generation.
//!
//! The scaling experiments of DESIGN.md (E5, E9, E11, E12) sweep over
//! families of random queries and view sets; the generator here produces
//! expressions with a controllable number of AST nodes over a given alphabet,
//! reproducibly from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use automata::Alphabet;

use crate::ast::Regex;

/// Parameters of the random expression generator.
#[derive(Debug, Clone)]
pub struct RandomRegexConfig {
    /// Target number of AST nodes (the result's [`Regex::size`] is close to,
    /// though not exactly, this target).
    pub target_size: usize,
    /// Probability of generating a star at an internal node (the rest is
    /// split between concatenation and union).
    pub star_probability: f64,
    /// Probability that a leaf is ε rather than a symbol.
    pub epsilon_probability: f64,
}

impl Default for RandomRegexConfig {
    fn default() -> Self {
        Self {
            target_size: 12,
            star_probability: 0.2,
            epsilon_probability: 0.05,
        }
    }
}

/// Generates a random regular expression over `alphabet`.
pub fn random_regex(alphabet: &Alphabet, config: &RandomRegexConfig, seed: u64) -> Regex {
    let mut rng = StdRng::seed_from_u64(seed);
    gen_expr(alphabet, config, &mut rng, config.target_size.max(1))
}

/// Generates a set of `count` random view expressions over `alphabet`,
/// seeded independently per view.
pub fn random_views(
    alphabet: &Alphabet,
    config: &RandomRegexConfig,
    count: usize,
    seed: u64,
) -> Vec<Regex> {
    (0..count)
        .map(|i| random_regex(alphabet, config, seed.wrapping_mul(1_000_003).wrapping_add(i as u64)))
        .collect()
}

fn gen_expr(alphabet: &Alphabet, config: &RandomRegexConfig, rng: &mut StdRng, budget: usize) -> Regex {
    if budget <= 1 {
        return gen_leaf(alphabet, config, rng);
    }
    let roll: f64 = rng.gen();
    if roll < config.star_probability {
        // Unary node.
        let inner = gen_expr(alphabet, config, rng, budget - 1);
        match rng.gen_range(0..3) {
            0 => inner.star(),
            1 => inner.plus(),
            _ => inner.optional(),
        }
    } else {
        // Binary node (concat or union), splitting the remaining budget.
        let left_budget = rng.gen_range(1..budget.max(2));
        let right_budget = (budget - 1).saturating_sub(left_budget).max(1);
        let left = gen_expr(alphabet, config, rng, left_budget);
        let right = gen_expr(alphabet, config, rng, right_budget);
        if rng.gen_bool(0.5) {
            left.then(right)
        } else {
            left.or(right)
        }
    }
}

fn gen_leaf(alphabet: &Alphabet, config: &RandomRegexConfig, rng: &mut StdRng) -> Regex {
    if alphabet.is_empty() || rng.gen_bool(config.epsilon_probability.clamp(0.0, 1.0)) {
        Regex::Epsilon
    } else {
        let idx = rng.gen_range(0..alphabet.len());
        Regex::symbol(alphabet.names().nth(idx).expect("index in range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thompson::thompson;

    fn abc() -> Alphabet {
        Alphabet::from_chars(['a', 'b', 'c']).unwrap()
    }

    #[test]
    fn generation_is_reproducible() {
        let alpha = abc();
        let cfg = RandomRegexConfig::default();
        let r1 = random_regex(&alpha, &cfg, 99);
        let r2 = random_regex(&alpha, &cfg, 99);
        assert_eq!(r1, r2);
        let v1 = random_views(&alpha, &cfg, 4, 7);
        let v2 = random_views(&alpha, &cfg, 4, 7);
        assert_eq!(v1, v2);
        assert_eq!(v1.len(), 4);
    }

    #[test]
    fn different_seeds_give_different_expressions() {
        let alpha = abc();
        let cfg = RandomRegexConfig {
            target_size: 20,
            ..Default::default()
        };
        let r1 = random_regex(&alpha, &cfg, 1);
        let r2 = random_regex(&alpha, &cfg, 2);
        assert_ne!(r1, r2);
    }

    #[test]
    fn size_tracks_target() {
        let alpha = abc();
        for target in [1, 5, 15, 40] {
            let cfg = RandomRegexConfig {
                target_size: target,
                ..Default::default()
            };
            for seed in 0..5 {
                let r = random_regex(&alpha, &cfg, seed);
                assert!(r.size() >= 1);
                assert!(
                    r.size() <= 3 * target + 3,
                    "size {} too large for target {target}",
                    r.size()
                );
            }
        }
    }

    #[test]
    fn generated_expressions_translate_to_automata() {
        let alpha = abc();
        let cfg = RandomRegexConfig {
            target_size: 18,
            ..Default::default()
        };
        for seed in 0..20 {
            let r = random_regex(&alpha, &cfg, seed);
            let nfa = thompson(&r, &alpha).expect("only alphabet symbols are generated");
            assert!(nfa.num_states() >= 1);
        }
    }

    #[test]
    fn empty_alphabet_yields_epsilon_leaves() {
        let alpha = Alphabet::new();
        let cfg = RandomRegexConfig {
            target_size: 6,
            ..Default::default()
        };
        let r = random_regex(&alpha, &cfg, 3);
        assert!(r.symbols().is_empty());
    }
}
