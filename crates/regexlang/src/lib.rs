//! # regexlang — the regular-expression language of the rewriting engine
//!
//! Regular expressions are the query and view language of Calvanese, De
//! Giacomo, Lenzerini and Vardi, *Rewriting of Regular Expressions and
//! Regular Path Queries* (PODS'99 / JCSS 2002).  This crate provides:
//!
//! * the [`Regex`] AST with the paper's operators (`+`, `·`, `*`) plus the
//!   derived `^+` and `?`,
//! * a [`parse`]r and round-tripping pretty printer for the paper's concrete
//!   syntax (`a·(b·a+c)*`),
//! * two translations to NFAs — [`fn@thompson`] and [`fn@glushkov`] —
//!   feeding the determinization step of the rewriting construction,
//! * language-preserving [`fn@simplify`]cation,
//! * [`nfa_to_regex`]/[`dfa_to_regex`] state elimination so rewriting
//!   automata can be read back in the paper's notation (e.g. `e2*·e1·e3*`
//!   from Figure 1), and
//! * a seeded [`random_regex`] generator for the scaling experiments.
//!
//! ```
//! use regexlang::{parse, thompson, nfa_to_regex, simplify};
//! use automata::determinize;
//!
//! let e0 = parse("a·(b·a+c)*").unwrap();
//! let alphabet = e0.inferred_alphabet();
//! let nfa = thompson(&e0, &alphabet).unwrap();
//! let dfa = determinize(&nfa);
//! assert!(dfa.accepts(&alphabet.word(&["a", "c", "b", "a"]).unwrap()));
//!
//! let back = simplify(&nfa_to_regex(&nfa));
//! assert_eq!(back.symbols(), e0.symbols());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
pub mod glushkov;
pub mod parser;
pub mod random;
pub mod simplify;
pub mod state_elim;
pub mod thompson;

pub use ast::Regex;
pub use glushkov::{glushkov, glushkov_auto};
pub use parser::{parse, ParseError};
pub use random::{random_regex, random_views, RandomRegexConfig};
pub use simplify::simplify;
pub use state_elim::{dfa_to_regex, nfa_to_regex};
pub use thompson::{thompson, thompson_auto, UnknownSymbol};
