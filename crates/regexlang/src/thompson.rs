//! Thompson translation: regular expression → NFA with ε-moves.
//!
//! This is the default translation used when building the query automaton
//! that gets determinized into `A_d`, and when building view automata for the
//! reachability tests of the rewriting construction.  The output has size
//! linear in the expression.

use std::fmt;

use automata::{Alphabet, Nfa};

use crate::ast::Regex;

/// Error raised when an expression mentions a symbol that is not in the
/// target alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSymbol {
    /// The offending symbol name.
    pub name: String,
    /// The alphabet the translation was attempted against.
    pub alphabet: String,
}

impl fmt::Display for UnknownSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "symbol `{}` does not occur in alphabet {}",
            self.name, self.alphabet
        )
    }
}

impl std::error::Error for UnknownSymbol {}

/// Translates `expr` into an NFA over `alphabet` using Thompson's
/// construction (each operator adds a constant number of states and
/// ε-transitions).
pub fn thompson(expr: &Regex, alphabet: &Alphabet) -> Result<Nfa, UnknownSymbol> {
    match expr {
        Regex::Empty => Ok(Nfa::empty(alphabet.clone())),
        Regex::Epsilon => Ok(Nfa::epsilon(alphabet.clone())),
        Regex::Symbol(name) => {
            let sym = alphabet.symbol(name).ok_or_else(|| UnknownSymbol {
                name: name.to_string(),
                alphabet: alphabet.render(),
            })?;
            Ok(Nfa::symbol(alphabet.clone(), sym))
        }
        Regex::Concat(parts) => {
            let mut acc = Nfa::epsilon(alphabet.clone());
            for p in parts {
                acc = acc.concat(&thompson(p, alphabet)?);
            }
            Ok(acc)
        }
        Regex::Union(parts) => {
            let mut acc = Nfa::empty(alphabet.clone());
            for p in parts {
                acc = acc.union(&thompson(p, alphabet)?);
            }
            Ok(acc)
        }
        Regex::Star(inner) => Ok(thompson(inner, alphabet)?.star()),
        Regex::Plus(inner) => Ok(thompson(inner, alphabet)?.plus()),
        Regex::Optional(inner) => Ok(thompson(inner, alphabet)?.optional()),
    }
}

/// Translates `expr` over its own inferred alphabet.
pub fn thompson_auto(expr: &Regex) -> Nfa {
    let alphabet = expr.inferred_alphabet();
    thompson(expr, &alphabet).expect("inferred alphabet covers all symbols")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn accepts(expr: &str, alphabet: &Alphabet, word: &[&str]) -> bool {
        let nfa = thompson(&parse(expr).unwrap(), alphabet).unwrap();
        nfa.accepts_names(word)
    }

    fn abc() -> Alphabet {
        Alphabet::from_chars(['a', 'b', 'c']).unwrap()
    }

    #[test]
    fn translates_paper_query() {
        let alpha = abc();
        // E0 = a·(b·a+c)*
        assert!(accepts("a·(b·a+c)*", &alpha, &["a"]));
        assert!(accepts("a·(b·a+c)*", &alpha, &["a", "b", "a"]));
        assert!(accepts("a·(b·a+c)*", &alpha, &["a", "c", "c", "b", "a"]));
        assert!(!accepts("a·(b·a+c)*", &alpha, &[]));
        assert!(!accepts("a·(b·a+c)*", &alpha, &["a", "b"]));
        assert!(!accepts("a·(b·a+c)*", &alpha, &["b", "a"]));
    }

    #[test]
    fn translates_views() {
        let alpha = abc();
        assert!(accepts("a·c*·b", &alpha, &["a", "b"]));
        assert!(accepts("a·c*·b", &alpha, &["a", "c", "c", "b"]));
        assert!(!accepts("a·c*·b", &alpha, &["a", "c"]));
    }

    #[test]
    fn empty_epsilon_optional_plus() {
        let alpha = abc();
        assert!(!accepts("∅", &alpha, &[]));
        assert!(accepts("ε", &alpha, &[]));
        assert!(accepts("a?", &alpha, &[]));
        assert!(accepts("a?", &alpha, &["a"]));
        assert!(!accepts("a^+", &alpha, &[]));
        assert!(accepts("a^+", &alpha, &["a", "a", "a"]));
    }

    #[test]
    fn unknown_symbol_is_an_error() {
        let alpha = Alphabet::from_chars(['a']).unwrap();
        let err = thompson(&parse("a·z").unwrap(), &alpha).unwrap_err();
        assert_eq!(err.name, "z");
        assert!(err.to_string().contains("alphabet"));
    }

    #[test]
    fn auto_alphabet_covers_expression() {
        let nfa = thompson_auto(&parse("rome·(paris+london)*").unwrap());
        assert_eq!(nfa.alphabet().len(), 3);
        assert!(nfa.accepts_names(&["rome", "paris", "london"]));
    }

    #[test]
    fn size_is_linear_in_expression() {
        // Thompson's construction adds at most a constant number of states
        // per AST node.
        let expr = parse("(a+b)*·(a·b·c)^+·(a?+c*)").unwrap();
        let nfa = thompson_auto(&expr);
        assert!(nfa.num_states() <= 6 * expr.size());
    }
}
