//! Parser for the paper's concrete regular-expression syntax.
//!
//! Grammar (precedence from loosest to tightest):
//!
//! ```text
//! union   ::= concat ( '+' concat )*
//! concat  ::= repeat ( ('·' | '.')? repeat )*        (juxtaposition allowed)
//! repeat  ::= atom ( '*' | '?' | '^+' )*
//! atom    ::= IDENT | 'ε' | 'eps' | '∅' | 'empty' | '(' union ')'
//! IDENT   ::= [A-Za-z_][A-Za-z0-9_]*  |  single digit
//! ```
//!
//! The printer ([`crate::ast::Regex`]'s `Display`) emits exactly this syntax,
//! so printing and re-parsing round-trips.

use std::fmt;

use crate::ast::Regex;

/// A parse error with a character position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Zero-based character offset where the error was detected.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Epsilon,
    Empty,
    Plus,     // union
    Dot,      // concatenation
    Star,
    Question,
    CaretPlus, // ^+  (one-or-more)
    LParen,
    RParen,
}

struct Lexer<'a> {
    chars: Vec<(usize, char)>,
    pos: usize,
    input: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            chars: input.char_indices().collect(),
            pos: 0,
            input,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let position = self
            .chars
            .get(self.pos)
            .map(|&(i, _)| i)
            .unwrap_or(self.input.len());
        ParseError {
            position,
            message: message.into(),
        }
    }

    fn tokenize(mut self) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut out = Vec::new();
        while self.pos < self.chars.len() {
            let (offset, c) = self.chars[self.pos];
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += 1;
                }
                '+' => {
                    out.push((offset, Token::Plus));
                    self.pos += 1;
                }
                '·' | '.' => {
                    out.push((offset, Token::Dot));
                    self.pos += 1;
                }
                '*' => {
                    out.push((offset, Token::Star));
                    self.pos += 1;
                }
                '?' => {
                    out.push((offset, Token::Question));
                    self.pos += 1;
                }
                '^' => {
                    // only ^+ is valid
                    if self.chars.get(self.pos + 1).map(|&(_, c)| c) == Some('+') {
                        out.push((offset, Token::CaretPlus));
                        self.pos += 2;
                    } else {
                        return Err(self.error("expected `+` after `^`"));
                    }
                }
                '(' => {
                    out.push((offset, Token::LParen));
                    self.pos += 1;
                }
                ')' => {
                    out.push((offset, Token::RParen));
                    self.pos += 1;
                }
                'ε' => {
                    out.push((offset, Token::Epsilon));
                    self.pos += 1;
                }
                '∅' => {
                    out.push((offset, Token::Empty));
                    self.pos += 1;
                }
                c if c.is_alphanumeric() || c == '_' || c == '$' => {
                    let start = self.pos;
                    while self.pos < self.chars.len() {
                        let (_, c) = self.chars[self.pos];
                        if c.is_alphanumeric() || c == '_' || c == '$' {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    let text: String = self.chars[start..self.pos].iter().map(|&(_, c)| c).collect();
                    let token = match text.as_str() {
                        "eps" | "epsilon" => Token::Epsilon,
                        "empty" => Token::Empty,
                        _ => Token::Ident(text),
                    };
                    out.push((offset, token));
                }
                other => {
                    return Err(self.error(format!("unexpected character `{other}`")));
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let position = self
            .tokens
            .get(self.pos)
            .map(|&(i, _)| i)
            .unwrap_or(self.input_len);
        ParseError {
            position,
            message: message.into(),
        }
    }

    fn parse_union(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_concat()?];
        while self.peek() == Some(&Token::Plus) {
            self.bump();
            parts.push(self.parse_concat()?);
        }
        Ok(Regex::union_all(parts))
    }

    fn parse_concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_repeat()?];
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    self.bump();
                    parts.push(self.parse_repeat()?);
                }
                // Juxtaposition: another atom starts immediately.
                Some(Token::Ident(_))
                | Some(Token::Epsilon)
                | Some(Token::Empty)
                | Some(Token::LParen) => {
                    parts.push(self.parse_repeat()?);
                }
                _ => break,
            }
        }
        Ok(Regex::concat_all(parts))
    }

    fn parse_repeat(&mut self) -> Result<Regex, ParseError> {
        let mut expr = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.bump();
                    expr = expr.star();
                }
                Some(Token::Question) => {
                    self.bump();
                    expr = expr.optional();
                }
                Some(Token::CaretPlus) => {
                    self.bump();
                    expr = expr.plus();
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        match self.bump() {
            Some(Token::Ident(name)) => Ok(Regex::symbol(name)),
            Some(Token::Epsilon) => Ok(Regex::epsilon()),
            Some(Token::Empty) => Ok(Regex::empty()),
            Some(Token::LParen) => {
                let inner = self.parse_union()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(self.error("expected `)`")),
                }
            }
            Some(other) => Err(self.error(format!("unexpected token {other:?}"))),
            None => Err(self.error("unexpected end of input")),
        }
    }
}

/// Parses a regular expression in the paper's concrete syntax.
///
/// ```
/// use regexlang::parse;
///
/// let e0 = parse("a·(b·a+c)*").unwrap();
/// assert_eq!(e0.to_string(), "a·(b·a+c)*");
/// // ASCII `.` works as concatenation too, and juxtaposition of
/// // parenthesized groups is allowed.
/// assert_eq!(parse("a.(b.a+c)*").unwrap(), e0);
/// ```
pub fn parse(input: &str) -> Result<Regex, ParseError> {
    let tokens = Lexer::new(input).tokenize()?;
    if tokens.is_empty() {
        return Err(ParseError {
            position: 0,
            message: "empty input (write `ε` for the empty word or `∅` for the empty language)"
                .to_string(),
        });
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let expr = parser.parse_union()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.error("trailing input after expression"));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_examples() {
        let e0 = parse("a·(b·a+c)*").unwrap();
        assert_eq!(e0.to_string(), "a·(b·a+c)*");
        let e2 = parse("a·c*·b").unwrap();
        assert_eq!(e2.to_string(), "a·c*·b");
        let q = parse("a·(b+c)").unwrap();
        assert_eq!(q.to_string(), "a·(b+c)");
    }

    #[test]
    fn ascii_dot_and_juxtaposition() {
        assert_eq!(parse("a.b.c").unwrap(), parse("a·b·c").unwrap());
        assert_eq!(parse("a (b+c)").unwrap(), parse("a·(b+c)").unwrap());
        assert_eq!(parse("(a)(b)").unwrap(), parse("a·b").unwrap());
    }

    #[test]
    fn multi_character_symbols() {
        let e = parse("rome + jerusalem").unwrap();
        assert_eq!(e.symbols().len(), 2);
        let e = parse("edge_1 · edge_2*").unwrap();
        assert_eq!(e.to_string(), "edge_1·edge_2*");
    }

    #[test]
    fn epsilon_and_empty_spellings() {
        assert_eq!(parse("ε").unwrap(), Regex::epsilon());
        assert_eq!(parse("eps").unwrap(), Regex::epsilon());
        assert_eq!(parse("epsilon").unwrap(), Regex::epsilon());
        assert_eq!(parse("∅").unwrap(), Regex::empty());
        assert_eq!(parse("empty").unwrap(), Regex::empty());
        assert_eq!(parse("a + ε").unwrap().to_string(), "a+ε");
    }

    #[test]
    fn postfix_operators() {
        assert_eq!(parse("a*").unwrap(), Regex::symbol("a").star());
        assert_eq!(parse("a?").unwrap(), Regex::symbol("a").optional());
        assert_eq!(parse("a^+").unwrap(), Regex::symbol("a").plus());
        assert_eq!(parse("a**").unwrap(), Regex::symbol("a").star().star());
        assert_eq!(
            parse("(a·b)*?").unwrap(),
            Regex::symbol("a").then(Regex::symbol("b")).star().optional()
        );
    }

    #[test]
    fn precedence_union_concat_star() {
        // a+b·c* parses as a + (b·(c*))
        let e = parse("a+b·c*").unwrap();
        assert_eq!(
            e,
            Regex::symbol("a").or(Regex::symbol("b").then(Regex::symbol("c").star()))
        );
    }

    #[test]
    fn errors_are_reported_with_position() {
        let err = parse("a·(b").unwrap_err();
        assert!(err.message.contains(")"), "{err}");
        let err = parse("").unwrap_err();
        assert_eq!(err.position, 0);
        let err = parse("a^b").unwrap_err();
        assert!(err.message.contains("^"), "{err}");
        let err = parse("a)b").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
        let err = parse("{a}").unwrap_err();
        assert!(err.message.contains("unexpected character"), "{err}");
        let err = parse("a + ").unwrap_err();
        assert!(err.message.contains("end of input"), "{err}");
    }

    #[test]
    fn display_parse_roundtrip() {
        for src in [
            "a·(b·a+c)*",
            "a·c*·b",
            "(a+b)·c",
            "a^+·b?",
            "ε+a",
            "∅",
            "rome·(jerusalem+paris)*·restaurant",
            "((a+b)*·c)?",
        ] {
            let parsed = parse(src).unwrap();
            let reparsed = parse(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "round-trip failed for {src}");
        }
    }

    #[test]
    fn dollar_and_digit_symbols() {
        // The lower-bound constructions of Section 3.2 use `$`, `0`, `1` as
        // alphabet symbols; the parser must accept them as identifiers.
        let e = parse("$·(0+1)·$").unwrap();
        assert_eq!(e.symbols().len(), 3);
        assert_eq!(e.to_string(), "$·(0+1)·$");
    }
}
