//! Differential tests pinning the dense rewriting pipeline to the seed's
//! tree pipeline: `compute_maximal_rewriting` (dense determinize, Hopcroft
//! minimize, batched dense reachability sweeps, dense
//! complement-by-subset-construction) must reproduce
//! `compute_maximal_rewriting_baseline` **structurally** — the same `A_d`,
//! the same `A'`, the same rewriting automaton, the same stats — on the
//! paper's examples and on 200+ randomized problems, and the exactness
//! verdicts must coincide.

use automata::{dfa_equivalent, Alphabet};
use regexlang::{random_regex, random_views, RandomRegexConfig, Regex};
use rewriter::{
    check_exactness, compute_maximal_rewriting, compute_maximal_rewriting_baseline,
    compute_maximal_rewriting_with, compute_maximal_rewriting_with_baseline, MaximalRewriting,
    RewriteProblem, RewriterOptions, View, ViewSet,
};

fn alphabet(size: usize) -> Alphabet {
    Alphabet::from_names((0..size).map(|i| ((b'a' + i as u8) as char).to_string()))
        .expect("distinct letters")
}

/// A random rewriting problem (mirrors `bench::random_problem`, which lives
/// downstream of this crate).
fn random_problem(case: u64) -> RewriteProblem {
    let alpha = alphabet(2 + (case % 2) as usize);
    let query_cfg = RandomRegexConfig {
        target_size: 6 + (case % 8) as usize,
        ..Default::default()
    };
    let view_cfg = RandomRegexConfig {
        target_size: 3 + (case % 3) as usize,
        ..Default::default()
    };
    let query = random_regex(&alpha, &query_cfg, case * 37 + 1);
    let views: Vec<View> = random_views(&alpha, &view_cfg, 2 + (case % 2) as usize, case * 41 + 5)
        .into_iter()
        .enumerate()
        .map(|(i, def)| {
            let def = if def.is_syntactically_empty() {
                Regex::symbol(alpha.names().next().expect("nonempty alphabet"))
            } else {
                def
            };
            View::new(format!("v{i}"), def)
        })
        .collect();
    let views = ViewSet::new(alpha, views).expect("generated views are well-formed");
    RewriteProblem::new(query, views).expect("generated query is over the alphabet")
}

fn assert_rewriting_identical(dense: &MaximalRewriting, tree: &MaximalRewriting, ctx: &str) {
    // A_d.
    assert_eq!(
        dense.query_dfa.transitions().collect::<Vec<_>>(),
        tree.query_dfa.transitions().collect::<Vec<_>>(),
        "{ctx}: A_d transitions"
    );
    assert_eq!(
        dense.query_dfa.final_states(),
        tree.query_dfa.final_states(),
        "{ctx}: A_d finals"
    );
    // A'.
    assert_eq!(
        dense.a_prime.transitions().collect::<Vec<_>>(),
        tree.a_prime.transitions().collect::<Vec<_>>(),
        "{ctx}: A' transitions"
    );
    assert_eq!(
        dense.a_prime.final_states(),
        tree.a_prime.final_states(),
        "{ctx}: A' finals"
    );
    // The rewriting automaton, with a language-level diagnosis on mismatch.
    let structural = dense.automaton.num_states() == tree.automaton.num_states()
        && dense.automaton.initial_state() == tree.automaton.initial_state()
        && dense.automaton.final_states() == tree.automaton.final_states()
        && dense.automaton.transitions().collect::<Vec<_>>()
            == tree.automaton.transitions().collect::<Vec<_>>();
    if !structural {
        let diagnosis = match dfa_equivalent(&dense.automaton, &tree.automaton) {
            automata::Containment::Holds => "languages agree (numbering diverged)".to_string(),
            automata::Containment::FailsWith(word) => {
                format!("shortest counterexample: {word:?}")
            }
        };
        panic!("{ctx}: rewriting automaton diverged — {diagnosis}");
    }
    // Stats summarize every intermediate artifact.
    assert_eq!(dense.stats.query_nfa_states, tree.stats.query_nfa_states, "{ctx}");
    assert_eq!(dense.stats.query_dfa_states, tree.stats.query_dfa_states, "{ctx}");
    assert_eq!(dense.stats.a_prime_states, tree.stats.a_prime_states, "{ctx}");
    assert_eq!(
        dense.stats.a_prime_transitions,
        tree.stats.a_prime_transitions,
        "{ctx}"
    );
    assert_eq!(dense.stats.rewriting_states, tree.stats.rewriting_states, "{ctx}");
    assert_eq!(
        dense.stats.rewriting_trimmed_states,
        tree.stats.rewriting_trimmed_states,
        "{ctx}"
    );
    assert_eq!(dense.stats.is_empty, tree.stats.is_empty, "{ctx}");
}

#[test]
fn paper_examples_agree_with_baseline() {
    let problems = [
        RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")])
            .unwrap(),
        RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b")]).unwrap(),
        RewriteProblem::parse("a*", [("e", "a*")]).unwrap(),
        RewriteProblem::parse("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap(),
        RewriteProblem::parse("(a·b)*", [("v", "a·b")]).unwrap(),
        RewriteProblem::parse("a·b", [("v", "c")]).unwrap(),
    ];
    for (i, problem) in problems.iter().enumerate() {
        let dense = compute_maximal_rewriting(problem);
        let tree = compute_maximal_rewriting_baseline(problem);
        assert_rewriting_identical(&dense, &tree, &format!("paper example {i}"));
        let dense_exact = check_exactness(&dense, &problem.views);
        let tree_exact = check_exactness(&tree, &problem.views);
        assert_eq!(dense_exact.exact, tree_exact.exact, "paper example {i}");
        assert_eq!(
            dense_exact.counterexample, tree_exact.counterexample,
            "paper example {i}"
        );
    }
}

#[test]
fn random_constructions_agree_with_baseline() {
    let mut cases = 0usize;
    let mut nonempty = 0usize;
    let mut exact = 0usize;
    for case in 0..200u64 {
        let problem = random_problem(case);
        let dense = compute_maximal_rewriting(&problem);
        let tree = compute_maximal_rewriting_baseline(&problem);
        assert_rewriting_identical(&dense, &tree, &format!("case {case} ({})", problem.query));
        if !dense.is_empty() {
            nonempty += 1;
            let dense_exact = check_exactness(&dense, &problem.views);
            let tree_exact = check_exactness(&tree, &problem.views);
            assert_eq!(dense_exact.exact, tree_exact.exact, "case {case}");
            if dense_exact.exact {
                exact += 1;
            }
        }
        cases += 1;
    }
    assert!(cases >= 200, "only {cases} construction cases ran");
    // The sweep must cover empty, non-empty-inexact, and exact rewritings.
    assert!(nonempty >= 20, "only {nonempty} nonempty rewritings");
    assert!(exact >= 5, "only {exact} exact rewritings");
}

#[test]
fn option_ablations_agree_with_baseline() {
    // Every (minimize, glushkov) combination of the dense pipeline must
    // reproduce its tree twin structurally (the per-pair reachability
    // ablation deliberately shares the tree oracle on both sides).
    for case in 0..20u64 {
        let problem = random_problem(case ^ 0x77);
        for minimize_query_dfa in [false, true] {
            for use_glushkov in [false, true] {
                let options = RewriterOptions {
                    minimize_query_dfa,
                    use_glushkov,
                    per_pair_reachability: false,
                };
                let dense = compute_maximal_rewriting_with(&problem, &options);
                let tree = compute_maximal_rewriting_with_baseline(&problem, &options);
                assert_rewriting_identical(
                    &dense,
                    &tree,
                    &format!("case {case} options {options:?}"),
                );
            }
        }
    }
}
