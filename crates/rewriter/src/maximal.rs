//! The maximal-rewriting construction (Section 2 of the paper).
//!
//! Given a query `E0` over `Σ` and a view set `E`, the algorithm of
//! Theorem 2.2 computes the Σ_E-maximal rewriting `R_{E,E0}`:
//!
//! 1. build a deterministic automaton `A_d` with `L(A_d) = L(E0)`;
//! 2. build `A'` over `Σ_E`, with the same states as `A_d`, the same initial
//!    state, and the *non*-final states of `A_d` as final states; `A'` has an
//!    `e`-transition from `s_i` to `s_j` iff some word of `L(re(e))` drives
//!    `A_d` from `s_i` to `s_j`;
//! 3. the rewriting is the complement of `A'`.
//!
//! `A'` accepts exactly the `Σ_E`-words some expansion of which is rejected
//! by `A_d`; its complement therefore accepts the words whose *every*
//! expansion lies inside `L(E0)` — the Σ_E-maximal rewriting (and, by
//! Theorem 2.1, also a Σ-maximal one).

use automata::{
    determinize, minimize, word_reachability_relation, word_reaches, Dfa, Nfa,
};
use regexlang::{dfa_to_regex, glushkov, simplify, thompson, Regex};
use serde::Serialize;

use crate::views::{RewriteError, View, ViewSet};

/// A rewriting problem: the query `E0` and the views `E`.
#[derive(Debug, Clone)]
pub struct RewriteProblem {
    /// The query expression `E0` over the base alphabet Σ.
    pub query: Regex,
    /// The views `E = {E1, …, Ek}` with their symbols and alphabets.
    pub views: ViewSet,
}

impl RewriteProblem {
    /// Creates a problem, checking that the query only uses symbols of Σ.
    pub fn new(query: Regex, views: ViewSet) -> Result<Self, RewriteError> {
        for sym in query.symbols() {
            if views.sigma().symbol(&sym).is_none() {
                return Err(RewriteError::UnknownBaseSymbol(sym));
            }
        }
        Ok(Self { query, views })
    }

    /// Convenience constructor from concrete syntax: the base alphabet is
    /// inferred from the query and the views.
    ///
    /// ```
    /// use rewriter::RewriteProblem;
    ///
    /// let problem = RewriteProblem::parse(
    ///     "a·(b·a+c)*",
    ///     [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
    /// ).unwrap();
    /// assert_eq!(problem.views.len(), 3);
    /// ```
    pub fn parse(
        query: &str,
        views: impl IntoIterator<Item = (&'static str, &'static str)>,
    ) -> Result<Self, RewriteError> {
        let query = regexlang::parse(query)
            .map_err(|e| RewriteError::UnknownBaseSymbol(e.to_string()))?;
        let view_list: Result<Vec<View>, RewriteError> = views
            .into_iter()
            .map(|(symbol, src)| {
                regexlang::parse(src)
                    .map(|def| View::new(symbol, def))
                    .map_err(|e| RewriteError::UnknownBaseSymbol(e.to_string()))
            })
            .collect();
        let views = ViewSet::with_inferred_alphabet(view_list?, query.symbols())?;
        Self::new(query, views)
    }
}

/// Tunable knobs of the construction, exposed for the ablation benchmarks of
/// DESIGN.md.  The defaults match the paper's algorithm plus the standard
/// minimization preprocessing.
#[derive(Debug, Clone)]
pub struct RewriterOptions {
    /// Minimize `A_d` before building `A'` (ablation #3).  Keeps the language
    /// unchanged but shrinks the rewriting automaton.
    pub minimize_query_dfa: bool,
    /// Use the Glushkov position automaton instead of Thompson's construction
    /// for the query (ablation #2).
    pub use_glushkov: bool,
    /// Test every `(s_i, s_j, e)` triple by a separate product-emptiness
    /// check instead of one batched reachability sweep per view
    /// (ablation #4).
    pub per_pair_reachability: bool,
}

impl Default for RewriterOptions {
    fn default() -> Self {
        Self {
            minimize_query_dfa: true,
            use_glushkov: false,
            per_pair_reachability: false,
        }
    }
}

/// Size statistics of one run of the construction (serialized by the
/// experiment harness).
#[derive(Debug, Clone, Serialize)]
pub struct RewriteStats {
    /// States of the query NFA before determinization.
    pub query_nfa_states: usize,
    /// States of the deterministic query automaton `A_d`.
    pub query_dfa_states: usize,
    /// States of `A'` (equals the states of `A_d`).
    pub a_prime_states: usize,
    /// Transitions of `A'` over the view alphabet.
    pub a_prime_transitions: usize,
    /// States of the (complete) rewriting automaton `R_{E,E0}`.
    pub rewriting_states: usize,
    /// States of the rewriting automaton after trimming dead states.
    pub rewriting_trimmed_states: usize,
    /// Whether the maximal rewriting is the empty language.
    pub is_empty: bool,
}

/// The Σ_E-maximal rewriting together with every intermediate artifact of the
/// construction.
#[derive(Debug, Clone)]
pub struct MaximalRewriting {
    /// The deterministic query automaton `A_d` (complete).
    pub query_dfa: Dfa,
    /// The automaton `A'` over `Σ_E` (same state space as `A_d`).
    pub a_prime: Nfa,
    /// The rewriting automaton `R_{E,E0}` = complement of `A'`, over `Σ_E`.
    pub automaton: Dfa,
    /// Size statistics of the run.
    pub stats: RewriteStats,
}

impl MaximalRewriting {
    /// The rewriting as a simplified regular expression over the view
    /// symbols, obtained by state elimination on the rewriting automaton.
    ///
    /// State elimination can be expensive for very large rewriting automata
    /// (e.g. the lower-bound instances of §3.2), so the expression is
    /// computed on demand rather than eagerly.
    pub fn regex(&self) -> Regex {
        simplify(&dfa_to_regex(&self.automaton))
    }

    /// Whether the maximal rewriting is empty (no Σ_E-word has all its
    /// expansions inside `L(E0)`).
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty
    }

    /// Whether the rewriting accepts the given word of view-symbol names.
    pub fn accepts(&self, view_symbols: &[&str]) -> bool {
        self.automaton.accepts_names(view_symbols)
    }

    /// A shortest accepted Σ_E-word, as view-symbol names.
    pub fn shortest_word(&self) -> Option<Vec<String>> {
        self.automaton.shortest_word().map(|word| {
            word.iter()
                .map(|&s| self.automaton.alphabet().name(s).to_string())
                .collect()
        })
    }
}

/// Runs the construction of Theorem 2.2 with default options.
pub fn compute_maximal_rewriting(problem: &RewriteProblem) -> MaximalRewriting {
    compute_maximal_rewriting_with(problem, &RewriterOptions::default())
}

/// Runs the construction of Theorem 2.2 with explicit options.
pub fn compute_maximal_rewriting_with(
    problem: &RewriteProblem,
    options: &RewriterOptions,
) -> MaximalRewriting {
    let sigma = problem.views.sigma().clone();
    let sigma_e = problem.views.sigma_e().clone();

    // Step 1: deterministic automaton A_d for E0.
    let query_nfa = if options.use_glushkov {
        glushkov(&problem.query, &sigma).expect("query symbols checked at problem construction")
    } else {
        thompson(&problem.query, &sigma).expect("query symbols checked at problem construction")
    };
    let query_nfa_states = query_nfa.num_states();
    let mut query_dfa = determinize(&query_nfa);
    if options.minimize_query_dfa {
        query_dfa = minimize(&query_dfa);
    }
    // Complementation-by-final-swap in step 2 needs a complete automaton:
    // a run of A_d must never die, otherwise a rejected expansion could be
    // missed by A'.
    let query_dfa = query_dfa.complete();

    // Step 2: A' over Σ_E with the same states as A_d.
    let mut a_prime = Nfa::new(sigma_e.clone());
    a_prime.add_states(query_dfa.num_states());
    a_prime.set_initial(query_dfa.initial_state());
    for s in 0..query_dfa.num_states() {
        if !query_dfa.is_final(s) {
            a_prime.set_final(s);
        }
    }
    for (index, view) in problem.views.views().enumerate() {
        let view_sym = sigma_e
            .symbol(&view.symbol)
            .expect("view symbols are exactly sigma_e");
        let view_nfa = problem.views.automaton(index);
        if options.per_pair_reachability {
            for si in 0..query_dfa.num_states() {
                for sj in 0..query_dfa.num_states() {
                    if word_reaches(&query_dfa, view_nfa, si, sj) {
                        a_prime.add_transition(si, view_sym, sj);
                    }
                }
            }
        } else {
            for (si, sj) in word_reachability_relation(&query_dfa, view_nfa) {
                a_prime.add_transition(si, view_sym, sj);
            }
        }
    }

    // Step 3: the rewriting is the complement of A'.  A' is in general
    // nondeterministic over Σ_E, so complement via subset construction.
    let rewriting = determinize(&a_prime).complement();
    let trimmed = rewriting.trim_unreachable();
    let trimmed_productive: usize = trimmed
        .coreachable_states()
        .intersection(&trimmed.reachable_states())
        .count();
    let is_empty = rewriting.is_empty_language();

    let stats = RewriteStats {
        query_nfa_states,
        query_dfa_states: query_dfa.num_states(),
        a_prime_states: a_prime.num_states(),
        a_prime_transitions: a_prime.num_transitions(),
        rewriting_states: rewriting.num_states(),
        rewriting_trimmed_states: trimmed_productive,
        is_empty,
    };

    MaximalRewriting {
        query_dfa,
        a_prime,
        automaton: rewriting,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::{dfa_subset_of_nfa, nfa_equivalent};
    use regexlang::parse;

    /// The running example of the paper (Example 2.2 / Figure 1).
    fn figure1_problem() -> RewriteProblem {
        RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")]).unwrap()
    }

    #[test]
    fn figure1_maximal_rewriting_is_e2star_e1_e3star() {
        let rewriting = compute_maximal_rewriting(&figure1_problem());
        assert!(!rewriting.is_empty());
        // Language check: the rewriting over Σ_E equals e2*·e1·e3*.
        let expected = thompson(
            &parse("e2*·e1·e3*").unwrap(),
            rewriting.automaton.alphabet(),
        )
        .unwrap();
        assert!(
            nfa_equivalent(&Nfa::from_dfa(&rewriting.automaton), &expected).holds(),
            "rewriting language is {}",
            rewriting.regex()
        );
        // Membership spot checks.
        assert!(rewriting.accepts(&["e1"]));
        assert!(rewriting.accepts(&["e2", "e2", "e1", "e3"]));
        assert!(!rewriting.accepts(&["e3"]));
        assert!(!rewriting.accepts(&["e1", "e2"]));
        assert!(!rewriting.accepts(&[]));
        assert_eq!(rewriting.shortest_word(), Some(vec!["e1".to_string()]));
    }

    #[test]
    fn example21_sigma_e_maximal_uses_the_star() {
        // Example 2.1: E0 = a*, E = {a*}.  Both e and e* are Σ-maximal but
        // only e* is Σ_E-maximal; the construction must return e*.
        let problem = RewriteProblem::parse("a*", [("e", "a*")]).unwrap();
        let rewriting = compute_maximal_rewriting(&problem);
        assert!(rewriting.accepts(&[]));
        assert!(rewriting.accepts(&["e"]));
        assert!(rewriting.accepts(&["e", "e", "e"]));
        let expected = thompson(&parse("e*").unwrap(), rewriting.automaton.alphabet()).unwrap();
        assert!(nfa_equivalent(&Nfa::from_dfa(&rewriting.automaton), &expected).holds());
    }

    #[test]
    fn dropping_a_view_loses_exactness_but_stays_sound() {
        // Example 2.3: without view c, the maximal rewriting is e2*·e1.
        let problem =
            RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b")]).unwrap();
        let rewriting = compute_maximal_rewriting(&problem);
        let expected = thompson(&parse("e2*·e1").unwrap(), rewriting.automaton.alphabet()).unwrap();
        assert!(
            nfa_equivalent(&Nfa::from_dfa(&rewriting.automaton), &expected).holds(),
            "rewriting is {}",
            rewriting.regex()
        );
    }

    #[test]
    fn rewriting_expansion_is_contained_in_query() {
        // Soundness (Definition 2.1): exp_Σ(L(R)) ⊆ L(E0) on several
        // problems, including ones with no useful views.
        let problems = vec![
            figure1_problem(),
            RewriteProblem::parse("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap(),
            RewriteProblem::parse("(a·b)*", [("v", "a·b·a·b")]).unwrap(),
            RewriteProblem::parse("a·b", [("v", "c")]).unwrap(),
        ];
        for problem in problems {
            let rewriting = compute_maximal_rewriting(&problem);
            let expansion = crate::expansion::expand_dfa(&rewriting.automaton, &problem.views);
            let query_dfa = determinize(
                &thompson(&problem.query, problem.views.sigma()).unwrap(),
            );
            // exp(L(R)) ⊆ L(E0)  ⟺  L(expansion) ⊆ L(query)
            assert!(
                dfa_subset_of_nfa(&determinize(&expansion), &Nfa::from_dfa(&query_dfa)).holds(),
                "unsound rewriting {} for query {}",
                rewriting.regex(),
                problem.query
            );
        }
    }

    #[test]
    fn useless_views_give_empty_rewriting() {
        let problem = RewriteProblem::parse("a·b", [("v", "c")]).unwrap();
        let rewriting = compute_maximal_rewriting(&problem);
        assert!(rewriting.is_empty());
        assert_eq!(rewriting.regex(), Regex::Empty);
        assert_eq!(rewriting.shortest_word(), None);
    }

    #[test]
    fn identity_views_reproduce_the_query() {
        // With one view per base symbol the rewriting is the query itself,
        // spelled with view symbols.
        let problem =
            RewriteProblem::parse("a·(b·a+c)*", [("va", "a"), ("vb", "b"), ("vc", "c")]).unwrap();
        let rewriting = compute_maximal_rewriting(&problem);
        let expected = thompson(
            &parse("va·(vb·va+vc)*").unwrap(),
            rewriting.automaton.alphabet(),
        )
        .unwrap();
        assert!(nfa_equivalent(&Nfa::from_dfa(&rewriting.automaton), &expected).holds());
    }

    #[test]
    fn all_option_combinations_agree_on_the_language() {
        let problem = figure1_problem();
        let reference = compute_maximal_rewriting(&problem);
        for minimize_query_dfa in [false, true] {
            for use_glushkov in [false, true] {
                for per_pair_reachability in [false, true] {
                    let options = RewriterOptions {
                        minimize_query_dfa,
                        use_glushkov,
                        per_pair_reachability,
                    };
                    let other = compute_maximal_rewriting_with(&problem, &options);
                    assert!(
                        nfa_equivalent(
                            &Nfa::from_dfa(&reference.automaton),
                            &Nfa::from_dfa(&other.automaton)
                        )
                        .holds(),
                        "options {options:?} changed the rewriting language"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_are_plausible() {
        let rewriting = compute_maximal_rewriting(&figure1_problem());
        let stats = &rewriting.stats;
        assert!(stats.query_nfa_states >= 2);
        assert!(stats.query_dfa_states >= 2);
        assert_eq!(stats.a_prime_states, stats.query_dfa_states);
        assert!(stats.a_prime_transitions > 0);
        assert!(stats.rewriting_states >= stats.rewriting_trimmed_states);
        assert!(!stats.is_empty);
    }

    #[test]
    fn problem_construction_rejects_bad_queries() {
        let views = ViewSet::parse(
            automata::Alphabet::from_chars(['a']).unwrap(),
            [("e", "a")],
        )
        .unwrap();
        let err = RewriteProblem::new(parse("a·z").unwrap(), views).unwrap_err();
        assert!(matches!(err, RewriteError::UnknownBaseSymbol(ref s) if s == "z"));
    }
}
