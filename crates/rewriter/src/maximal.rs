//! The maximal-rewriting construction (Section 2 of the paper).
//!
//! Given a query `E0` over `Σ` and a view set `E`, the algorithm of
//! Theorem 2.2 computes the Σ_E-maximal rewriting `R_{E,E0}`:
//!
//! 1. build a deterministic automaton `A_d` with `L(A_d) = L(E0)`;
//! 2. build `A'` over `Σ_E`, with the same states as `A_d`, the same initial
//!    state, and the *non*-final states of `A_d` as final states; `A'` has an
//!    `e`-transition from `s_i` to `s_j` iff some word of `L(re(e))` drives
//!    `A_d` from `s_i` to `s_j`;
//! 3. the rewriting is the complement of `A'`.
//!
//! `A'` accepts exactly the `Σ_E`-words some expansion of which is rejected
//! by `A_d`; its complement therefore accepts the words whose *every*
//! expansion lies inside `L(E0)` — the Σ_E-maximal rewriting (and, by
//! Theorem 2.1, also a Σ-maximal one).
//!
//! ## Dense pipeline
//!
//! Every algorithmic step of [`compute_maximal_rewriting_with`] runs on the
//! frozen CSR core of the `automata` crate; the mutable tree types only
//! appear at the construction boundary (translating `E0` to an NFA) and at
//! the thaw boundary (the tree-typed public fields of
//! [`MaximalRewriting`]):
//!
//! * **step 1** — subset construction via
//!   [`automata::determinize_to_dense`] straight into a flat next-state
//!   table, then Hopcroft minimization ([`automata::minimize_dense`]) on the
//!   same representation;
//! * **step 2** — one **batched dense reachability sweep** per view
//!   ([`automata::word_reachability_relation_dense`]): a bitset-backed
//!   product BFS computing all `(s_i, s_j)` pairs of `A_d` connected by a
//!   word of the view language, feeding `A'` as an ε-free
//!   [`automata::DenseNfa`] built directly from parts;
//! * **step 3** — complement-by-subset-construction: dense determinization
//!   of `A'` followed by a final-bit flip on the flat table; emptiness and
//!   the productive-state count come from bitset reachability sweeps.
//!
//! The seed's tree pipeline — Moore minimization, `BTreeSet` configuration
//! sweeps, adjacency-map subset construction — is retained verbatim as
//! [`compute_maximal_rewriting_baseline`] /
//! [`compute_maximal_rewriting_with_baseline`].  The two produce
//! **structurally identical** automata (state numbering included), which the
//! differential suite in `tests/dense_pipeline.rs` pins on the paper's
//! examples and hundreds of random problems; the `rewriting` rows of
//! `BENCH_rpq.json` track the speedup (multi-× on the determinization
//! blow-up family).

use automata::{
    determinize_to_dense, determinize_with_subsets_baseline, minimize_baseline, minimize_dense,
    word_reachability_relation_baseline, word_reaches, DenseNfa, Dfa, Nfa,
};
use regexlang::{dfa_to_regex, glushkov, simplify, thompson, Regex};
use serde::Serialize;

use crate::views::{RewriteError, View, ViewSet};

/// A rewriting problem: the query `E0` and the views `E`.
#[derive(Debug, Clone)]
pub struct RewriteProblem {
    /// The query expression `E0` over the base alphabet Σ.
    pub query: Regex,
    /// The views `E = {E1, …, Ek}` with their symbols and alphabets.
    pub views: ViewSet,
}

impl RewriteProblem {
    /// Creates a problem, checking that the query only uses symbols of Σ.
    pub fn new(query: Regex, views: ViewSet) -> Result<Self, RewriteError> {
        for sym in query.symbols() {
            if views.sigma().symbol(&sym).is_none() {
                return Err(RewriteError::UnknownBaseSymbol(sym));
            }
        }
        Ok(Self { query, views })
    }

    /// Convenience constructor from concrete syntax: the base alphabet is
    /// inferred from the query and the views.
    ///
    /// ```
    /// use rewriter::RewriteProblem;
    ///
    /// let problem = RewriteProblem::parse(
    ///     "a·(b·a+c)*",
    ///     [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
    /// ).unwrap();
    /// assert_eq!(problem.views.len(), 3);
    /// ```
    pub fn parse(
        query: &str,
        views: impl IntoIterator<Item = (&'static str, &'static str)>,
    ) -> Result<Self, RewriteError> {
        let query = regexlang::parse(query)
            .map_err(|e| RewriteError::UnknownBaseSymbol(e.to_string()))?;
        let view_list: Result<Vec<View>, RewriteError> = views
            .into_iter()
            .map(|(symbol, src)| {
                regexlang::parse(src)
                    .map(|def| View::new(symbol, def))
                    .map_err(|e| RewriteError::UnknownBaseSymbol(e.to_string()))
            })
            .collect();
        let views = ViewSet::with_inferred_alphabet(view_list?, query.symbols())?;
        Self::new(query, views)
    }
}

/// Tunable knobs of the construction, exposed for the ablation benchmarks of
/// DESIGN.md.  The defaults match the paper's algorithm plus the standard
/// minimization preprocessing.
#[derive(Debug, Clone)]
pub struct RewriterOptions {
    /// Minimize `A_d` before building `A'` (ablation #3).  Keeps the language
    /// unchanged but shrinks the rewriting automaton.
    pub minimize_query_dfa: bool,
    /// Use the Glushkov position automaton instead of Thompson's construction
    /// for the query (ablation #2).
    pub use_glushkov: bool,
    /// Test every `(s_i, s_j, e)` triple by a separate product-emptiness
    /// check instead of one batched reachability sweep per view
    /// (ablation #4).
    pub per_pair_reachability: bool,
}

impl Default for RewriterOptions {
    fn default() -> Self {
        Self {
            minimize_query_dfa: true,
            use_glushkov: false,
            per_pair_reachability: false,
        }
    }
}

/// Size statistics of one run of the construction (serialized by the
/// experiment harness).
#[derive(Debug, Clone, Serialize)]
pub struct RewriteStats {
    /// States of the query NFA before determinization.
    pub query_nfa_states: usize,
    /// States of the deterministic query automaton `A_d`.
    pub query_dfa_states: usize,
    /// States of `A'` (equals the states of `A_d`).
    pub a_prime_states: usize,
    /// Transitions of `A'` over the view alphabet.
    pub a_prime_transitions: usize,
    /// States of the (complete) rewriting automaton `R_{E,E0}`.
    pub rewriting_states: usize,
    /// States of the rewriting automaton after trimming dead states.
    pub rewriting_trimmed_states: usize,
    /// Whether the maximal rewriting is the empty language.
    pub is_empty: bool,
}

/// The Σ_E-maximal rewriting together with every intermediate artifact of the
/// construction.
#[derive(Debug, Clone)]
pub struct MaximalRewriting {
    /// The deterministic query automaton `A_d` (complete).
    pub query_dfa: Dfa,
    /// The automaton `A'` over `Σ_E` (same state space as `A_d`).
    pub a_prime: Nfa,
    /// The rewriting automaton `R_{E,E0}` = complement of `A'`, over `Σ_E`.
    pub automaton: Dfa,
    /// Size statistics of the run.
    pub stats: RewriteStats,
}

impl MaximalRewriting {
    /// The rewriting as a simplified regular expression over the view
    /// symbols, obtained by state elimination on the rewriting automaton.
    ///
    /// State elimination can be expensive for very large rewriting automata
    /// (e.g. the lower-bound instances of §3.2), so the expression is
    /// computed on demand rather than eagerly.
    pub fn regex(&self) -> Regex {
        simplify(&dfa_to_regex(&self.automaton))
    }

    /// Whether the maximal rewriting is empty (no Σ_E-word has all its
    /// expansions inside `L(E0)`).
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty
    }

    /// Whether the rewriting accepts the given word of view-symbol names.
    pub fn accepts(&self, view_symbols: &[&str]) -> bool {
        self.automaton.accepts_names(view_symbols)
    }

    /// A shortest accepted Σ_E-word, as view-symbol names.
    pub fn shortest_word(&self) -> Option<Vec<String>> {
        self.automaton.shortest_word().map(|word| {
            word.iter()
                .map(|&s| self.automaton.alphabet().name(s).to_string())
                .collect()
        })
    }
}

/// Runs the construction of Theorem 2.2 with default options.
pub fn compute_maximal_rewriting(problem: &RewriteProblem) -> MaximalRewriting {
    compute_maximal_rewriting_with(problem, &RewriterOptions::default())
}

/// Runs the construction of Theorem 2.2 with explicit options.
///
/// Every algorithmic step runs on the dense CSR core: subset construction
/// via [`determinize_to_dense`], Hopcroft minimization via [`minimize_dense`],
/// one batched reachability sweep per view via
/// [`automata::word_reachability_relation_dense`], and the final
/// complement-by-subset-construction on the flat tables.  The public
/// [`MaximalRewriting`] fields are thawed tree views of the dense results
/// (pure representation change).  The seed's tree pipeline is retained as
/// [`compute_maximal_rewriting_baseline`].
pub fn compute_maximal_rewriting_with(
    problem: &RewriteProblem,
    options: &RewriterOptions,
) -> MaximalRewriting {
    let sigma = problem.views.sigma().clone();
    let sigma_e = problem.views.sigma_e().clone();

    // Step 1: deterministic automaton A_d for E0, built and (optionally)
    // minimized on the dense core.
    let query_nfa = if options.use_glushkov {
        glushkov(&problem.query, &sigma).expect("query symbols checked at problem construction")
    } else {
        thompson(&problem.query, &sigma).expect("query symbols checked at problem construction")
    };
    let query_nfa_states = query_nfa.num_states();
    let mut query_dense = determinize_to_dense(&DenseNfa::from_nfa(&query_nfa)).dfa;
    if options.minimize_query_dfa {
        query_dense = minimize_dense(&query_dense);
    }
    // Complementation-by-final-swap in step 2 needs a complete automaton:
    // a run of A_d must never die, otherwise a rejected expansion could be
    // missed by A'.  Both constructions above already yield complete
    // automata, so this is a cheap no-op kept for safety.
    let query_dense = query_dense.complete();
    let query_dfa = query_dense.to_dfa();

    // Step 2: A' over Σ_E with the same states as A_d — one batched dense
    // reachability sweep per view (or the per-pair product-emptiness
    // ablation, which deliberately exercises the tree oracle).
    let n = query_dense.num_states();
    let mut a_prime_transitions: Vec<(u32, u32, u32)> = Vec::new();
    for (index, view) in problem.views.views().enumerate() {
        let view_sym = sigma_e
            .symbol(&view.symbol)
            .expect("view symbols are exactly sigma_e");
        let view_nfa = problem.views.automaton(index);
        if options.per_pair_reachability {
            for si in 0..n {
                for sj in 0..n {
                    if word_reaches(&query_dfa, view_nfa, si, sj) {
                        a_prime_transitions.push((si as u32, view_sym.index() as u32, sj as u32));
                    }
                }
            }
        } else {
            let dense_view = DenseNfa::from_nfa(view_nfa);
            for (si, sj) in
                automata::word_reachability_relation_dense(&query_dense, &dense_view)
            {
                a_prime_transitions.push((si, view_sym.index() as u32, sj));
            }
        }
    }
    let a_prime_dense = DenseNfa::from_parts(
        sigma_e.clone(),
        n,
        [query_dense.initial()],
        (0..n as u32).filter(|&s| !query_dense.is_final(s)),
        a_prime_transitions,
    );

    // Step 3: the rewriting is the complement of A'.  A' is in general
    // nondeterministic over Σ_E, so complement via subset construction —
    // both run on the flat tables.
    let rewriting_dense = determinize_to_dense(&a_prime_dense).dfa.complement();
    let reachable = rewriting_dense.reachable();
    let coreachable = rewriting_dense.coreachable();
    let trimmed_productive = reachable.iter().filter(|&s| coreachable.contains(s)).count();
    let is_empty = !reachable.intersects(rewriting_dense.finals());

    let a_prime = a_prime_dense.to_nfa();
    let rewriting = rewriting_dense.to_dfa();
    let stats = RewriteStats {
        query_nfa_states,
        query_dfa_states: query_dense.num_states(),
        a_prime_states: a_prime.num_states(),
        a_prime_transitions: a_prime.num_transitions(),
        rewriting_states: rewriting_dense.num_states(),
        rewriting_trimmed_states: trimmed_productive,
        is_empty,
    };

    MaximalRewriting {
        query_dfa,
        a_prime,
        automaton: rewriting,
        stats,
    }
}

/// The seed's tree-based construction — Moore minimization, `BTreeSet`
/// reachability sweeps, tree subset construction — retained verbatim as the
/// differential baseline for the dense pipeline above.
pub fn compute_maximal_rewriting_baseline(problem: &RewriteProblem) -> MaximalRewriting {
    compute_maximal_rewriting_with_baseline(problem, &RewriterOptions::default())
}

/// [`compute_maximal_rewriting_baseline`] with explicit options.
pub fn compute_maximal_rewriting_with_baseline(
    problem: &RewriteProblem,
    options: &RewriterOptions,
) -> MaximalRewriting {
    let sigma = problem.views.sigma().clone();
    let sigma_e = problem.views.sigma_e().clone();

    // Step 1: deterministic automaton A_d for E0.
    let query_nfa = if options.use_glushkov {
        glushkov(&problem.query, &sigma).expect("query symbols checked at problem construction")
    } else {
        thompson(&problem.query, &sigma).expect("query symbols checked at problem construction")
    };
    let query_nfa_states = query_nfa.num_states();
    let mut query_dfa = determinize_with_subsets_baseline(&query_nfa).dfa;
    if options.minimize_query_dfa {
        query_dfa = minimize_baseline(&query_dfa);
    }
    let query_dfa = query_dfa.complete();

    // Step 2: A' over Σ_E with the same states as A_d.
    let mut a_prime = Nfa::new(sigma_e.clone());
    a_prime.add_states(query_dfa.num_states());
    a_prime.set_initial(query_dfa.initial_state());
    for s in 0..query_dfa.num_states() {
        if !query_dfa.is_final(s) {
            a_prime.set_final(s);
        }
    }
    for (index, view) in problem.views.views().enumerate() {
        let view_sym = sigma_e
            .symbol(&view.symbol)
            .expect("view symbols are exactly sigma_e");
        let view_nfa = problem.views.automaton(index);
        if options.per_pair_reachability {
            for si in 0..query_dfa.num_states() {
                for sj in 0..query_dfa.num_states() {
                    if word_reaches(&query_dfa, view_nfa, si, sj) {
                        a_prime.add_transition(si, view_sym, sj);
                    }
                }
            }
        } else {
            for (si, sj) in word_reachability_relation_baseline(&query_dfa, view_nfa) {
                a_prime.add_transition(si, view_sym, sj);
            }
        }
    }

    // Step 3: the rewriting is the complement of A'.
    let rewriting = determinize_with_subsets_baseline(&a_prime).dfa.complement();
    let trimmed = rewriting.trim_unreachable();
    let trimmed_productive: usize = trimmed
        .coreachable_states()
        .intersection(&trimmed.reachable_states())
        .count();
    let is_empty = rewriting.is_empty_language();

    let stats = RewriteStats {
        query_nfa_states,
        query_dfa_states: query_dfa.num_states(),
        a_prime_states: a_prime.num_states(),
        a_prime_transitions: a_prime.num_transitions(),
        rewriting_states: rewriting.num_states(),
        rewriting_trimmed_states: trimmed_productive,
        is_empty,
    };

    MaximalRewriting {
        query_dfa,
        a_prime,
        automaton: rewriting,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::{determinize, dfa_subset_of_nfa, nfa_equivalent};
    use regexlang::parse;

    /// The running example of the paper (Example 2.2 / Figure 1).
    fn figure1_problem() -> RewriteProblem {
        RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")]).unwrap()
    }

    #[test]
    fn figure1_maximal_rewriting_is_e2star_e1_e3star() {
        let rewriting = compute_maximal_rewriting(&figure1_problem());
        assert!(!rewriting.is_empty());
        // Language check: the rewriting over Σ_E equals e2*·e1·e3*.
        let expected = thompson(
            &parse("e2*·e1·e3*").unwrap(),
            rewriting.automaton.alphabet(),
        )
        .unwrap();
        assert!(
            nfa_equivalent(&Nfa::from_dfa(&rewriting.automaton), &expected).holds(),
            "rewriting language is {}",
            rewriting.regex()
        );
        // Membership spot checks.
        assert!(rewriting.accepts(&["e1"]));
        assert!(rewriting.accepts(&["e2", "e2", "e1", "e3"]));
        assert!(!rewriting.accepts(&["e3"]));
        assert!(!rewriting.accepts(&["e1", "e2"]));
        assert!(!rewriting.accepts(&[]));
        assert_eq!(rewriting.shortest_word(), Some(vec!["e1".to_string()]));
    }

    #[test]
    fn example21_sigma_e_maximal_uses_the_star() {
        // Example 2.1: E0 = a*, E = {a*}.  Both e and e* are Σ-maximal but
        // only e* is Σ_E-maximal; the construction must return e*.
        let problem = RewriteProblem::parse("a*", [("e", "a*")]).unwrap();
        let rewriting = compute_maximal_rewriting(&problem);
        assert!(rewriting.accepts(&[]));
        assert!(rewriting.accepts(&["e"]));
        assert!(rewriting.accepts(&["e", "e", "e"]));
        let expected = thompson(&parse("e*").unwrap(), rewriting.automaton.alphabet()).unwrap();
        assert!(nfa_equivalent(&Nfa::from_dfa(&rewriting.automaton), &expected).holds());
    }

    #[test]
    fn dropping_a_view_loses_exactness_but_stays_sound() {
        // Example 2.3: without view c, the maximal rewriting is e2*·e1.
        let problem =
            RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b")]).unwrap();
        let rewriting = compute_maximal_rewriting(&problem);
        let expected = thompson(&parse("e2*·e1").unwrap(), rewriting.automaton.alphabet()).unwrap();
        assert!(
            nfa_equivalent(&Nfa::from_dfa(&rewriting.automaton), &expected).holds(),
            "rewriting is {}",
            rewriting.regex()
        );
    }

    #[test]
    fn rewriting_expansion_is_contained_in_query() {
        // Soundness (Definition 2.1): exp_Σ(L(R)) ⊆ L(E0) on several
        // problems, including ones with no useful views.
        let problems = vec![
            figure1_problem(),
            RewriteProblem::parse("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap(),
            RewriteProblem::parse("(a·b)*", [("v", "a·b·a·b")]).unwrap(),
            RewriteProblem::parse("a·b", [("v", "c")]).unwrap(),
        ];
        for problem in problems {
            let rewriting = compute_maximal_rewriting(&problem);
            let expansion = crate::expansion::expand_dfa(&rewriting.automaton, &problem.views);
            let query_dfa = determinize(
                &thompson(&problem.query, problem.views.sigma()).unwrap(),
            );
            // exp(L(R)) ⊆ L(E0)  ⟺  L(expansion) ⊆ L(query)
            assert!(
                dfa_subset_of_nfa(&determinize(&expansion), &Nfa::from_dfa(&query_dfa)).holds(),
                "unsound rewriting {} for query {}",
                rewriting.regex(),
                problem.query
            );
        }
    }

    #[test]
    fn useless_views_give_empty_rewriting() {
        let problem = RewriteProblem::parse("a·b", [("v", "c")]).unwrap();
        let rewriting = compute_maximal_rewriting(&problem);
        assert!(rewriting.is_empty());
        assert_eq!(rewriting.regex(), Regex::Empty);
        assert_eq!(rewriting.shortest_word(), None);
    }

    #[test]
    fn identity_views_reproduce_the_query() {
        // With one view per base symbol the rewriting is the query itself,
        // spelled with view symbols.
        let problem =
            RewriteProblem::parse("a·(b·a+c)*", [("va", "a"), ("vb", "b"), ("vc", "c")]).unwrap();
        let rewriting = compute_maximal_rewriting(&problem);
        let expected = thompson(
            &parse("va·(vb·va+vc)*").unwrap(),
            rewriting.automaton.alphabet(),
        )
        .unwrap();
        assert!(nfa_equivalent(&Nfa::from_dfa(&rewriting.automaton), &expected).holds());
    }

    #[test]
    fn all_option_combinations_agree_on_the_language() {
        let problem = figure1_problem();
        let reference = compute_maximal_rewriting(&problem);
        for minimize_query_dfa in [false, true] {
            for use_glushkov in [false, true] {
                for per_pair_reachability in [false, true] {
                    let options = RewriterOptions {
                        minimize_query_dfa,
                        use_glushkov,
                        per_pair_reachability,
                    };
                    let other = compute_maximal_rewriting_with(&problem, &options);
                    assert!(
                        nfa_equivalent(
                            &Nfa::from_dfa(&reference.automaton),
                            &Nfa::from_dfa(&other.automaton)
                        )
                        .holds(),
                        "options {options:?} changed the rewriting language"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_are_plausible() {
        let rewriting = compute_maximal_rewriting(&figure1_problem());
        let stats = &rewriting.stats;
        assert!(stats.query_nfa_states >= 2);
        assert!(stats.query_dfa_states >= 2);
        assert_eq!(stats.a_prime_states, stats.query_dfa_states);
        assert!(stats.a_prime_transitions > 0);
        assert!(stats.rewriting_states >= stats.rewriting_trimmed_states);
        assert!(!stats.is_empty);
    }

    #[test]
    fn problem_construction_rejects_bad_queries() {
        let views = ViewSet::parse(
            automata::Alphabet::from_chars(['a']).unwrap(),
            [("e", "a")],
        )
        .unwrap();
        let err = RewriteProblem::new(parse("a·z").unwrap(), views).unwrap_err();
        assert!(matches!(err, RewriteError::UnknownBaseSymbol(ref s) if s == "z"));
    }
}
