//! # rewriter — view-based rewriting of regular expressions
//!
//! This crate is the core contribution of the reproduced paper (Calvanese,
//! De Giacomo, Lenzerini, Vardi, *Rewriting of Regular Expressions and
//! Regular Path Queries*, PODS'99 / JCSS 2002): given a query `E0` over an
//! alphabet `Σ` and a set of views `E = {E1, …, Ek}` (each named by a symbol
//! of a view alphabet `Σ_E`), it computes
//!
//! * the **Σ_E-maximal rewriting** `R_{E,E0}` — the largest language over the
//!   view symbols all of whose expansions fall inside `L(E0)` (Theorem 2.2),
//!   which by Theorem 2.1 is also Σ-maximal, and
//! * whether that rewriting is **exact**, i.e. whether its expansion is all
//!   of `L(E0)` (Theorem 2.3 / Corollary 2.1), using the complement-free
//!   on-the-fly containment of Theorem 3.2.
//!
//! ## Dense pipeline, tree escape hatches
//!
//! Since the "dense end-to-end" refactor, the whole construction runs on
//! the `automata` crate's frozen CSR core: dense subset construction,
//! Hopcroft minimization, batched bitset reachability sweeps for `A'`,
//! dense complement-by-subset-construction, and bitset product sweeps for
//! both exactness strategies.  Tree automata ([`automata::Nfa`] /
//! [`automata::Dfa`]) remain the *construction and interchange* types — the
//! public fields of [`MaximalRewriting`] are thawed tree views of the dense
//! results — but no tree **algorithm** executes on the default paths.
//!
//! The seed's tree pipeline survives behind `*_baseline` escape hatches
//! ([`compute_maximal_rewriting_baseline`],
//! [`compute_maximal_rewriting_with_baseline`], and the `*_baseline`
//! algorithms in `automata`), kept solely so differential tests and the
//! benchmark harness can pin the dense pipeline to the seed semantics —
//! structurally identical automata, not just equal languages.
//!
//! ## Example (Figure 1 of the paper)
//!
//! ```
//! use rewriter::{RewriteProblem, rewrite};
//!
//! let problem = RewriteProblem::parse(
//!     "a·(b·a+c)*",
//!     [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
//! ).unwrap();
//! let (rewriting, exactness) = rewrite(&problem);
//!
//! // The maximal rewriting is e2*·e1·e3*, and it is exact.
//! assert!(rewriting.accepts(&["e2", "e1", "e3"]));
//! assert!(!rewriting.accepts(&["e3", "e1"]));
//! assert!(exactness.exact);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod certificates;
pub mod exact;
pub mod expansion;
pub mod maximal;
pub mod report;
pub mod views;

pub use certificates::{
    sigma_contained, sigma_e_contained, verify_rewriting, verify_rewriting_regex, RewritingCheck,
};
pub use exact::{check_exactness, check_exactness_with, rewrite, ExactnessReport, ExactnessStrategy};
pub use expansion::{expand_dfa, expand_nfa, expand_word};
pub use maximal::{
    compute_maximal_rewriting, compute_maximal_rewriting_baseline, compute_maximal_rewriting_with,
    compute_maximal_rewriting_with_baseline, MaximalRewriting, RewriteProblem, RewriteStats,
    RewriterOptions,
};
pub use report::{run_and_report, run_and_report_with, RewriteReport};
pub use views::{RewriteError, View, ViewSet};
