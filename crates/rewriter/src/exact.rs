//! Exactness of rewritings (Theorem 2.3 and Theorem 3.2 of the paper).
//!
//! A rewriting `R` is *exact* when `exp_Σ(L(R)) = L(E0)`.  Because every
//! rewriting satisfies `exp_Σ(L(R)) ⊆ L(E0)` by definition, exactness reduces
//! to the reverse containment `L(A_d) ⊆ L(B)`, where `B` is the expansion of
//! the maximal rewriting (Theorem 2.3), i.e. to the emptiness of
//! `L(A_d ∩ B̄)`.
//!
//! Theorem 3.2 observes that materializing `B̄` would cost a third exponential
//! and instead explores the product of `A_d` with the lazily determinized `B`
//! *on the fly*.  Both strategies are implemented so the ablation benchmark
//! (E11) can compare them; the on-the-fly one is the default.
//!
//! Both strategies run on the dense CSR core: the on-the-fly check is the
//! bitset product sweep of [`automata::dfa_subset_of_nfa`], and the explicit
//! strategy chains dense subset construction, table complement, dense
//! intersection and a flat-table shortest-word BFS
//! ([`automata::dfa_subset_of_nfa_explicit`]).  The seed's tree chain
//! survives as `automata::dfa_subset_of_nfa_explicit_baseline` for the
//! differential tests.

use automata::{dfa_subset_of_nfa, dfa_subset_of_nfa_explicit, Containment, Nfa};
use serde::Serialize;

use crate::expansion::expand_dfa;
use crate::maximal::{compute_maximal_rewriting, MaximalRewriting, RewriteProblem};
use crate::views::ViewSet;

/// Which containment strategy the exactness check uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ExactnessStrategy {
    /// Explore `A_d × (lazily determinized B)` on the fly — never builds the
    /// complement of `B` (the paper's Theorem 3.2 strategy).
    OnTheFly,
    /// Determinize and complement `B` explicitly, then intersect with `A_d`.
    /// Exponentially more expensive in the worst case; kept for ablation.
    ExplicitComplement,
}

/// Result of the exactness check.
#[derive(Debug, Clone, Serialize)]
pub struct ExactnessReport {
    /// Whether the rewriting is exact (`exp_Σ(L(R)) = L(E0)`).
    pub exact: bool,
    /// When not exact: a Σ-word (as symbol names) in `L(E0)` that no word of
    /// the rewriting expands to.
    pub counterexample: Option<Vec<String>>,
    /// Number of states of the expansion automaton `B`.
    pub expansion_states: usize,
    /// The strategy that produced this report.
    pub strategy: ExactnessStrategy,
}

/// Checks whether the maximal rewriting is exact, using the on-the-fly
/// strategy of Theorem 3.2.
pub fn check_exactness(rewriting: &MaximalRewriting, views: &ViewSet) -> ExactnessReport {
    check_exactness_with(rewriting, views, ExactnessStrategy::OnTheFly)
}

/// Checks exactness with an explicit strategy choice.
pub fn check_exactness_with(
    rewriting: &MaximalRewriting,
    views: &ViewSet,
    strategy: ExactnessStrategy,
) -> ExactnessReport {
    // B = exp_Σ(L(R)) as an automaton over Σ.
    let expansion: Nfa = expand_dfa(&rewriting.automaton, views);
    let expansion_states = expansion.num_states();
    // Exactness ⟺ L(A_d) ⊆ L(B).
    let containment: Containment = match strategy {
        ExactnessStrategy::OnTheFly => dfa_subset_of_nfa(&rewriting.query_dfa, &expansion),
        ExactnessStrategy::ExplicitComplement => {
            dfa_subset_of_nfa_explicit(&rewriting.query_dfa, &expansion)
        }
    };
    let counterexample = containment.counterexample().map(|word| {
        word.iter()
            .map(|&sym| views.sigma().name(sym).to_string())
            .collect()
    });
    ExactnessReport {
        exact: containment.holds(),
        counterexample,
        expansion_states,
        strategy,
    }
}

/// One-call convenience: computes the maximal rewriting *and* its exactness
/// report.  Corollary 2.1: an exact rewriting of `E0` w.r.t. `E` exists iff
/// the maximal rewriting is exact.
pub fn rewrite(problem: &RewriteProblem) -> (MaximalRewriting, ExactnessReport) {
    let rewriting = compute_maximal_rewriting(problem);
    let exactness = check_exactness(&rewriting, &problem.views);
    (rewriting, exactness)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_rewriting_is_exact() {
        // Example 2.3: e2*·e1·e3* is an exact rewriting of a·(b·a+c)* w.r.t.
        // {a, a·c*·b, c}.
        let problem =
            RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")])
                .unwrap();
        let (rewriting, report) = rewrite(&problem);
        assert!(report.exact, "expected exact, got {report:?}");
        assert!(report.counterexample.is_none());
        assert!(!rewriting.is_empty());
    }

    #[test]
    fn dropping_view_c_breaks_exactness() {
        // Example 2.3 continued: without c the maximal rewriting e2*·e1 is
        // not exact — e.g. a·c ∈ L(E0) is not generated.
        let problem =
            RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b")]).unwrap();
        let (_rewriting, report) = rewrite(&problem);
        assert!(!report.exact);
        let cex = report.counterexample.expect("counterexample required");
        // The counterexample must be a word of L(E0) = a·(b·a+c)* that the
        // expansion of e2*·e1 (= (a·c*·b)*·a) cannot produce.  The shortest
        // such word contains a `c`.
        assert!(cex.contains(&"c".to_string()), "counterexample {cex:?}");
    }

    #[test]
    fn example41_query_rewriting_exactness() {
        // Example 4.1 (at the regular-expression level): Q0 = a·(b+c),
        // views {a, b} give the non-exact q1·q2; adding c makes it exact.
        let incomplete = RewriteProblem::parse("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap();
        let (rewriting, report) = rewrite(&incomplete);
        assert!(!report.exact);
        assert!(rewriting.accepts(&["q1", "q2"]));
        let complete =
            RewriteProblem::parse("a·(b+c)", [("q1", "a"), ("q2", "b"), ("q3", "c")]).unwrap();
        let (rewriting, report) = rewrite(&complete);
        assert!(report.exact);
        assert!(rewriting.accepts(&["q1", "q2"]));
        assert!(rewriting.accepts(&["q1", "q3"]));
    }

    #[test]
    fn empty_rewriting_is_exact_only_for_empty_query() {
        // Query a·b with a useless view: maximal rewriting is ∅, which is not
        // exact because L(E0) ≠ ∅.
        let problem = RewriteProblem::parse("a·b", [("v", "c")]).unwrap();
        let (rewriting, report) = rewrite(&problem);
        assert!(rewriting.is_empty());
        assert!(!report.exact);
        // Query ∅: the empty rewriting is exact.
        let problem = RewriteProblem::parse("∅", [("v", "a")]).unwrap();
        let (rewriting, report) = rewrite(&problem);
        assert!(rewriting.is_empty() || report.exact);
        assert!(report.exact);
    }

    #[test]
    fn strategies_agree() {
        let problems = vec![
            RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")])
                .unwrap(),
            RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b")]).unwrap(),
            RewriteProblem::parse("(a+b)*", [("va", "a"), ("vb", "b")]).unwrap(),
            RewriteProblem::parse("a·b·c", [("v1", "a·b"), ("v2", "c"), ("v3", "b·c")]).unwrap(),
        ];
        for problem in problems {
            let rewriting = compute_maximal_rewriting(&problem);
            let lazy = check_exactness_with(&rewriting, &problem.views, ExactnessStrategy::OnTheFly);
            let explicit = check_exactness_with(
                &rewriting,
                &problem.views,
                ExactnessStrategy::ExplicitComplement,
            );
            assert_eq!(lazy.exact, explicit.exact, "query {}", problem.query);
        }
    }

    #[test]
    fn exact_when_views_cover_all_symbols() {
        let problem = RewriteProblem::parse("(a·b)*+c", [("va", "a"), ("vb", "b"), ("vc", "c")])
            .unwrap();
        let (_, report) = rewrite(&problem);
        assert!(report.exact);
    }

    #[test]
    fn composite_views_can_be_exact_without_atomic_views() {
        // L(E0) = (a·b)* and the view is exactly a·b: rewriting v* is exact.
        let problem = RewriteProblem::parse("(a·b)*", [("v", "a·b")]).unwrap();
        let (rewriting, report) = rewrite(&problem);
        assert!(report.exact);
        assert!(rewriting.accepts(&[]));
        assert!(rewriting.accepts(&["v", "v"]));
    }

    #[test]
    fn report_mentions_expansion_size() {
        let problem = RewriteProblem::parse("(a·b)*", [("v", "a·b")]).unwrap();
        let (rewriting, report) = rewrite(&problem);
        assert!(report.expansion_states >= rewriting.automaton.num_states());
    }
}
