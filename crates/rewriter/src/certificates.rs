//! Certificates: checking that candidate languages over `Σ_E` are rewritings,
//! and comparing rewritings under the two maximality orders of the paper.
//!
//! Definition 2.2 distinguishes Σ-maximality (compare the *expansions*) from
//! Σ_E-maximality (compare the languages over the view alphabet); Theorem 2.1
//! shows the latter implies the former but not conversely (Example 2.1).
//! These helpers make both orders executable so the property tests can verify
//! the theorem on generated instances.

use automata::{determinize_to_dense, dfa_subset_of_nfa_dense, Containment, DenseNfa, Nfa};
use regexlang::{thompson, Regex};

use crate::expansion::expand_nfa;
use crate::maximal::RewriteProblem;
use crate::views::ViewSet;

/// `L(a) ⊆ L(b)` for two tree NFAs, chained on the dense core: freeze both,
/// determinize the left side straight into a flat table, and run the bitset
/// product sweep — no tree `Dfa` is materialized in between.
fn nfa_contained_dense(a: &Nfa, b: &Nfa) -> Containment {
    let a_det = determinize_to_dense(&DenseNfa::from_nfa(a)).dfa;
    dfa_subset_of_nfa_dense(&a_det, &DenseNfa::from_nfa(b))
}

/// Outcome of checking whether a candidate language over `Σ_E` is a rewriting
/// of the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewritingCheck {
    /// The candidate is a rewriting: every expansion is inside `L(E0)`.
    IsRewriting,
    /// The candidate is not a rewriting; the witness is a Σ-word (as symbol
    /// names) that lies in the expansion of the candidate but outside
    /// `L(E0)`.
    NotARewriting(Vec<String>),
}

impl RewritingCheck {
    /// Whether the candidate passed.
    pub fn is_rewriting(&self) -> bool {
        matches!(self, RewritingCheck::IsRewriting)
    }
}

/// Checks Definition 2.1: is `candidate` (an automaton over `Σ_E`) a rewriting
/// of `problem.query` w.r.t. `problem.views`, i.e. is
/// `exp_Σ(L(candidate)) ⊆ L(E0)`?
pub fn verify_rewriting(problem: &RewriteProblem, candidate: &Nfa) -> RewritingCheck {
    let expansion = expand_nfa(candidate, &problem.views);
    let query_nfa = thompson(&problem.query, problem.views.sigma())
        .expect("query symbols checked at problem construction");
    match nfa_contained_dense(&expansion, &query_nfa) {
        Containment::Holds => RewritingCheck::IsRewriting,
        Containment::FailsWith(word) => RewritingCheck::NotARewriting(
            word.iter()
                .map(|&s| problem.views.sigma().name(s).to_string())
                .collect(),
        ),
    }
}

/// Checks Definition 2.1 for a candidate given as a regular expression over
/// the view symbols.
pub fn verify_rewriting_regex(problem: &RewriteProblem, candidate: &Regex) -> RewritingCheck {
    let nfa = match thompson(candidate, problem.views.sigma_e()) {
        Ok(nfa) => nfa,
        Err(unknown) => {
            // A candidate that uses a non-view symbol is not a rewriting in
            // the sense of Section 2 (partial rewritings are handled in the
            // `rpq` crate); report the offending symbol as the witness.
            return RewritingCheck::NotARewriting(vec![unknown.name]);
        }
    };
    verify_rewriting(problem, &nfa)
}

/// `Σ_E-containment`: is `L(a) ⊆ L(b)` for two languages over the view
/// alphabet?
pub fn sigma_e_contained(a: &Nfa, b: &Nfa) -> bool {
    nfa_contained_dense(a, b).holds()
}

/// `Σ-containment`: is `exp_Σ(L(a)) ⊆ exp_Σ(L(b))` — the order underlying
/// Σ-maximality (Definition 2.2)?
pub fn sigma_contained(a: &Nfa, b: &Nfa, views: &ViewSet) -> bool {
    let ea = expand_nfa(a, views);
    let eb = expand_nfa(b, views);
    nfa_contained_dense(&ea, &eb).holds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regexlang::parse;

    fn figure1_problem() -> RewriteProblem {
        RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")]).unwrap()
    }

    fn sigma_e_nfa(problem: &RewriteProblem, src: &str) -> Nfa {
        thompson(&parse(src).unwrap(), problem.views.sigma_e()).unwrap()
    }

    #[test]
    fn the_papers_rewriting_is_certified() {
        let problem = figure1_problem();
        assert!(verify_rewriting_regex(&problem, &parse("e2*·e1·e3*").unwrap()).is_rewriting());
        // Sub-languages of a rewriting are rewritings too.
        assert!(verify_rewriting_regex(&problem, &parse("e1").unwrap()).is_rewriting());
        assert!(verify_rewriting_regex(&problem, &parse("∅").unwrap()).is_rewriting());
    }

    #[test]
    fn non_rewritings_come_with_witnesses() {
        let problem = figure1_problem();
        // e3 alone expands to c, which is not in L(a·(b·a+c)*).
        match verify_rewriting_regex(&problem, &parse("e3").unwrap()) {
            RewritingCheck::NotARewriting(witness) => {
                assert_eq!(witness, vec!["c".to_string()]);
            }
            RewritingCheck::IsRewriting => panic!("e3 must not be a rewriting"),
        }
        // e1·e1 expands to a·a ∉ L(E0).
        assert!(!verify_rewriting_regex(&problem, &parse("e1·e1").unwrap()).is_rewriting());
    }

    #[test]
    fn candidates_with_unknown_symbols_are_rejected() {
        let problem = figure1_problem();
        match verify_rewriting_regex(&problem, &parse("e1·zz").unwrap()) {
            RewritingCheck::NotARewriting(witness) => assert_eq!(witness, vec!["zz".to_string()]),
            RewritingCheck::IsRewriting => panic!("unknown symbols cannot be certified"),
        }
    }

    #[test]
    fn example21_sigma_vs_sigma_e_maximality() {
        // E0 = a*, E = {e := a*}: R1 = e* and R2 = e are both Σ-maximal, but
        // only R1 is Σ_E-maximal.
        let problem = RewriteProblem::parse("a*", [("e", "a*")]).unwrap();
        let r1 = sigma_e_nfa(&problem, "e*");
        let r2 = sigma_e_nfa(&problem, "e");
        // Both are rewritings.
        assert!(verify_rewriting(&problem, &r1).is_rewriting());
        assert!(verify_rewriting(&problem, &r2).is_rewriting());
        // Same expansions (both Σ-maximal): exp(e*) = exp(e) = a*.
        assert!(sigma_contained(&r1, &r2, &problem.views));
        assert!(sigma_contained(&r2, &r1, &problem.views));
        // But over Σ_E, r2 ⊊ r1.
        assert!(sigma_e_contained(&r2, &r1));
        assert!(!sigma_e_contained(&r1, &r2));
    }

    #[test]
    fn sigma_e_containment_implies_sigma_containment() {
        // Theorem 2.1's key monotonicity step, spot-checked.
        let problem = figure1_problem();
        let small = sigma_e_nfa(&problem, "e2·e1");
        let big = sigma_e_nfa(&problem, "e2*·e1·e3*");
        assert!(sigma_e_contained(&small, &big));
        assert!(sigma_contained(&small, &big, &problem.views));
    }
}
