//! Machine-readable summaries of a full rewriting run.
//!
//! The experiment harness (`crates/bench`) records, for every instance it
//! runs, the sizes of all intermediate automata, the rewriting expression and
//! whether it is exact; EXPERIMENTS.md is regenerated from these reports.

use serde::Serialize;

use crate::exact::{check_exactness, ExactnessReport};
use crate::maximal::{compute_maximal_rewriting_with, RewriteProblem, RewriteStats, RewriterOptions};

/// A self-contained description of one rewriting run.
#[derive(Debug, Clone, Serialize)]
pub struct RewriteReport {
    /// The query `E0` in concrete syntax.
    pub query: String,
    /// The views as `symbol := definition` strings.
    pub views: Vec<String>,
    /// The Σ_E-maximal rewriting as a (simplified) expression over the view
    /// symbols; `"∅"` when empty.
    pub rewriting: String,
    /// Whether the maximal rewriting is empty.
    pub empty: bool,
    /// Whether the maximal rewriting is exact (Corollary 2.1: this is also
    /// "does an exact rewriting exist?").
    pub exact: bool,
    /// A Σ-word of `L(E0)` missed by the rewriting, when not exact.
    pub counterexample: Option<Vec<String>>,
    /// Size statistics of the construction.
    pub stats: RewriteStats,
    /// Size of the expansion automaton used by the exactness check.
    pub expansion_states: usize,
}

/// Runs the full pipeline (maximal rewriting + exactness check) and returns a
/// serializable report.
pub fn run_and_report(problem: &RewriteProblem) -> RewriteReport {
    run_and_report_with(problem, &RewriterOptions::default())
}

/// Like [`run_and_report`] but with explicit construction options.
pub fn run_and_report_with(problem: &RewriteProblem, options: &RewriterOptions) -> RewriteReport {
    let rewriting = compute_maximal_rewriting_with(problem, options);
    let exactness: ExactnessReport = check_exactness(&rewriting, &problem.views);
    RewriteReport {
        query: problem.query.to_string(),
        views: problem
            .views
            .views()
            .map(|v| format!("{} := {}", v.symbol, v.definition))
            .collect(),
        rewriting: rewriting.regex().to_string(),
        empty: rewriting.is_empty(),
        exact: exactness.exact,
        counterexample: exactness.counterexample.clone(),
        stats: rewriting.stats.clone(),
        expansion_states: exactness.expansion_states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_for_figure1() {
        let problem =
            RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")])
                .unwrap();
        let report = run_and_report(&problem);
        assert_eq!(report.query, "a·(b·a+c)*");
        assert_eq!(report.views.len(), 3);
        assert!(report.exact);
        assert!(!report.empty);
        assert!(report.counterexample.is_none());
        // The rewriting must use only view symbols.
        for sym in regexlang::parse(&report.rewriting).unwrap().symbols() {
            assert!(["e1", "e2", "e3"].contains(&sym.as_str()), "{sym}");
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let problem = RewriteProblem::parse("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap();
        let report = run_and_report(&problem);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"exact\":false"));
        assert!(json.contains("\"query\":\"a·(b+c)\""));
    }

    #[test]
    fn empty_rewriting_reports_empty_symbol() {
        let problem = RewriteProblem::parse("a", [("v", "b")]).unwrap();
        let report = run_and_report(&problem);
        assert!(report.empty);
        assert_eq!(report.rewriting, "∅");
    }
}
