//! The expansion `exp_Σ`: from languages over the view alphabet `Σ_E` to
//! languages over the base alphabet `Σ`.
//!
//! Definition 2.1 of the paper calls a language `R` over `Σ_E` a *rewriting*
//! of `E0` w.r.t. `E` when `exp_Σ(L(R)) ⊆ L(E0)` — i.e. when every word
//! obtained from a word of `R` by substituting each view symbol by any word
//! of that view's language belongs to `L(E0)`.
//!
//! This module implements the expansion at the automaton level (used by the
//! exactness check of Theorem 2.3, where the expansion of the rewriting is
//! the automaton `B`) and at the word level (used by tests and by the
//! Σ-maximality comparisons).

use automata::{Dfa, Nfa, StateId, Symbol};

use crate::views::ViewSet;

/// Expands an automaton over `Σ_E` into an NFA over `Σ` by replacing every
/// transition labeled with a view symbol by a fresh copy of that view's
/// automaton (the construction of the automaton `B` in Section 2 of the
/// paper).
///
/// The construction glues the copy in with ε-transitions, which is equivalent
/// to the paper's start/accept-state identification but keeps the view
/// automata unconstrained (they need not have unique initial/final states).
pub fn expand_nfa(over_sigma_e: &Nfa, views: &ViewSet) -> Nfa {
    over_sigma_e
        .alphabet()
        .check_compatible(views.sigma_e())
        .expect("expansion input must be over the view alphabet");
    let mut out = Nfa::new(views.sigma().clone());
    // One state in the output per state of the Σ_E-automaton …
    let skeleton: Vec<StateId> = out.add_states(over_sigma_e.num_states());
    for &s in over_sigma_e.initial_states() {
        out.set_initial(skeleton[s]);
    }
    for &s in over_sigma_e.final_states() {
        out.set_final(skeleton[s]);
    }
    for (from, label, to) in over_sigma_e.transitions() {
        match label {
            None => out.add_epsilon(skeleton[from], skeleton[to]),
            Some(view_sym) => {
                splice_view(&mut out, views, view_sym, skeleton[from], skeleton[to]);
            }
        }
    }
    out
}

/// Expands a DFA over `Σ_E` (e.g. the maximal rewriting automaton
/// `R_{E,E0}`) into an NFA over `Σ`.
pub fn expand_dfa(over_sigma_e: &Dfa, views: &ViewSet) -> Nfa {
    expand_nfa(&Nfa::from_dfa(over_sigma_e), views)
}

/// Splices a fresh copy of the automaton of `view_sym` between `from` and
/// `to` in `out`.
fn splice_view(out: &mut Nfa, views: &ViewSet, view_sym: Symbol, from: StateId, to: StateId) {
    let name = views.sigma_e().name(view_sym).to_string();
    let view_nfa = views
        .automaton_of(&name)
        .expect("symbol comes from the view alphabet");
    let offset: Vec<StateId> = out.add_states(view_nfa.num_states());
    for (vf, label, vt) in view_nfa.transitions() {
        match label {
            Some(sym) => out.add_transition(offset[vf], sym, offset[vt]),
            None => out.add_epsilon(offset[vf], offset[vt]),
        }
    }
    for &vi in view_nfa.initial_states() {
        out.add_epsilon(from, offset[vi]);
    }
    for &vf in view_nfa.final_states() {
        out.add_epsilon(offset[vf], to);
    }
}

/// Expands a single word over `Σ_E` into the NFA over `Σ` accepting its
/// expansion `exp_Σ({w})` (the concatenation of the view languages named by
/// the word).
pub fn expand_word(word: &[Symbol], views: &ViewSet) -> Nfa {
    let mut acc = Nfa::epsilon(views.sigma().clone());
    for &view_sym in word {
        let name = views.sigma_e().name(view_sym).to_string();
        let view_nfa = views
            .automaton_of(&name)
            .expect("symbol comes from the view alphabet");
        acc = acc.concat(view_nfa);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::{determinize, nfa_equivalent, Alphabet};
    use regexlang::{parse, thompson};

    use crate::views::ViewSet;

    fn abc() -> Alphabet {
        Alphabet::from_chars(['a', 'b', 'c']).unwrap()
    }

    fn example22_views() -> ViewSet {
        ViewSet::parse(abc(), [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")]).unwrap()
    }

    /// Builds an NFA over Σ_E from a regex over the view symbols.
    fn sigma_e_nfa(views: &ViewSet, src: &str) -> Nfa {
        thompson(&parse(src).unwrap(), views.sigma_e()).unwrap()
    }

    #[test]
    fn expansion_matches_syntactic_substitution() {
        let views = example22_views();
        for src in ["e2*·e1·e3*", "e1", "e2+e3", "(e1·e3)*", "ε"] {
            let over_e = sigma_e_nfa(&views, src);
            let expanded = expand_nfa(&over_e, &views);
            // Reference: substitute the definitions syntactically and
            // translate the resulting Σ-regex.
            let reference_regex = views.expand_regex(&parse(src).unwrap());
            let reference = thompson(&reference_regex, views.sigma()).unwrap();
            assert!(
                nfa_equivalent(&expanded, &reference).holds(),
                "expansion of {src} diverges from substitution {reference_regex}"
            );
        }
    }

    #[test]
    fn expansion_of_empty_language_is_empty() {
        let views = example22_views();
        let empty = Nfa::empty(views.sigma_e().clone());
        assert!(expand_nfa(&empty, &views).is_empty_language());
    }

    #[test]
    fn expansion_of_epsilon_is_epsilon() {
        let views = example22_views();
        let eps = Nfa::epsilon(views.sigma_e().clone());
        let expanded = expand_nfa(&eps, &views);
        assert!(expanded.accepts(&[]));
        assert!(!expanded.accepts(&[views.sigma().symbol("a").unwrap()]));
    }

    #[test]
    fn expand_dfa_agrees_with_expand_nfa() {
        let views = example22_views();
        let over_e = sigma_e_nfa(&views, "e2*·e1·e3*");
        let via_nfa = expand_nfa(&over_e, &views);
        let via_dfa = expand_dfa(&determinize(&over_e), &views);
        assert!(nfa_equivalent(&via_nfa, &via_dfa).holds());
    }

    #[test]
    fn expand_word_concatenates_view_languages() {
        let views = example22_views();
        let sigma_e = views.sigma_e().clone();
        let word = sigma_e.word(&["e2", "e1"]).unwrap();
        let expanded = expand_word(&word, &views);
        assert!(expanded.accepts_names(&["a", "b", "a"]));
        assert!(expanded.accepts_names(&["a", "c", "b", "a"]));
        assert!(!expanded.accepts_names(&["a", "b"]));
        // Empty word expands to {ε}.
        let expanded = expand_word(&[], &views);
        assert!(expanded.accepts(&[]));
    }
}
