//! View sets: the `E = {E1, …, Ek}` of the paper, together with the view
//! alphabet `Σ_E` and the association `re(e_i) = E_i`.
//!
//! A [`ViewSet`] owns, for every view, a *view symbol* (a name in `Σ_E`) and
//! the regular expression over the base alphabet `Σ` that the symbol stands
//! for.  It also owns both alphabets and the compiled view automata, which
//! the rewriting construction and the expansion reuse repeatedly.

use std::collections::BTreeSet;
use std::fmt;

use automata::{Alphabet, Nfa};
use regexlang::{thompson, Regex};

/// Errors raised while assembling a [`ViewSet`] or a rewriting problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// Two views were registered under the same view symbol.
    DuplicateViewSymbol(String),
    /// A view symbol collides with a symbol of the base alphabet Σ
    /// (the paper keeps Σ and Σ_E disjoint except in the lower-bound
    /// constructions, where the caller opts in explicitly).
    ViewSymbolShadowsBase(String),
    /// A view or query mentions a symbol that is not in the base alphabet.
    UnknownBaseSymbol(String),
    /// The view set is empty: no rewriting can be formed.
    NoViews,
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::DuplicateViewSymbol(s) => write!(f, "duplicate view symbol `{s}`"),
            RewriteError::ViewSymbolShadowsBase(s) => {
                write!(f, "view symbol `{s}` collides with a base-alphabet symbol")
            }
            RewriteError::UnknownBaseSymbol(s) => {
                write!(f, "symbol `{s}` does not occur in the base alphabet")
            }
            RewriteError::NoViews => write!(f, "the view set is empty"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// A single view: a symbol of `Σ_E` together with the regular expression over
/// `Σ` it denotes (`re(e)` in the paper).
#[derive(Debug, Clone)]
pub struct View {
    /// The view symbol name (an element of `Σ_E`).
    pub symbol: String,
    /// The definition `re(symbol)` over the base alphabet.
    pub definition: Regex,
}

impl View {
    /// Creates a view from a symbol name and its definition.
    pub fn new(symbol: impl Into<String>, definition: Regex) -> Self {
        Self {
            symbol: symbol.into(),
            definition,
        }
    }
}

/// The set `E` of views, with its alphabets and compiled automata.
#[derive(Debug, Clone)]
pub struct ViewSet {
    views: Vec<View>,
    /// The base alphabet Σ.
    sigma: Alphabet,
    /// The view alphabet Σ_E (one symbol per view, in registration order).
    sigma_e: Alphabet,
    /// Compiled NFA over Σ for each view, same order as `views`.
    automata: Vec<Nfa>,
}

impl ViewSet {
    /// Builds a view set over an explicitly given base alphabet Σ.
    ///
    /// Fails if a view symbol repeats, if a view definition mentions symbols
    /// outside Σ, or if no view is supplied.
    pub fn new(
        sigma: Alphabet,
        views: impl IntoIterator<Item = View>,
    ) -> Result<Self, RewriteError> {
        let views: Vec<View> = views.into_iter().collect();
        if views.is_empty() {
            return Err(RewriteError::NoViews);
        }
        let mut seen = BTreeSet::new();
        for view in &views {
            if !seen.insert(view.symbol.clone()) {
                return Err(RewriteError::DuplicateViewSymbol(view.symbol.clone()));
            }
            for sym in view.definition.symbols() {
                if sigma.symbol(&sym).is_none() {
                    return Err(RewriteError::UnknownBaseSymbol(sym));
                }
            }
        }
        let sigma_e = Alphabet::from_names(views.iter().map(|v| v.symbol.clone()))
            .expect("duplicates rejected above");
        let automata = views
            .iter()
            .map(|v| thompson(&v.definition, &sigma).expect("symbols checked above"))
            .collect();
        Ok(Self {
            views,
            sigma,
            sigma_e,
            automata,
        })
    }

    /// Builds a view set whose base alphabet is inferred as the union of all
    /// symbols occurring in the views and in `extra` (typically the query's
    /// symbols, so that Σ covers the whole rewriting problem).
    pub fn with_inferred_alphabet(
        views: impl IntoIterator<Item = View>,
        extra: impl IntoIterator<Item = String>,
    ) -> Result<Self, RewriteError> {
        let views: Vec<View> = views.into_iter().collect();
        let mut names: BTreeSet<String> = extra.into_iter().collect();
        for view in &views {
            names.extend(view.definition.symbols());
        }
        let sigma = Alphabet::from_names(names).expect("BTreeSet has no duplicates");
        Self::new(sigma, views)
    }

    /// Convenience constructor from `(symbol, definition source)` pairs in the
    /// paper's concrete syntax.
    pub fn parse(
        sigma: Alphabet,
        views: impl IntoIterator<Item = (&'static str, &'static str)>,
    ) -> Result<Self, RewriteError> {
        let views: Result<Vec<View>, RewriteError> = views
            .into_iter()
            .map(|(symbol, src)| {
                regexlang::parse(src)
                    .map(|def| View::new(symbol, def))
                    .map_err(|_| RewriteError::UnknownBaseSymbol(src.to_string()))
            })
            .collect();
        Self::new(sigma, views?)
    }

    /// The base alphabet Σ.
    pub fn sigma(&self) -> &Alphabet {
        &self.sigma
    }

    /// The view alphabet Σ_E.
    pub fn sigma_e(&self) -> &Alphabet {
        &self.sigma_e
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the view set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Iterates over the views in registration order.
    pub fn views(&self) -> impl Iterator<Item = &View> + '_ {
        self.views.iter()
    }

    /// The definition `re(e)` of a view symbol, if registered.
    pub fn definition(&self, symbol: &str) -> Option<&Regex> {
        self.views
            .iter()
            .find(|v| v.symbol == symbol)
            .map(|v| &v.definition)
    }

    /// The compiled automaton (over Σ) of the `i`-th view.
    pub fn automaton(&self, index: usize) -> &Nfa {
        &self.automata[index]
    }

    /// The compiled automaton of a view symbol, if registered.
    pub fn automaton_of(&self, symbol: &str) -> Option<&Nfa> {
        self.views
            .iter()
            .position(|v| v.symbol == symbol)
            .map(|i| &self.automata[i])
    }

    /// Total syntactic size of all view definitions (used in experiment
    /// reports).
    pub fn total_size(&self) -> usize {
        self.views.iter().map(|v| v.definition.size()).sum()
    }

    /// Renders the view set as `{e1 := a, e2 := a·c*·b, …}`.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .views
            .iter()
            .map(|v| format!("{} := {}", v.symbol, v.definition))
            .collect();
        format!("{{{}}}", body.join(", "))
    }

    /// Expands a word over Σ_E into the regular expression over Σ obtained by
    /// substituting every view symbol by its definition (the syntactic form
    /// of `exp_Σ({w})`).
    pub fn expand_word(&self, word: &[automata::Symbol]) -> Regex {
        Regex::concat_all(word.iter().map(|&sym| {
            let name = self.sigma_e.name(sym);
            self.definition(name)
                .cloned()
                .expect("symbol comes from sigma_e")
        }))
    }

    /// Expands a regular expression over Σ_E into one over Σ by substituting
    /// every view symbol by its definition.
    pub fn expand_regex(&self, over_sigma_e: &Regex) -> Regex {
        over_sigma_e.substitute(&|name| {
            self.definition(name)
                .cloned()
                .unwrap_or_else(|| Regex::symbol(name))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regexlang::parse;

    fn abc() -> Alphabet {
        Alphabet::from_chars(['a', 'b', 'c']).unwrap()
    }

    /// The view set of Example 2.2: {a, a·c*·b, c}.
    fn example22_views() -> ViewSet {
        ViewSet::parse(abc(), [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")]).unwrap()
    }

    #[test]
    fn builds_sigma_e_in_order() {
        let views = example22_views();
        assert_eq!(views.len(), 3);
        let names: Vec<&str> = views.sigma_e().names().collect();
        assert_eq!(names, vec!["e1", "e2", "e3"]);
        assert_eq!(views.definition("e2").unwrap().to_string(), "a·c*·b");
        assert!(views.definition("e9").is_none());
        assert_eq!(views.total_size(), 1 + 5 + 1);
    }

    #[test]
    fn rejects_duplicates_and_unknown_symbols() {
        let err = ViewSet::parse(abc(), [("e1", "a"), ("e1", "b")]).unwrap_err();
        assert!(matches!(err, RewriteError::DuplicateViewSymbol(_)));
        let err = ViewSet::new(
            Alphabet::from_chars(['a']).unwrap(),
            [View::new("e1", parse("a·z").unwrap())],
        )
        .unwrap_err();
        assert!(matches!(err, RewriteError::UnknownBaseSymbol(ref s) if s == "z"));
        let err = ViewSet::new(abc(), Vec::<View>::new()).unwrap_err();
        assert_eq!(err, RewriteError::NoViews);
    }

    #[test]
    fn inferred_alphabet_covers_views_and_extra() {
        let views = ViewSet::with_inferred_alphabet(
            [View::new("v", parse("rome·paris").unwrap())],
            ["london".to_string()],
        )
        .unwrap();
        assert_eq!(views.sigma().len(), 3);
        assert!(views.sigma().symbol("london").is_some());
    }

    #[test]
    fn compiled_automata_accept_view_languages() {
        let views = example22_views();
        let e2 = views.automaton_of("e2").unwrap();
        assert!(e2.accepts_names(&["a", "b"]));
        assert!(e2.accepts_names(&["a", "c", "c", "b"]));
        assert!(!e2.accepts_names(&["a", "c"]));
        assert!(views.automaton(0).accepts_names(&["a"]));
    }

    #[test]
    fn expansion_of_words_and_regexes() {
        let views = example22_views();
        let sigma_e = views.sigma_e().clone();
        let word = sigma_e.word(&["e2", "e1"]).unwrap();
        assert_eq!(views.expand_word(&word).to_string(), "a·c*·b·a");
        let r = parse("e2*·e1·e3*").unwrap();
        assert_eq!(views.expand_regex(&r).to_string(), "(a·c*·b)*·a·c*");
        // Unknown symbols pass through untouched (useful for partial
        // rewritings that mix base and view symbols).
        let partial = parse("e1·b").unwrap();
        assert_eq!(views.expand_regex(&partial).to_string(), "a·b");
    }

    #[test]
    fn render_is_human_readable() {
        let views = example22_views();
        assert_eq!(views.render(), "{e1 := a, e2 := a·c*·b, e3 := c}");
    }
}
