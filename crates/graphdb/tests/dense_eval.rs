//! Differential tests: the dense product-BFS RPQ evaluator must return
//! exactly the same answer set as the seed's tree-based evaluator on
//! randomized databases and queries.

use automata::{random_nfa, Alphabet, DenseNfa, RandomAutomatonConfig};
use graphdb::{
    eval_automaton, eval_automaton_baseline, eval_dense, layered_graph, random_graph, tree_graph,
    Answer, AnswerSet, GraphDb, RandomGraphConfig,
};
use regexlang::{random_regex, thompson, RandomRegexConfig};

/// Projects the sorted-pairs answer into the seed's `BTreeSet`
/// representation so the differential compares pair sets across both
/// representations, not just both algorithms.
fn as_set(answer: &Answer) -> AnswerSet {
    answer.iter().copied().collect()
}

fn domain(size: usize) -> Alphabet {
    Alphabet::from_names((0..size).map(|i| ((b'a' + i as u8) as char).to_string()))
        .expect("distinct letters")
}

fn random_db(case: u64, domain: &Alphabet) -> GraphDb {
    match case % 3 {
        0 => random_graph(
            domain,
            &RandomGraphConfig {
                num_nodes: 4 + (case % 20) as usize,
                num_edges: 6 + (case % 50) as usize,
            },
            case,
        ),
        1 => tree_graph(domain, 4 + (case % 25) as usize, case),
        _ => layered_graph(domain, 2 + (case % 4) as usize, 3, 2, case),
    }
}

#[test]
fn dense_eval_matches_baseline_on_random_regex_queries() {
    for case in 0..220u64 {
        let dom = domain(2 + (case % 3) as usize);
        let db = random_db(case, &dom);
        let regex = random_regex(
            &dom,
            &RandomRegexConfig {
                target_size: 3 + (case % 10) as usize,
                ..Default::default()
            },
            case * 17 + 3,
        );
        let nfa = thompson(&regex, &dom).expect("generated over the domain");
        let dense = eval_automaton(&db, &nfa);
        let baseline = eval_automaton_baseline(&db, &nfa);
        assert_eq!(as_set(&dense), baseline, "case {case}, query {regex}");
        assert_eq!(dense.len(), baseline.len(), "case {case}");
    }
}

#[test]
fn dense_eval_matches_baseline_on_random_nfa_queries() {
    // Random NFAs (no regex structure, arbitrary ε-free transition soup plus
    // unions adding ε-moves) over random databases.
    for case in 0..220u64 {
        let dom = domain(2 + (case % 2) as usize);
        let db = random_db(case ^ 0xa5a5, &dom);
        let config = RandomAutomatonConfig {
            num_states: 2 + (case % 6) as usize,
            density: 0.15 + (case % 4) as f64 * 0.1,
            final_probability: 0.3,
        };
        let base = random_nfa(&dom, &config, case * 31 + 7);
        // Half the cases get ε-transitions via rational operations.
        let nfa = match case % 4 {
            0 => base,
            1 => base.star(),
            2 => base.optional(),
            _ => base.plus(),
        };
        let dense = eval_automaton(&db, &nfa);
        let baseline = eval_automaton_baseline(&db, &nfa);
        assert_eq!(as_set(&dense), baseline, "case {case}");
    }
}

#[test]
fn prefrozen_queries_answer_identically() {
    let dom = domain(3);
    let db = random_db(11, &dom);
    let regex = random_regex(&dom, &RandomRegexConfig::default(), 5);
    let nfa = thompson(&regex, &dom).expect("generated over the domain");
    let frozen = DenseNfa::from_nfa(&nfa);
    assert_eq!(eval_dense(&db, &frozen), eval_automaton(&db, &nfa));
}

#[test]
fn dense_eval_handles_empty_and_edgeless_databases() {
    let dom = domain(2);
    let empty = GraphDb::new(dom.clone());
    let a = automata::Nfa::symbol(dom.clone(), dom.symbol("a").unwrap());
    assert!(eval_automaton(&empty, &a).is_empty());
    assert!(eval_automaton(&empty, &a.star()).is_empty());

    let mut nodes_only = GraphDb::new(dom.clone());
    for _ in 0..5 {
        nodes_only.add_node();
    }
    assert!(eval_automaton(&nodes_only, &a).is_empty());
    // ε ∈ L(a*): every node answers with itself.
    assert_eq!(eval_automaton(&nodes_only, &a.star()).len(), 5);
    assert_eq!(
        as_set(&eval_automaton(&nodes_only, &a.star())),
        eval_automaton_baseline(&nodes_only, &a.star())
    );
}
