//! Differential tests for the interactive evaluators: the single-source
//! early-exit sweep (`eval_csr_from`) and the bidirectional single-pair
//! evaluator (`eval_csr_pair`) must agree with the full-materialization
//! product-BFS (`eval_csr`) on every randomized graph × query case —
//! including limit boundaries, empty/dead-language automata, and budget
//! interrupts (which must leave the scratch reusable).

use automata::{Alphabet, DenseNfa};
use graphdb::{
    eval_csr, eval_csr_from, eval_csr_from_budgeted, eval_csr_pair, eval_csr_pair_budgeted,
    layered_graph, random_graph, tree_graph, EvalScratch, GraphDb, NodeId, PairScratch,
    RandomGraphConfig, SortedPairs, SweepBudget, SweepInterrupt, SweepState,
};
use regexlang::thompson;

const QUERIES: &[&str] = &[
    "a",
    "a·b",
    "a·(b·a+c)*",
    "c*",
    "(a+b)*·c",
    "ε",
    "∅",
    "a+b·c?",
    "(a+b+c)*",
    "a?·b*",
];

fn domain() -> Alphabet {
    Alphabet::from_chars(['a', 'b', 'c']).expect("distinct letters")
}

fn random_db(seed: u64, num_nodes: usize, num_edges: usize, dom: &Alphabet) -> GraphDb {
    match seed % 3 {
        0 => random_graph(dom, &RandomGraphConfig { num_nodes, num_edges }, seed),
        1 => tree_graph(dom, num_nodes, seed),
        _ => layered_graph(dom, 3, num_nodes.div_ceil(3).max(1), 2, seed),
    }
}

fn compile(query: &str, dom: &Alphabet) -> DenseNfa {
    let regex = regexlang::parse(query).expect("query parses");
    let nfa = thompson(&regex, dom).expect("query over the domain");
    DenseNfa::from_nfa(&nfa)
}

/// The oracle's targets of one source, extracted from the full answer.
fn oracle_targets(oracle: &SortedPairs, source: NodeId) -> Vec<NodeId> {
    oracle
        .iter()
        .filter(|&&(s, _)| s == source)
        .map(|&(_, t)| t)
        .collect()
}

#[test]
fn eval_csr_from_matches_full_materialization() {
    let dom = domain();
    let mut cases = 0usize;
    for &(num_nodes, num_edges) in &[(5usize, 12usize), (17, 60), (33, 140)] {
        for seed in 0..8u64 {
            let db = random_db(seed * 101 + num_nodes as u64, num_nodes, num_edges, &dom);
            let csr = db.csr_out();
            for query in QUERIES {
                cases += 1;
                let dense = compile(query, &dom);
                let oracle = eval_csr(&csr, &dense);
                let mut scratch = EvalScratch::new(&csr, &dense);
                for source in 0..db.num_nodes() {
                    let expected = oracle_targets(&oracle, source);
                    let got = eval_csr_from(&csr, &dense, source as u32, None, &mut scratch);
                    assert!(got.complete, "unlimited sweep must drain");
                    assert_eq!(
                        got.targets, expected,
                        "seed {seed}, |V|={num_nodes}, query {query}, source {source}"
                    );
                }
            }
        }
    }
    assert!(cases >= 200, "only {cases} differential cases ran");
}

#[test]
fn eval_csr_pair_matches_full_materialization() {
    let dom = domain();
    let mut cases = 0usize;
    for &(num_nodes, num_edges) in &[(5usize, 12usize), (17, 60), (33, 140)] {
        for seed in 0..8u64 {
            let db = random_db(seed * 71 + num_edges as u64, num_nodes, num_edges, &dom);
            let csr_out = db.csr_out();
            let csr_in = db.csr_in();
            for query in QUERIES {
                cases += 1;
                let dense = compile(query, &dom);
                let reverse = dense.reverse_closed();
                let oracle = eval_csr(&csr_out, &dense);
                let mut scratch = PairScratch::new(&csr_out, &dense);
                for source in 0..db.num_nodes() as u32 {
                    for target in 0..db.num_nodes() as u32 {
                        let expected = oracle.contains(&(source as NodeId, target as NodeId));
                        let got = eval_csr_pair(
                            &csr_out,
                            &csr_in,
                            &dense,
                            &reverse,
                            source,
                            target,
                            &mut scratch,
                        );
                        assert_eq!(
                            got, expected,
                            "seed {seed}, |V|={num_nodes}, query {query}, \
                             pair ({source}, {target})"
                        );
                    }
                }
            }
        }
    }
    assert!(cases >= 200, "only {cases} differential cases ran");
}

#[test]
fn budgeted_twins_agree_with_plain_evaluators_under_unlimited_budgets() {
    let dom = domain();
    let db = random_db(3, 21, 80, &dom);
    let csr_out = db.csr_out();
    let csr_in = db.csr_in();
    for query in QUERIES {
        let dense = compile(query, &dom);
        let reverse = dense.reverse_closed();
        let mut scratch = EvalScratch::new(&csr_out, &dense);
        let mut pair_scratch = PairScratch::new(&csr_out, &dense);
        let unlimited = SweepBudget::unlimited();
        for source in 0..db.num_nodes() as u32 {
            let plain = eval_csr_from(&csr_out, &dense, source, Some(3), &mut scratch);
            let progress = SweepState::new();
            let budgeted = eval_csr_from_budgeted(
                &csr_out, &dense, source, Some(3), &mut scratch, &unlimited, &progress,
            )
            .expect("unlimited budget never interrupts");
            assert_eq!(plain.targets, budgeted.targets, "query {query}");
            assert_eq!(plain.complete, budgeted.complete, "query {query}");

            let target = (source + 1) % db.num_nodes() as u32;
            let plain = eval_csr_pair(
                &csr_out, &csr_in, &dense, &reverse, source, target, &mut pair_scratch,
            );
            let progress = SweepState::new();
            let budgeted = eval_csr_pair_budgeted(
                &csr_out,
                &csr_in,
                &dense,
                &reverse,
                source,
                target,
                &mut pair_scratch,
                &unlimited,
                &progress,
                None,
            )
            .expect("unlimited budget never interrupts");
            assert_eq!(plain, budgeted, "query {query}, pair ({source}, {target})");
        }
    }
}

#[test]
fn limit_boundaries_truncate_exactly() {
    let dom = domain();
    let db = random_db(7, 17, 70, &dom);
    let csr = db.csr_out();
    let dense = compile("(a+b+c)*", &dom);
    let oracle = eval_csr(&csr, &dense);
    let mut scratch = EvalScratch::new(&csr, &dense);
    for source in 0..db.num_nodes() {
        let full = oracle_targets(&oracle, source);

        // k = 0: nothing materializes and the sweep reports incompleteness
        // (it cannot know whether targets exist without searching).
        let k0 = eval_csr_from(&csr, &dense, source as u32, Some(0), &mut scratch);
        assert!(k0.targets.is_empty());
        assert!(!k0.complete);

        // k = 1: exactly one target (when any exists), and it is one of the
        // oracle's — the BFS discovery order need not be the sorted order.
        let k1 = eval_csr_from(&csr, &dense, source as u32, Some(1), &mut scratch);
        assert_eq!(k1.targets.len(), full.len().min(1));
        assert!(k1.targets.iter().all(|t| full.contains(t)));
        if full.len() > 1 {
            assert!(!k1.complete, "stopping below the full count is truncation");
        }

        // k exactly at the count: every target found; the sweep stopped at
        // the k-th so it cannot certify completeness.
        if !full.is_empty() {
            let exact = eval_csr_from(&csr, &dense, source as u32, Some(full.len()), &mut scratch);
            assert_eq!(exact.targets, full);
        }

        // k ≥ all: the limit never binds and the sweep drains.
        let over = eval_csr_from(&csr, &dense, source as u32, Some(full.len() + 5), &mut scratch);
        assert_eq!(over.targets, full);
        assert!(over.complete);
    }
}

#[test]
fn empty_language_and_dead_state_automata_answer_false_everywhere() {
    let dom = domain();
    let db = random_db(5, 12, 40, &dom);
    let csr_out = db.csr_out();
    let csr_in = db.csr_in();
    // ∅ itself, and a live-looking automaton whose accepting state is
    // unreachable (dead): a·∅ concatenates into the empty language.
    for query in ["∅", "a·∅", "∅*·∅"] {
        let dense = compile(query, &dom);
        let reverse = dense.reverse_closed();
        let oracle = eval_csr(&csr_out, &dense);
        let mut scratch = EvalScratch::new(&csr_out, &dense);
        let mut pair_scratch = PairScratch::new(&csr_out, &dense);
        for source in 0..db.num_nodes() as u32 {
            let got = eval_csr_from(&csr_out, &dense, source, None, &mut scratch);
            assert_eq!(got.targets, oracle_targets(&oracle, source as NodeId), "{query}");
            for target in 0..db.num_nodes() as u32 {
                let connected = eval_csr_pair(
                    &csr_out, &csr_in, &dense, &reverse, source, target, &mut pair_scratch,
                );
                assert_eq!(
                    connected,
                    oracle.contains(&(source as NodeId, target as NodeId)),
                    "{query} pair ({source}, {target})"
                );
            }
        }
    }
    // ε*·∅ is empty, but ∅* contains ε: identity pairs only.
    let dense = compile("∅*", &dom);
    let mut scratch = EvalScratch::new(&csr_out, &dense);
    for source in 0..db.num_nodes() as u32 {
        let got = eval_csr_from(&csr_out, &dense, source, None, &mut scratch);
        assert_eq!(got.targets, vec![source as NodeId]);
    }
}

#[test]
fn interrupted_sweeps_leave_the_scratch_reusable() {
    // Budget checks run every SWEEP_CHECK_INTERVAL pops, so interrupting
    // needs a sweep with more pops than one interval: a long `a`-chain —
    // 6000 product pairs from node 0 under `a*`, and a bidirectional pair
    // search that must burn ~3000 pops per side before its cones meet.
    let dom = domain();
    let a = dom.symbol("a").expect("a in domain");
    let mut db = GraphDb::new(dom.clone());
    let mut prev = db.add_node();
    let first = prev;
    for _ in 0..6000 {
        let next = db.add_node();
        db.add_edge(prev, a, next);
        prev = next;
    }
    let last = prev;
    let csr_out = db.csr_out();
    let csr_in = db.csr_in();
    let dense = compile("a*", &dom);
    let reverse = dense.reverse_closed();
    let tight = SweepBudget { max_visited: Some(1), ..SweepBudget::unlimited() };
    let unlimited = SweepBudget::unlimited();

    let mut scratch = EvalScratch::new(&csr_out, &dense);
    let progress = SweepState::new();
    let interrupted = eval_csr_from_budgeted(
        &csr_out,
        &dense,
        first as u32,
        None,
        &mut scratch,
        &tight,
        &progress,
    );
    assert_eq!(interrupted.unwrap_err(), SweepInterrupt::VisitLimit);
    assert!(progress.visited() > 0, "partial work must be reported");
    // Same scratch, fresh progress: the sweep must now drain and find every
    // chain node — an interrupt may not leave visited bits or queue entries.
    let progress = SweepState::new();
    let redone = eval_csr_from_budgeted(
        &csr_out,
        &dense,
        first as u32,
        None,
        &mut scratch,
        &unlimited,
        &progress,
    )
    .expect("unlimited budget never interrupts");
    assert!(redone.complete);
    assert_eq!(redone.targets, (first..=last).collect::<Vec<_>>());

    let mut pair_scratch = PairScratch::new(&csr_out, &dense);
    let progress = SweepState::new();
    let interrupted = eval_csr_pair_budgeted(
        &csr_out,
        &csr_in,
        &dense,
        &reverse,
        first as u32,
        last as u32,
        &mut pair_scratch,
        &tight,
        &progress,
        None,
    );
    assert_eq!(interrupted.unwrap_err(), SweepInterrupt::VisitLimit);
    let progress = SweepState::new();
    let redone = eval_csr_pair_budgeted(
        &csr_out,
        &csr_in,
        &dense,
        &reverse,
        first as u32,
        last as u32,
        &mut pair_scratch,
        &unlimited,
        &progress,
        None,
    )
    .expect("unlimited budget never interrupts");
    assert!(redone, "chain ends connect under a* after scratch reuse");
}

#[test]
fn sorted_pairs_contains_covers_boundaries_and_duplicates() {
    // Empty set: no pair is contained.
    let empty = SortedPairs::new();
    assert!(!empty.contains(&(0, 0)));

    // Duplicates fed through the collecting constructors merge down to one
    // copy of each pair, and `contains` still answers true for all of them.
    let merged: SortedPairs =
        vec![(0, 1), (2, 3), (0, 1), (5, 5), (2, 3), (9, 0)].into_iter().collect();
    assert_eq!(merged.len(), 4, "duplicates collapse on collect");
    let mut extended = SortedPairs::new();
    extended.extend(vec![(2, 3), (0, 1)]);
    extended.extend(vec![(0, 1), (9, 0), (5, 5), (2, 3)]);
    assert_eq!(extended, merged, "extend dedups against resident pairs");
    assert!(merged.contains(&(0, 1)));
    assert!(merged.contains(&(2, 3)));

    // `from_sorted_runs` skips empty runs and splices disjoint sorted runs
    // into the same answer set.
    let from_runs = SortedPairs::from_sorted_runs(vec![
        vec![],
        vec![(0, 1), (2, 3)],
        vec![],
        vec![(5, 5), (9, 0)],
        vec![],
    ]);
    assert_eq!(from_runs, merged, "empty runs contribute nothing");

    // First and last element of the sorted order are both found; near
    // misses on either side are not.
    assert!(merged.contains(&(0, 1)), "first element");
    assert!(merged.contains(&(9, 0)), "last element");
    assert!(!merged.contains(&(0, 0)));
    assert!(!merged.contains(&(9, 1)));
    assert!(!merged.contains(&(4, 5)));
}
