//! Materialized views over a graph database and evaluation of rewritings over
//! view extensions.
//!
//! In the view-based setting of §4 the database is (conceptually) accessed
//! only through the extensions of the views `Q1, …, Qk`: each view, evaluated
//! over the database, yields a binary relation over nodes.  A rewriting of
//! the query over the view alphabet can then be evaluated *on the view
//! extensions alone*, by treating each materialized pair `(x, y)` of view
//! `q_i` as an edge `x --q_i--> y` of a derived "view graph".
//!
//! This module materializes view extensions and evaluates Σ_E-languages over
//! them — which is what makes a rewriting operationally useful, and what the
//! E10 experiment measures against direct evaluation.

use std::collections::BTreeMap;

use automata::{Alphabet, DenseNfa, Nfa};
use regexlang::Regex;

use crate::eval::{eval_automaton, eval_csr, eval_regex, query_nfa, Answer};
use crate::graph::GraphDb;

/// The materialized extensions of a set of named views over one database.
#[derive(Debug, Clone)]
pub struct MaterializedViews {
    /// The view alphabet (one symbol per view, in registration order).
    view_alphabet: Alphabet,
    /// Extension of each view, keyed by view symbol name.
    extensions: BTreeMap<String, Answer>,
    /// Number of nodes of the underlying database (the view graph reuses the
    /// node ids of the original database).
    num_nodes: usize,
}

impl MaterializedViews {
    /// Evaluates every view expression over the database and stores the
    /// resulting relations.
    pub fn materialize_regexes(db: &GraphDb, views: &[(String, Regex)]) -> Self {
        let view_alphabet = Alphabet::from_names(views.iter().map(|(name, _)| name.clone()))
            .expect("view names must be distinct");
        // One CSR freeze of the database shared by every view evaluation.
        let csr = db.csr_out();
        let extensions = views
            .iter()
            .map(|(name, expr)| {
                let nfa = query_nfa(db, expr);
                (name.clone(), eval_csr(&csr, &DenseNfa::from_nfa(&nfa)))
            })
            .collect();
        Self {
            view_alphabet,
            extensions,
            num_nodes: db.num_nodes(),
        }
    }

    /// Materializes views given as automata over the database domain.
    pub fn materialize_automata(db: &GraphDb, views: &[(String, Nfa)]) -> Self {
        let view_alphabet = Alphabet::from_names(views.iter().map(|(name, _)| name.clone()))
            .expect("view names must be distinct");
        let csr = db.csr_out();
        let extensions = views
            .iter()
            .map(|(name, nfa)| (name.clone(), eval_csr(&csr, &DenseNfa::from_nfa(nfa))))
            .collect();
        Self {
            view_alphabet,
            extensions,
            num_nodes: db.num_nodes(),
        }
    }

    /// The view alphabet Σ_E / Σ_Q.
    pub fn view_alphabet(&self) -> &Alphabet {
        &self.view_alphabet
    }

    /// The extension (set of node pairs) of a view.
    pub fn extension(&self, view: &str) -> Option<&Answer> {
        self.extensions.get(view)
    }

    /// Total number of materialized tuples across all views.
    pub fn total_tuples(&self) -> usize {
        self.extensions.values().map(Answer::len).sum()
    }

    /// Builds the *view graph*: a graph over the same node ids whose edges
    /// are the materialized view tuples, labeled by view symbols.
    pub fn view_graph(&self) -> GraphDb {
        let mut graph = GraphDb::new(self.view_alphabet.clone());
        for _ in 0..self.num_nodes {
            graph.add_node();
        }
        for (name, extension) in &self.extensions {
            let label = self
                .view_alphabet
                .symbol(name)
                .expect("extension keys come from the view alphabet");
            for &(x, y) in extension {
                graph.add_edge(x, label, y);
            }
        }
        graph
    }

    /// Evaluates a language over the view alphabet (e.g. a rewriting
    /// automaton) against the materialized extensions: the answer contains
    /// `(x, y)` iff some Σ_E-word `q_{i1} ⋯ q_{in}` of the language has a
    /// chain `x = z_0, …, z_n = y` with `(z_{j-1}, z_j)` in the extension of
    /// `q_{ij}`.
    pub fn eval_over_views(&self, over_views: &Nfa) -> Answer {
        eval_automaton(&self.view_graph(), over_views)
    }

    /// Evaluates a regex over the view symbols against the materialized
    /// extensions.
    pub fn eval_regex_over_views(&self, over_views: &Regex) -> Answer {
        eval_regex(&self.view_graph(), over_views)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regexlang::parse;

    fn chain_db() -> GraphDb {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
        db.add_edge_named("n0", "a", "n1");
        db.add_edge_named("n1", "b", "n2");
        db.add_edge_named("n2", "a", "n1");
        db.add_edge_named("n1", "c", "n1");
        db
    }

    fn figure1_views(db: &GraphDb) -> MaterializedViews {
        MaterializedViews::materialize_regexes(
            db,
            &[
                ("e1".to_string(), parse("a").unwrap()),
                ("e2".to_string(), parse("a·c*·b").unwrap()),
                ("e3".to_string(), parse("c").unwrap()),
            ],
        )
    }

    #[test]
    fn extensions_match_direct_evaluation() {
        let db = chain_db();
        let views = figure1_views(&db);
        assert_eq!(views.extension("e1"), Some(&crate::eval::eval_str(&db, "a")));
        assert_eq!(
            views.extension("e2"),
            Some(&crate::eval::eval_str(&db, "a·c*·b"))
        );
        assert!(views.extension("nope").is_none());
        assert_eq!(
            views.total_tuples(),
            views.extension("e1").unwrap().len()
                + views.extension("e2").unwrap().len()
                + views.extension("e3").unwrap().len()
        );
    }

    #[test]
    fn view_graph_has_one_edge_per_tuple() {
        let db = chain_db();
        let views = figure1_views(&db);
        let graph = views.view_graph();
        assert_eq!(graph.num_nodes(), db.num_nodes());
        assert_eq!(graph.num_edges(), views.total_tuples());
    }

    #[test]
    fn evaluating_the_exact_rewriting_over_views_matches_the_query() {
        // Figure 1: the rewriting e2*·e1·e3* is exact, so evaluating it over
        // the materialized views must return exactly ans(Q0, DB).
        let db = chain_db();
        let views = figure1_views(&db);
        let direct = crate::eval::eval_str(&db, "a·(b·a+c)*");
        let via_views = views.eval_regex_over_views(&parse("e2*·e1·e3*").unwrap());
        assert_eq!(direct, via_views);
    }

    #[test]
    fn evaluating_a_contained_rewriting_is_sound_but_incomplete() {
        // Without view e3 (= c), the maximal rewriting e2*·e1 only returns a
        // subset of the query answer.
        let db = chain_db();
        let views = figure1_views(&db);
        let direct = crate::eval::eval_str(&db, "a·(b·a+c)*");
        let partial = views.eval_regex_over_views(&parse("e2*·e1").unwrap());
        assert!(partial.is_subset(&direct));
        assert_eq!(partial, direct, "on this database the answers coincide");
    }

    #[test]
    fn automaton_materialization_matches_regex_materialization() {
        let db = chain_db();
        let regex_views = figure1_views(&db);
        let nfa_views = MaterializedViews::materialize_automata(
            &db,
            &[
                (
                    "e1".to_string(),
                    regexlang::thompson(&parse("a").unwrap(), db.domain()).unwrap(),
                ),
                (
                    "e2".to_string(),
                    regexlang::thompson(&parse("a·c*·b").unwrap(), db.domain()).unwrap(),
                ),
                (
                    "e3".to_string(),
                    regexlang::thompson(&parse("c").unwrap(), db.domain()).unwrap(),
                ),
            ],
        );
        for name in ["e1", "e2", "e3"] {
            assert_eq!(regex_views.extension(name), nfa_views.extension(name));
        }
    }
}
