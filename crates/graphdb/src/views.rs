//! Materialized views over a graph database and evaluation of rewritings over
//! view extensions.
//!
//! In the view-based setting of §4 the database is (conceptually) accessed
//! only through the extensions of the views `Q1, …, Qk`: each view, evaluated
//! over the database, yields a binary relation over nodes.  A rewriting of
//! the query over the view alphabet can then be evaluated *on the view
//! extensions alone*, by treating each materialized pair `(x, y)` of view
//! `q_i` as an edge `x --q_i--> y` of a derived "view graph".
//!
//! This module materializes view extensions and evaluates Σ_E-languages over
//! them — which is what makes a rewriting operationally useful, and what the
//! E10 experiment measures against direct evaluation.

use std::collections::BTreeMap;
use std::sync::Arc;

use automata::{Alphabet, DenseNfa, Nfa};
use regexlang::Regex;

use crate::eval::{eval_csr, query_nfa, Answer};
use crate::graph::{CsrAdjacency, GraphDb};

/// The materialized extensions of a set of named views over one database.
///
/// The *view graph* (one edge per materialized tuple, labeled by its view
/// symbol) is built once at materialization time and its frozen CSR is kept
/// alongside the extensions, so every [`eval_over_views`] call reuses the
/// same adjacency instead of rebuilding the graph per query.
///
/// Extensions are held behind `Arc`s ([`from_shared_extensions`]), so a
/// caller that already shares its answer sets across threads — the `engine`
/// crate's snapshot handoff — builds the view graph without deep-copying a
/// single tuple set.  The type is `Send + Sync`.
///
/// [`eval_over_views`]: MaterializedViews::eval_over_views
/// [`from_shared_extensions`]: MaterializedViews::from_shared_extensions
#[derive(Debug, Clone)]
pub struct MaterializedViews {
    /// The view alphabet (one symbol per view, in registration order).
    view_alphabet: Alphabet,
    /// Extension of each view, keyed by view symbol name; shared (not
    /// copied) with callers handing extensions in via
    /// [`from_shared_extensions`](Self::from_shared_extensions).
    extensions: BTreeMap<String, Arc<Answer>>,
    /// Number of nodes of the underlying database (the view graph reuses the
    /// node ids of the original database).
    num_nodes: usize,
    /// The view graph, built once from the extensions.
    view_graph: GraphDb,
    /// Frozen outgoing adjacency of `view_graph`, shared by every
    /// `eval_over_views` call.
    view_csr: CsrAdjacency,
}

impl MaterializedViews {
    /// Evaluates every view expression over the database and stores the
    /// resulting relations.
    pub fn materialize_regexes(db: &GraphDb, views: &[(String, Regex)]) -> Self {
        let view_alphabet = Alphabet::from_names(views.iter().map(|(name, _)| name.clone()))
            .expect("view names must be distinct");
        // One CSR freeze of the database shared by every view evaluation.
        let csr = db.csr_out();
        let extensions = views
            .iter()
            .map(|(name, expr)| {
                let nfa = query_nfa(db, expr);
                (name.clone(), eval_csr(&csr, &DenseNfa::from_nfa(&nfa)))
            })
            .collect();
        Self::from_extensions(view_alphabet, extensions, db.num_nodes())
    }

    /// Materializes views given as automata over the database domain.
    pub fn materialize_automata(db: &GraphDb, views: &[(String, Nfa)]) -> Self {
        let view_alphabet = Alphabet::from_names(views.iter().map(|(name, _)| name.clone()))
            .expect("view names must be distinct");
        let csr = db.csr_out();
        let extensions = views
            .iter()
            .map(|(name, nfa)| (name.clone(), eval_csr(&csr, &DenseNfa::from_nfa(nfa))))
            .collect();
        Self::from_extensions(view_alphabet, extensions, db.num_nodes())
    }

    /// Builds materialized views directly from already-computed extensions.
    ///
    /// # Panics
    /// Panics if an extension key is not a symbol of `view_alphabet` or a
    /// tuple mentions a node id `≥ num_nodes`.
    pub fn from_extensions(
        view_alphabet: Alphabet,
        extensions: BTreeMap<String, Answer>,
        num_nodes: usize,
    ) -> Self {
        Self::from_shared_extensions(
            view_alphabet,
            extensions.into_iter().map(|(name, ext)| (name, Arc::new(ext))).collect(),
            num_nodes,
        )
    }

    /// Like [`from_extensions`](Self::from_extensions) but adopting shared
    /// answer sets as-is — the handoff the `engine` crate's snapshots use:
    /// extensions materialized (and incrementally maintained) by the engine
    /// are exposed for Σ_E-evaluation without copying any tuples.
    ///
    /// # Panics
    /// Panics if an extension key is not a symbol of `view_alphabet` or a
    /// tuple mentions a node id `≥ num_nodes`.
    pub fn from_shared_extensions(
        view_alphabet: Alphabet,
        extensions: BTreeMap<String, Arc<Answer>>,
        num_nodes: usize,
    ) -> Self {
        let mut view_graph = GraphDb::new(view_alphabet.clone());
        for _ in 0..num_nodes {
            view_graph.add_node();
        }
        for (name, extension) in &extensions {
            let label = view_alphabet
                .symbol(name)
                .expect("extension keys come from the view alphabet");
            for &(x, y) in extension.iter() {
                view_graph.add_edge(x, label, y);
            }
        }
        let view_csr = view_graph.csr_out();
        Self {
            view_alphabet,
            extensions,
            num_nodes,
            view_graph,
            view_csr,
        }
    }

    /// The view alphabet Σ_E / Σ_Q.
    pub fn view_alphabet(&self) -> &Alphabet {
        &self.view_alphabet
    }

    /// The extension (set of node pairs) of a view.
    pub fn extension(&self, view: &str) -> Option<&Answer> {
        self.extensions.get(view).map(Arc::as_ref)
    }

    /// Total number of materialized tuples across all views.
    pub fn total_tuples(&self) -> usize {
        self.extensions.values().map(|ext| ext.len()).sum()
    }

    /// Number of nodes of the underlying database.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The *view graph*: a graph over the same node ids whose edges are the
    /// materialized view tuples, labeled by view symbols.  Built once at
    /// materialization time.
    pub fn view_graph(&self) -> &GraphDb {
        &self.view_graph
    }

    /// The frozen CSR adjacency of the view graph (shared by every
    /// evaluation over the views).
    pub fn view_csr(&self) -> &CsrAdjacency {
        &self.view_csr
    }

    /// Evaluates a language over the view alphabet (e.g. a rewriting
    /// automaton) against the materialized extensions: the answer contains
    /// `(x, y)` iff some Σ_E-word `q_{i1} ⋯ q_{in}` of the language has a
    /// chain `x = z_0, …, z_n = y` with `(z_{j-1}, z_j)` in the extension of
    /// `q_{ij}`.
    pub fn eval_over_views(&self, over_views: &Nfa) -> Answer {
        self.eval_dense_over_views(&DenseNfa::from_nfa(over_views))
    }

    /// Like [`eval_over_views`](Self::eval_over_views) but over an
    /// already-frozen automaton, so callers holding a compile cache (the
    /// `engine` crate) skip the freezing step too.
    pub fn eval_dense_over_views(&self, over_views: &DenseNfa) -> Answer {
        eval_csr(&self.view_csr, over_views)
    }

    /// Evaluates a regex over the view symbols against the materialized
    /// extensions.
    pub fn eval_regex_over_views(&self, over_views: &Regex) -> Answer {
        self.eval_over_views(&query_nfa(&self.view_graph, over_views))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regexlang::parse;

    fn chain_db() -> GraphDb {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
        db.add_edge_named("n0", "a", "n1");
        db.add_edge_named("n1", "b", "n2");
        db.add_edge_named("n2", "a", "n1");
        db.add_edge_named("n1", "c", "n1");
        db
    }

    fn figure1_views(db: &GraphDb) -> MaterializedViews {
        MaterializedViews::materialize_regexes(
            db,
            &[
                ("e1".to_string(), parse("a").unwrap()),
                ("e2".to_string(), parse("a·c*·b").unwrap()),
                ("e3".to_string(), parse("c").unwrap()),
            ],
        )
    }

    #[test]
    fn extensions_match_direct_evaluation() {
        let db = chain_db();
        let views = figure1_views(&db);
        assert_eq!(views.extension("e1"), Some(&crate::eval::eval_str(&db, "a")));
        assert_eq!(
            views.extension("e2"),
            Some(&crate::eval::eval_str(&db, "a·c*·b"))
        );
        assert!(views.extension("nope").is_none());
        assert_eq!(
            views.total_tuples(),
            views.extension("e1").unwrap().len()
                + views.extension("e2").unwrap().len()
                + views.extension("e3").unwrap().len()
        );
    }

    #[test]
    fn view_graph_has_one_edge_per_tuple() {
        let db = chain_db();
        let views = figure1_views(&db);
        let graph = views.view_graph();
        assert_eq!(graph.num_nodes(), db.num_nodes());
        assert_eq!(graph.num_edges(), views.total_tuples());
    }

    #[test]
    fn from_extensions_round_trips_and_freezes_once() {
        let db = chain_db();
        let views = figure1_views(&db);
        let rebuilt = MaterializedViews::from_extensions(
            views.view_alphabet().clone(),
            ["e1", "e2", "e3"]
                .into_iter()
                .map(|n| (n.to_string(), views.extension(n).unwrap().clone()))
                .collect(),
            db.num_nodes(),
        );
        assert_eq!(rebuilt.total_tuples(), views.total_tuples());
        assert_eq!(rebuilt.view_csr().num_nodes(), db.num_nodes());
        let q = parse("e2*·e1·e3*").unwrap();
        assert_eq!(
            rebuilt.eval_regex_over_views(&q),
            views.eval_regex_over_views(&q)
        );
    }

    #[test]
    fn evaluating_the_exact_rewriting_over_views_matches_the_query() {
        // Figure 1: the rewriting e2*·e1·e3* is exact, so evaluating it over
        // the materialized views must return exactly ans(Q0, DB).
        let db = chain_db();
        let views = figure1_views(&db);
        let direct = crate::eval::eval_str(&db, "a·(b·a+c)*");
        let via_views = views.eval_regex_over_views(&parse("e2*·e1·e3*").unwrap());
        assert_eq!(direct, via_views);
    }

    #[test]
    fn evaluating_a_contained_rewriting_is_sound_but_incomplete() {
        // Without view e3 (= c), the maximal rewriting e2*·e1 only returns a
        // subset of the query answer.
        let db = chain_db();
        let views = figure1_views(&db);
        let direct = crate::eval::eval_str(&db, "a·(b·a+c)*");
        let partial = views.eval_regex_over_views(&parse("e2*·e1").unwrap());
        assert!(partial.is_subset(&direct));
        assert_eq!(partial, direct, "on this database the answers coincide");
    }

    #[test]
    fn automaton_materialization_matches_regex_materialization() {
        let db = chain_db();
        let regex_views = figure1_views(&db);
        let nfa_views = MaterializedViews::materialize_automata(
            &db,
            &[
                (
                    "e1".to_string(),
                    regexlang::thompson(&parse("a").unwrap(), db.domain()).unwrap(),
                ),
                (
                    "e2".to_string(),
                    regexlang::thompson(&parse("a·c*·b").unwrap(), db.domain()).unwrap(),
                ),
                (
                    "e3".to_string(),
                    regexlang::thompson(&parse("c").unwrap(), db.domain()).unwrap(),
                ),
            ],
        );
        for name in ["e1", "e2", "e3"] {
            assert_eq!(regex_views.extension(name), nfa_views.extension(name));
        }
    }
}
