//! Formulae and theories over the edge-label domain (§4.1 of the paper).
//!
//! In the second semi-structured data model the paper considers (after
//! \[BDFS97\]), queries are not written over the edge labels themselves but
//! over *formulae with one free variable* of a decidable, complete
//! first-order theory `T` over the finite domain `D`.  The theory contains
//! one unary predicate `λz.z=a` for every constant `a` (written simply `a`),
//! plus arbitrary further unary predicates.
//!
//! Because `D` is finite and `T` is complete, entailment `T ⊨ φ(a)` is simply
//! evaluation of `φ` at `a` under the predicate interpretations; this module
//! implements exactly that, which is all the rewriting algorithm of §4.2
//! needs (the paper treats the cost of each such check as constant).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use automata::{Alphabet, Symbol};

/// A unary formula `φ(z)` over the edge-label domain.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// `⊤` — true of every constant.
    True,
    /// `⊥` — true of no constant.
    False,
    /// `λz.z = a` — the *elementary* predicate of the constant `a`.
    Equals(String),
    /// A named unary predicate of the theory (e.g. `EuropeanCity`).
    Pred(String),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
}

impl Formula {
    /// The elementary predicate `λz.z = a`.
    pub fn equals(a: impl Into<String>) -> Formula {
        Formula::Equals(a.into())
    }

    /// A named predicate.
    pub fn pred(p: impl Into<String>) -> Formula {
        Formula::Pred(p.into())
    }

    /// Negation.
    pub fn negate(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction of two formulae.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(vec![self, other])
    }

    /// Disjunction of two formulae.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(vec![self, other])
    }

    /// A stable, readable name for the formula, usable as a symbol of the
    /// formula alphabet `F` (all algorithms in `rpq` address formulae by this
    /// name).
    pub fn name(&self) -> String {
        match self {
            Formula::True => "⊤".to_string(),
            Formula::False => "⊥".to_string(),
            Formula::Equals(a) => a.clone(),
            Formula::Pred(p) => p.clone(),
            Formula::Not(inner) => format!("¬{}", inner.name()),
            Formula::And(parts) => format!(
                "({})",
                parts.iter().map(Formula::name).collect::<Vec<_>>().join("∧")
            ),
            Formula::Or(parts) => format!(
                "({})",
                parts.iter().map(Formula::name).collect::<Vec<_>>().join("∨")
            ),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A decidable, complete theory over a finite label domain: every named
/// predicate is interpreted as the set of constants satisfying it.
#[derive(Debug, Clone)]
pub struct Theory {
    domain: Alphabet,
    predicates: BTreeMap<String, BTreeSet<String>>,
}

impl Theory {
    /// A theory with no named predicates (only elementary `z=a` predicates
    /// and boolean combinations are available).
    pub fn elementary(domain: Alphabet) -> Self {
        Self {
            domain,
            predicates: BTreeMap::new(),
        }
    }

    /// Creates a theory interpreting each named predicate by the listed
    /// constants.
    ///
    /// # Panics
    /// Panics if an interpretation mentions a constant outside the domain.
    pub fn new(
        domain: Alphabet,
        predicates: impl IntoIterator<Item = (String, Vec<String>)>,
    ) -> Self {
        let mut map = BTreeMap::new();
        for (name, constants) in predicates {
            for c in &constants {
                assert!(
                    domain.symbol(c).is_some(),
                    "predicate `{name}` mentions `{c}` which is not in the domain {}",
                    domain.render()
                );
            }
            map.insert(name, constants.into_iter().collect());
        }
        Self {
            domain,
            predicates: map,
        }
    }

    /// The label domain `D`.
    pub fn domain(&self) -> &Alphabet {
        &self.domain
    }

    /// Names of the declared predicates.
    pub fn predicate_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.predicates.keys().map(String::as_str)
    }

    /// Whether `T ⊨ φ(a)` for the constant named `constant`.
    pub fn entails(&self, formula: &Formula, constant: &str) -> bool {
        match formula {
            Formula::True => true,
            Formula::False => false,
            Formula::Equals(a) => a == constant,
            Formula::Pred(p) => self
                .predicates
                .get(p)
                .map(|set| set.contains(constant))
                .unwrap_or(false),
            Formula::Not(inner) => !self.entails(inner, constant),
            Formula::And(parts) => parts.iter().all(|f| self.entails(f, constant)),
            Formula::Or(parts) => parts.iter().any(|f| self.entails(f, constant)),
        }
    }

    /// Whether `T ⊨ φ(a)` for a domain symbol.
    pub fn entails_symbol(&self, formula: &Formula, constant: Symbol) -> bool {
        self.entails(formula, self.domain.name(constant))
    }

    /// The set of constants satisfying `φ` — the grounding used by the `Q*`
    /// construction of §4.2.
    pub fn satisfying_constants(&self, formula: &Formula) -> Vec<String> {
        self.domain
            .names()
            .filter(|c| self.entails(formula, c))
            .map(str::to_string)
            .collect()
    }

    /// Whether a D-word matches an F-word (Definition 4.1): same length and
    /// `T ⊨ φ_i(a_i)` position-wise.
    pub fn word_matches(&self, labels: &[Symbol], formulas: &[&Formula]) -> bool {
        labels.len() == formulas.len()
            && labels
                .iter()
                .zip(formulas)
                .all(|(&a, f)| self.entails_symbol(f, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn travel_domain() -> Alphabet {
        Alphabet::from_names(["rome", "jerusalem", "paris", "restaurant"]).unwrap()
    }

    fn travel_theory() -> Theory {
        Theory::new(
            travel_domain(),
            [
                (
                    "City".to_string(),
                    vec!["rome".to_string(), "jerusalem".to_string(), "paris".to_string()],
                ),
                (
                    "EuropeanCity".to_string(),
                    vec!["rome".to_string(), "paris".to_string()],
                ),
            ],
        )
    }

    #[test]
    fn elementary_predicates_are_equality() {
        let t = Theory::elementary(travel_domain());
        assert!(t.entails(&Formula::equals("rome"), "rome"));
        assert!(!t.entails(&Formula::equals("rome"), "paris"));
        assert_eq!(t.satisfying_constants(&Formula::equals("rome")), vec!["rome"]);
    }

    #[test]
    fn named_predicates_follow_their_interpretation() {
        let t = travel_theory();
        assert!(t.entails(&Formula::pred("City"), "rome"));
        assert!(!t.entails(&Formula::pred("City"), "restaurant"));
        assert!(t.entails(&Formula::pred("EuropeanCity"), "paris"));
        assert!(!t.entails(&Formula::pred("EuropeanCity"), "jerusalem"));
        // Undeclared predicates hold of nothing.
        assert!(!t.entails(&Formula::pred("Unknown"), "rome"));
        assert_eq!(t.predicate_names().count(), 2);
    }

    #[test]
    fn boolean_connectives() {
        let t = travel_theory();
        let non_european_city = Formula::pred("City").and(Formula::pred("EuropeanCity").negate());
        assert!(t.entails(&non_european_city, "jerusalem"));
        assert!(!t.entails(&non_european_city, "rome"));
        assert!(!t.entails(&non_european_city, "restaurant"));
        let rome_or_paris = Formula::equals("rome").or(Formula::equals("paris"));
        assert_eq!(t.satisfying_constants(&rome_or_paris), vec!["rome", "paris"]);
        assert!(t.entails(&Formula::True, "restaurant"));
        assert!(!t.entails(&Formula::False, "restaurant"));
    }

    #[test]
    fn implication_example_from_section_4_2() {
        // The paper's example: T ⊨ ∀x. A(x) → B(x), query B, view A.
        // With sets, A ⊆ B realizes the implication.
        let domain = Alphabet::from_names(["a1", "a2", "b_only"]).unwrap();
        let theory = Theory::new(
            domain,
            [
                ("A".to_string(), vec!["a1".to_string(), "a2".to_string()]),
                (
                    "B".to_string(),
                    vec!["a1".to_string(), "a2".to_string(), "b_only".to_string()],
                ),
            ],
        );
        for c in ["a1", "a2"] {
            assert!(theory.entails(&Formula::pred("A"), c));
            assert!(theory.entails(&Formula::pred("B"), c));
        }
        assert!(theory.entails(&Formula::pred("B"), "b_only"));
        assert!(!theory.entails(&Formula::pred("A"), "b_only"));
    }

    #[test]
    fn word_matching() {
        let t = travel_theory();
        let d = t.domain().clone();
        let labels = d.word(&["rome", "restaurant"]).unwrap();
        let city = Formula::pred("City");
        let anything = Formula::True;
        assert!(t.word_matches(&labels, &[&city, &anything]));
        assert!(!t.word_matches(&labels, &[&anything, &city]));
        assert!(!t.word_matches(&labels, &[&anything]));
    }

    #[test]
    fn formula_names_are_stable() {
        assert_eq!(Formula::equals("rome").name(), "rome");
        assert_eq!(Formula::pred("City").name(), "City");
        assert_eq!(Formula::pred("City").negate().name(), "¬City");
        assert_eq!(
            Formula::pred("A").and(Formula::pred("B")).name(),
            "(A∧B)"
        );
        assert_eq!(Formula::pred("A").or(Formula::pred("B")).to_string(), "(A∨B)");
    }

    #[test]
    #[should_panic(expected = "not in the domain")]
    fn interpretations_must_use_domain_constants() {
        Theory::new(
            travel_domain(),
            [("P".to_string(), vec!["mars".to_string()])],
        );
    }
}
