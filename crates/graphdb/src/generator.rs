//! Seeded graph-database generators for tests and benchmarks.
//!
//! The paper motivates regular path queries with web sites, digital libraries
//! and data-integration graphs; the generators here produce synthetic
//! databases with those shapes so experiments E9/E10 can sweep over database
//! size and label selectivity reproducibly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use automata::Alphabet;

use crate::graph::GraphDb;

/// Parameters for the uniform random graph generator.
#[derive(Debug, Clone)]
pub struct RandomGraphConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of edges (drawn uniformly: random source, target and label).
    pub num_edges: usize,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        Self {
            num_nodes: 50,
            num_edges: 150,
        }
    }
}

/// Generates a uniform random edge-labeled graph.
pub fn random_graph(domain: &Alphabet, config: &RandomGraphConfig, seed: u64) -> GraphDb {
    assert!(!domain.is_empty(), "label domain must be nonempty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new(domain.clone());
    for _ in 0..config.num_nodes.max(1) {
        db.add_node();
    }
    let n = db.num_nodes();
    for _ in 0..config.num_edges {
        let from = rng.gen_range(0..n);
        let to = rng.gen_range(0..n);
        let label = automata::Symbol(rng.gen_range(0..domain.len()) as u32);
        db.add_edge(from, label, to);
    }
    db
}

/// Integer-arithmetic Zipf sampler over `n` ranks: rank `k` (0-based) is
/// drawn with probability proportional to `1 / (k+1)^exponent`.
///
/// Exponent 0 degenerates to the uniform distribution.  The cumulative
/// weights are pre-scaled to `u64` ticks so sampling is one `gen_range` plus
/// a binary search — no floating-point RNG support needed.
struct ZipfSampler {
    cumulative: Vec<u64>,
}

impl ZipfSampler {
    fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs at least one rank");
        assert!(exponent >= 0.0, "Zipf exponent must be nonnegative");
        const SCALE: f64 = 1e9;
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0u64;
        for k in 0..n {
            let weight = SCALE / ((k + 1) as f64).powf(exponent);
            total += (weight as u64).max(1);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("nonempty");
        let tick = rng.gen_range(0..total);
        self.cumulative.partition_point(|&c| c <= tick)
    }
}

/// Parameters for the power-law (preferential-attachment) generator.
#[derive(Debug, Clone)]
pub struct PowerLawGraphConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Zipf exponent of the label distribution: 0 is uniform, ~1 gives the
    /// skew real-world label frequencies show (a few hot labels, a long
    /// rare tail).
    pub label_exponent: f64,
}

impl Default for PowerLawGraphConfig {
    fn default() -> Self {
        Self {
            num_nodes: 50,
            num_edges: 200,
            label_exponent: 1.0,
        }
    }
}

/// Generates a scale-free edge-labeled graph by preferential attachment:
/// both endpoints of each edge are drawn from a repeated-endpoints urn (each
/// node seeded once, both endpoints of every placed edge re-added), so
/// high-degree nodes keep attracting edges and the degree distribution grows
/// a power-law tail — the shape web graphs and citation networks show, and
/// the worst case for fixed-size parallel chunking.  Labels are Zipfian per
/// [`PowerLawGraphConfig::label_exponent`].
pub fn power_law_graph(domain: &Alphabet, config: &PowerLawGraphConfig, seed: u64) -> GraphDb {
    assert!(!domain.is_empty(), "label domain must be nonempty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new(domain.clone());
    for _ in 0..config.num_nodes.max(1) {
        db.add_node();
    }
    let n = db.num_nodes();
    let labels = ZipfSampler::new(domain.len(), config.label_exponent);
    // The urn: every node once (so isolated nodes stay reachable), then both
    // endpoints of each placed edge.
    let mut endpoints: Vec<usize> = (0..n).collect();
    endpoints.reserve(2 * config.num_edges);
    for _ in 0..config.num_edges {
        let from = endpoints[rng.gen_range(0..endpoints.len())];
        let to = endpoints[rng.gen_range(0..endpoints.len())];
        let label = automata::Symbol(labels.sample(&mut rng) as u32);
        db.add_edge(from, label, to);
        endpoints.push(from);
        endpoints.push(to);
    }
    db
}

/// Parameters for the community (blocked) generator.
#[derive(Debug, Clone)]
pub struct CommunityGraphConfig {
    /// Number of communities (blocks).
    pub num_communities: usize,
    /// Nodes per community.
    pub community_size: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Probability that an edge stays inside its source's community.
    pub intra_fraction: f64,
}

impl Default for CommunityGraphConfig {
    fn default() -> Self {
        Self {
            num_communities: 5,
            community_size: 10,
            num_edges: 200,
            intra_fraction: 0.9,
        }
    }
}

/// Generates a community-structured graph: `num_communities` blocks of
/// `community_size` nodes, with each edge staying inside its source's block
/// with probability [`CommunityGraphConfig::intra_fraction`] and crossing to
/// a uniformly random *other* block otherwise.  Dense blocks with sparse
/// bridges localize BFS frontiers, the favorable case for per-chunk cache
/// locality.
pub fn community_graph(domain: &Alphabet, config: &CommunityGraphConfig, seed: u64) -> GraphDb {
    assert!(!domain.is_empty(), "label domain must be nonempty");
    assert!(
        (0.0..=1.0).contains(&config.intra_fraction),
        "intra_fraction must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new(domain.clone());
    let communities = config.num_communities.max(1);
    let size = config.community_size.max(1);
    for _ in 0..communities * size {
        db.add_node();
    }
    for _ in 0..config.num_edges {
        let home = rng.gen_range(0..communities);
        let from = home * size + rng.gen_range(0..size);
        let target_community = if communities > 1 && !rng.gen_bool(config.intra_fraction) {
            // A uniformly random community other than `home`.
            let hop = rng.gen_range(1..communities);
            (home + hop) % communities
        } else {
            home
        };
        let to = target_community * size + rng.gen_range(0..size);
        let label = automata::Symbol(rng.gen_range(0..domain.len()) as u32);
        db.add_edge(from, label, to);
    }
    db
}

/// Generates a rooted tree-shaped database (every non-root node has exactly
/// one parent), mimicking a web-site or document hierarchy.
pub fn tree_graph(domain: &Alphabet, num_nodes: usize, seed: u64) -> GraphDb {
    assert!(!domain.is_empty(), "label domain must be nonempty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new(domain.clone());
    db.add_node(); // root
    for v in 1..num_nodes.max(1) {
        db.add_node();
        let parent = rng.gen_range(0..v);
        let label = automata::Symbol(rng.gen_range(0..domain.len()) as u32);
        db.add_edge(parent, label, v);
    }
    db
}

/// Generates a layered "pipeline" database: `layers` layers of `width` nodes,
/// with every node of layer `i` connected to a few random nodes of layer
/// `i+1`.  This shape produces long paths, which stresses queries with
/// transitive closure.
pub fn layered_graph(
    domain: &Alphabet,
    layers: usize,
    width: usize,
    out_degree: usize,
    seed: u64,
) -> GraphDb {
    assert!(!domain.is_empty(), "label domain must be nonempty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new(domain.clone());
    let layers = layers.max(1);
    let width = width.max(1);
    for _ in 0..layers * width {
        db.add_node();
    }
    for layer in 0..layers - 1 {
        for i in 0..width {
            let from = layer * width + i;
            for _ in 0..out_degree.max(1) {
                let to = (layer + 1) * width + rng.gen_range(0..width);
                let label = automata::Symbol(rng.gen_range(0..domain.len()) as u32);
                db.add_edge(from, label, to);
            }
        }
    }
    db
}

/// Generates a small travel-style database in the spirit of the paper's
/// introduction: cities connected by `flight` edges, with `rome`/`jerusalem`
/// landmark edges and `restaurant` edges hanging off cities.  Deterministic
/// for a given size.
pub fn travel_graph(num_cities: usize) -> GraphDb {
    let domain = Alphabet::from_names(["rome", "jerusalem", "flight", "restaurant", "museum"])
        .expect("fixed names are distinct");
    let mut db = GraphDb::new(domain);
    let hub = db.node("hub");
    for i in 0..num_cities.max(1) {
        let city = db.node(&format!("city{i}"));
        // Alternate landmark labels.
        let landmark = if i % 2 == 0 { "rome" } else { "jerusalem" };
        let landmark = db.domain().symbol(landmark).unwrap();
        db.add_edge(hub, landmark, city);
        let flight = db.domain().symbol("flight").unwrap();
        if i > 0 {
            let prev = db.node(&format!("city{}", i - 1));
            db.add_edge(prev, flight, city);
        }
        let restaurant = db.domain().symbol("restaurant").unwrap();
        let place = db.node(&format!("restaurant{i}"));
        db.add_edge(city, restaurant, place);
        if i % 3 == 0 {
            let museum = db.domain().symbol("museum").unwrap();
            let m = db.node(&format!("museum{i}"));
            db.add_edge(city, museum, m);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_str;

    fn abc() -> Alphabet {
        Alphabet::from_chars(['a', 'b', 'c']).unwrap()
    }

    #[test]
    fn random_graph_is_reproducible_and_sized() {
        let cfg = RandomGraphConfig {
            num_nodes: 30,
            num_edges: 90,
        };
        let g1 = random_graph(&abc(), &cfg, 5);
        let g2 = random_graph(&abc(), &cfg, 5);
        assert_eq!(g1.num_nodes(), 30);
        assert_eq!(g1.num_edges(), 90);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        let g3 = random_graph(&abc(), &cfg, 6);
        assert_ne!(
            g1.edges().collect::<Vec<_>>(),
            g3.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn power_law_graph_is_deterministic_and_sized() {
        let cfg = PowerLawGraphConfig {
            num_nodes: 200,
            num_edges: 800,
            label_exponent: 1.1,
        };
        let g1 = power_law_graph(&abc(), &cfg, 7);
        let g2 = power_law_graph(&abc(), &cfg, 7);
        assert_eq!(g1.num_nodes(), 200);
        assert_eq!(g1.num_edges(), 800);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        let g3 = power_law_graph(&abc(), &cfg, 8);
        assert_ne!(
            g1.edges().collect::<Vec<_>>(),
            g3.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn power_law_max_degree_dwarfs_uniform_at_equal_edge_count() {
        let (nodes, edges) = (2000usize, 8000usize);
        let uniform = random_graph(
            &abc(),
            &RandomGraphConfig {
                num_nodes: nodes,
                num_edges: edges,
            },
            21,
        );
        let power = power_law_graph(
            &abc(),
            &PowerLawGraphConfig {
                num_nodes: nodes,
                num_edges: edges,
                label_exponent: 1.0,
            },
            21,
        );
        let max_total_degree = |g: &GraphDb| {
            let mut degree = vec![0u32; g.num_nodes()];
            for e in g.edges() {
                degree[e.from] += 1;
                degree[e.to] += 1;
            }
            degree.into_iter().max().unwrap_or(0)
        };
        let u = max_total_degree(&uniform);
        let p = max_total_degree(&power);
        assert!(
            p >= 3 * u,
            "preferential attachment must grow hubs: power-law max {p} vs uniform max {u}"
        );
    }

    #[test]
    fn zipf_labels_skew_toward_the_first_rank() {
        let cfg = PowerLawGraphConfig {
            num_nodes: 500,
            num_edges: 6000,
            label_exponent: 1.2,
        };
        let g = power_law_graph(&abc(), &cfg, 3);
        let mut counts = vec![0usize; 3];
        for e in g.edges() {
            counts[e.label.0 as usize] += 1;
        }
        assert!(
            counts[0] > 2 * counts[2],
            "rank-0 label must dominate the tail: {counts:?}"
        );
        assert_eq!(counts.iter().sum::<usize>(), 6000);
    }

    #[test]
    fn community_graph_is_deterministic_and_mostly_intra() {
        let cfg = CommunityGraphConfig {
            num_communities: 8,
            community_size: 25,
            num_edges: 2000,
            intra_fraction: 0.9,
        };
        let g1 = community_graph(&abc(), &cfg, 5);
        let g2 = community_graph(&abc(), &cfg, 5);
        assert_eq!(g1.num_nodes(), 200);
        assert_eq!(g1.num_edges(), 2000);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        let intra = g1
            .edges()
            .filter(|e| e.from / 25 == e.to / 25)
            .count();
        // 90% nominal; leave generous slack for sampling noise.
        assert!(
            intra as f64 >= 0.8 * 2000.0,
            "expected mostly intra-community edges, got {intra}/2000"
        );
        assert!(intra < 2000, "some edges must cross communities");
    }

    #[test]
    fn tree_graph_has_n_minus_one_edges() {
        let tree = tree_graph(&abc(), 40, 3);
        assert_eq!(tree.num_nodes(), 40);
        assert_eq!(tree.num_edges(), 39);
        // Every non-root node has exactly one incoming edge.
        for v in 1..tree.num_nodes() {
            assert_eq!(tree.edges_to(v).count(), 1);
        }
        assert_eq!(tree.edges_to(0).count(), 0);
    }

    #[test]
    fn layered_graph_only_connects_adjacent_layers() {
        let g = layered_graph(&abc(), 4, 5, 2, 9);
        assert_eq!(g.num_nodes(), 20);
        for e in g.edges() {
            let from_layer = e.from / 5;
            let to_layer = e.to / 5;
            assert_eq!(to_layer, from_layer + 1);
        }
    }

    #[test]
    fn travel_graph_answers_the_intro_query() {
        // The introduction's query: (Σ* · (rome+jerusalem) · Σ* · restaurant)
        // — here specialized to  (rome+jerusalem)·flight*·restaurant.
        let db = travel_graph(6);
        let answer = eval_str(&db, "(rome+jerusalem)·flight*·restaurant");
        assert!(!answer.is_empty());
        let hub = db.node_by_name("hub").unwrap();
        // All answers start at the hub (the only node with landmark edges).
        assert!(answer.iter().all(|&(x, _)| x == hub));
        // Every restaurant of a reachable city is found.
        let r0 = db.node_by_name("restaurant0").unwrap();
        assert!(answer.contains(&(hub, r0)));
    }
}
