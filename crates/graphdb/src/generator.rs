//! Seeded graph-database generators for tests and benchmarks.
//!
//! The paper motivates regular path queries with web sites, digital libraries
//! and data-integration graphs; the generators here produce synthetic
//! databases with those shapes so experiments E9/E10 can sweep over database
//! size and label selectivity reproducibly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use automata::Alphabet;

use crate::graph::GraphDb;

/// Parameters for the uniform random graph generator.
#[derive(Debug, Clone)]
pub struct RandomGraphConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of edges (drawn uniformly: random source, target and label).
    pub num_edges: usize,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        Self {
            num_nodes: 50,
            num_edges: 150,
        }
    }
}

/// Generates a uniform random edge-labeled graph.
pub fn random_graph(domain: &Alphabet, config: &RandomGraphConfig, seed: u64) -> GraphDb {
    assert!(!domain.is_empty(), "label domain must be nonempty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new(domain.clone());
    for _ in 0..config.num_nodes.max(1) {
        db.add_node();
    }
    let n = db.num_nodes();
    for _ in 0..config.num_edges {
        let from = rng.gen_range(0..n);
        let to = rng.gen_range(0..n);
        let label = automata::Symbol(rng.gen_range(0..domain.len()) as u32);
        db.add_edge(from, label, to);
    }
    db
}

/// Generates a rooted tree-shaped database (every non-root node has exactly
/// one parent), mimicking a web-site or document hierarchy.
pub fn tree_graph(domain: &Alphabet, num_nodes: usize, seed: u64) -> GraphDb {
    assert!(!domain.is_empty(), "label domain must be nonempty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new(domain.clone());
    db.add_node(); // root
    for v in 1..num_nodes.max(1) {
        db.add_node();
        let parent = rng.gen_range(0..v);
        let label = automata::Symbol(rng.gen_range(0..domain.len()) as u32);
        db.add_edge(parent, label, v);
    }
    db
}

/// Generates a layered "pipeline" database: `layers` layers of `width` nodes,
/// with every node of layer `i` connected to a few random nodes of layer
/// `i+1`.  This shape produces long paths, which stresses queries with
/// transitive closure.
pub fn layered_graph(
    domain: &Alphabet,
    layers: usize,
    width: usize,
    out_degree: usize,
    seed: u64,
) -> GraphDb {
    assert!(!domain.is_empty(), "label domain must be nonempty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new(domain.clone());
    let layers = layers.max(1);
    let width = width.max(1);
    for _ in 0..layers * width {
        db.add_node();
    }
    for layer in 0..layers - 1 {
        for i in 0..width {
            let from = layer * width + i;
            for _ in 0..out_degree.max(1) {
                let to = (layer + 1) * width + rng.gen_range(0..width);
                let label = automata::Symbol(rng.gen_range(0..domain.len()) as u32);
                db.add_edge(from, label, to);
            }
        }
    }
    db
}

/// Generates a small travel-style database in the spirit of the paper's
/// introduction: cities connected by `flight` edges, with `rome`/`jerusalem`
/// landmark edges and `restaurant` edges hanging off cities.  Deterministic
/// for a given size.
pub fn travel_graph(num_cities: usize) -> GraphDb {
    let domain = Alphabet::from_names(["rome", "jerusalem", "flight", "restaurant", "museum"])
        .expect("fixed names are distinct");
    let mut db = GraphDb::new(domain);
    let hub = db.node("hub");
    for i in 0..num_cities.max(1) {
        let city = db.node(&format!("city{i}"));
        // Alternate landmark labels.
        let landmark = if i % 2 == 0 { "rome" } else { "jerusalem" };
        let landmark = db.domain().symbol(landmark).unwrap();
        db.add_edge(hub, landmark, city);
        let flight = db.domain().symbol("flight").unwrap();
        if i > 0 {
            let prev = db.node(&format!("city{}", i - 1));
            db.add_edge(prev, flight, city);
        }
        let restaurant = db.domain().symbol("restaurant").unwrap();
        let place = db.node(&format!("restaurant{i}"));
        db.add_edge(city, restaurant, place);
        if i % 3 == 0 {
            let museum = db.domain().symbol("museum").unwrap();
            let m = db.node(&format!("museum{i}"));
            db.add_edge(city, museum, m);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_str;

    fn abc() -> Alphabet {
        Alphabet::from_chars(['a', 'b', 'c']).unwrap()
    }

    #[test]
    fn random_graph_is_reproducible_and_sized() {
        let cfg = RandomGraphConfig {
            num_nodes: 30,
            num_edges: 90,
        };
        let g1 = random_graph(&abc(), &cfg, 5);
        let g2 = random_graph(&abc(), &cfg, 5);
        assert_eq!(g1.num_nodes(), 30);
        assert_eq!(g1.num_edges(), 90);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        let g3 = random_graph(&abc(), &cfg, 6);
        assert_ne!(
            g1.edges().collect::<Vec<_>>(),
            g3.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn tree_graph_has_n_minus_one_edges() {
        let tree = tree_graph(&abc(), 40, 3);
        assert_eq!(tree.num_nodes(), 40);
        assert_eq!(tree.num_edges(), 39);
        // Every non-root node has exactly one incoming edge.
        for v in 1..tree.num_nodes() {
            assert_eq!(tree.edges_to(v).count(), 1);
        }
        assert_eq!(tree.edges_to(0).count(), 0);
    }

    #[test]
    fn layered_graph_only_connects_adjacent_layers() {
        let g = layered_graph(&abc(), 4, 5, 2, 9);
        assert_eq!(g.num_nodes(), 20);
        for e in g.edges() {
            let from_layer = e.from / 5;
            let to_layer = e.to / 5;
            assert_eq!(to_layer, from_layer + 1);
        }
    }

    #[test]
    fn travel_graph_answers_the_intro_query() {
        // The introduction's query: (Σ* · (rome+jerusalem) · Σ* · restaurant)
        // — here specialized to  (rome+jerusalem)·flight*·restaurant.
        let db = travel_graph(6);
        let answer = eval_str(&db, "(rome+jerusalem)·flight*·restaurant");
        assert!(!answer.is_empty());
        let hub = db.node_by_name("hub").unwrap();
        // All answers start at the hub (the only node with landmark edges).
        assert!(answer.iter().all(|&(x, _)| x == hub));
        // Every restaurant of a reachable city is found.
        let r0 = db.node_by_name("restaurant0").unwrap();
        assert!(answer.contains(&(hub, r0)));
    }
}
