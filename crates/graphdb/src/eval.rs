//! Regular path query evaluation over a graph database.
//!
//! The answer to a regular path query `Q` over a database `DB` is the set of
//! node pairs `(x, y)` connected by a path whose label word belongs to
//! `L(Q)` (Definition 4.2).  Evaluation is the classic product construction:
//! explore the product of the graph with the query automaton; `(x, y)` is an
//! answer iff some `(y, final)` product state is reachable from
//! `(x, initial)`.

use std::collections::{BTreeSet, VecDeque};

use automata::{DenseNfa, DenseReverse, Nfa, StateId};
use regexlang::{thompson, Regex};

use crate::answer::SortedPairs;
use crate::budget::{SweepBudget, SweepInterrupt, SweepState, SWEEP_CHECK_INTERVAL};
use crate::graph::{CsrAdjacency, GraphDb, NodeId};

/// The answer to a path query: a set of ordered node pairs.
///
/// Backed by the sorted-vector [`SortedPairs`] representation (the seed used
/// a `BTreeSet`); iteration order and the set-shaped API are unchanged, but
/// bulk construction from the parallel evaluator's per-worker runs is a
/// k-way merge instead of tree insertion.  The seed representation survives
/// as [`AnswerSet`] for differential testing.
pub type Answer = SortedPairs;

/// The seed's answer representation, kept as the differential oracle: the
/// property suites evaluate each query through both representations and
/// require identical pair sets.
pub type AnswerSet = BTreeSet<(NodeId, NodeId)>;

/// Evaluates an automaton-form query over the database.
///
/// The automaton must be over the database's label domain.  Runs one BFS over
/// the product per source node: `O(|V| · (|V| + |E|) · |Q|)` in the worst
/// case, which is the textbook bound for RPQ evaluation.
///
/// The implementation runs on the dense core: the query is frozen into a
/// [`DenseNfa`] (ε-closures precomputed once, CSR successor lists), the
/// database adjacency into a CSR array, and each per-source product-BFS
/// tracks visited `(node, state)` pairs in a per-node word-aligned `u64`
/// bitmap so successor state-sets are marked a word at a time, unset
/// word-by-word between sources so no per-source allocation or full clear
/// happens.
pub fn eval_automaton(db: &GraphDb, query: &Nfa) -> Answer {
    eval_dense(db, &DenseNfa::from_nfa(query))
}

/// Like [`eval_automaton`] but over an already-frozen query automaton, so
/// repeated evaluations (e.g. one per view) skip the freezing step.
pub fn eval_dense(db: &GraphDb, query: &DenseNfa) -> Answer {
    eval_csr(&db.csr_out(), query)
}

/// Like [`eval_dense`] but over an already-frozen adjacency, so callers that
/// evaluate several automata on one database (view materialization, the
/// benchmarks) build the CSR once.  The adjacency carries its database's
/// domain, so incompatible query alphabets fail loudly here too.
pub fn eval_csr(csr: &CsrAdjacency, query: &DenseNfa) -> Answer {
    check_domain(csr, query);
    let mut scratch = EvalScratch::new(csr, query);
    let mut pairs = Vec::new();
    eval_csr_range_prechecked(csr, query, 0..csr.num_nodes() as u32, &mut scratch, &mut pairs);
    pairs.sort_unstable();
    Answer::from_sorted_runs(vec![pairs])
}

/// Panics (on the caller's thread, with the caller-facing message) unless
/// `query`'s alphabet is compatible with the database domain behind `csr`.
///
/// The range evaluators below are *prechecked*: they trust their caller to
/// have validated once, so the parallel pool doesn't re-validate per chunk.
fn check_domain(csr: &CsrAdjacency, query: &DenseNfa) {
    csr.domain()
        .check_compatible(query.alphabet())
        .expect("query automaton must be over the database domain");
}

/// Dense visited bitmap over `(node, state)` product pairs with an
/// `O(visited)` reset: dirty words are journaled so unmarking costs one pass
/// over what the sweep touched, not `O(V·Q)`.
///
/// The layout is word-aligned per node — each node owns
/// [`ProductVisited::stride`] consecutive `u64` words covering its state
/// bits — so a whole successor state-set can be tested-and-marked with one
/// [`ProductVisited::visit_word`] per word instead of one
/// [`ProductVisited::visit`] per state.
///
/// This is the shared core of every product sweep — the forward evaluation
/// below and the backward/forward delta sweeps of the `engine` crate.
#[derive(Debug)]
pub struct ProductVisited {
    stride: usize,
    words: Vec<u64>,
    dirty_words: Vec<usize>,
}

impl ProductVisited {
    /// Allocates a bitmap for sweeps of a `num_states`-state automaton over
    /// a `num_nodes`-node graph.
    pub fn new(num_nodes: usize, num_states: usize) -> Self {
        let stride = num_states.max(1).div_ceil(64);
        ProductVisited {
            stride,
            words: vec![0u64; num_nodes * stride],
            dirty_words: Vec::new(),
        }
    }

    /// Words per node: `ceil(num_states / 64)`.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Marks `(node, state)`, returning `true` if it was unvisited.
    #[inline]
    pub fn visit(&mut self, node: u32, state: u32) -> bool {
        let word = node as usize * self.stride + (state as usize >> 6);
        let mask = 1u64 << (state & 63);
        let w = &mut self.words[word];
        if *w & mask != 0 {
            return false;
        }
        if *w == 0 {
            self.dirty_words.push(word);
        }
        *w |= mask;
        true
    }

    /// Marks every state of `mask` (bits `word * 64 ..`) at `node` in one
    /// operation, returning the bits that were previously unvisited.
    #[inline]
    pub fn visit_word(&mut self, node: u32, word: usize, mask: u64) -> u64 {
        let at = node as usize * self.stride + word;
        let w = &mut self.words[at];
        let new = mask & !*w;
        if new != 0 {
            if *w == 0 {
                self.dirty_words.push(at);
            }
            *w |= new;
        }
        new
    }

    /// Whether `(node, state)` is marked (no mutation).
    #[inline]
    pub fn contains(&self, node: u32, state: u32) -> bool {
        let word = node as usize * self.stride + (state as usize >> 6);
        self.words[word] & (1u64 << (state & 63)) != 0
    }

    /// The visited bitmap word `word` (state bits `word * 64 ..`) of `node`.
    ///
    /// The bidirectional pair evaluator ANDs a forward expansion's new bits
    /// against the *other* direction's word to detect a meet without a
    /// per-state loop.
    #[inline]
    pub fn word(&self, node: u32, word: usize) -> u64 {
        self.words[node as usize * self.stride + word]
    }

    /// Unmarks everything the last sweep visited, in `O(visited words)`.
    pub fn reset(&mut self) {
        for &word in &self.dirty_words {
            self.words[word] = 0;
        }
        self.dirty_words.clear();
    }
}

/// Reusable per-worker buffers for [`eval_csr_range`]: the [`ProductVisited`]
/// bitmap, the per-source found-target flags, the BFS queue, and the
/// per-`(state, label)` successor word table the widened inner loop reads.
///
/// One scratch serves any number of `eval_csr_range` calls against the same
/// `(csr, query)` pair — the successor table is compiled from *that* query,
/// so a scratch must not be reused across different automata.  The parallel
/// evaluator in the `engine` crate keeps one per worker thread.
#[derive(Debug)]
pub struct EvalScratch {
    visited: ProductVisited,
    found: Vec<bool>,
    found_nodes: Vec<u32>,
    queue: VecDeque<(u32, u32)>,
    /// `ceil(num_states / 64)` — words per node / per successor set.
    stride: usize,
    num_symbols: usize,
    /// `(state * num_symbols + symbol) * stride ..` holds the ε-closed
    /// successor state-set of `state` under `symbol` as a bitmap.
    succ_words: Vec<u64>,
    /// Final-state bitmap (`stride` words), so "did this word of new states
    /// hit a final state" is one AND instead of a per-state query.
    finals_words: Vec<u64>,
}

impl EvalScratch {
    /// Allocates buffers sized for product sweeps of `query` over `csr` and
    /// compiles the query's successor lists into word-level bitmaps.
    pub fn new(csr: &CsrAdjacency, query: &DenseNfa) -> Self {
        let num_nodes = csr.num_nodes();
        let num_states = query.num_states().max(1);
        let num_symbols = query.num_symbols().max(1);
        let stride = num_states.div_ceil(64);
        let mut succ_words = vec![0u64; num_states * num_symbols * stride];
        for state in 0..query.num_states() {
            for symbol in 0..query.num_symbols() {
                let base = (state * num_symbols + symbol) * stride;
                for &q in query.closed_successors(state as u32, symbol) {
                    succ_words[base + (q as usize >> 6)] |= 1u64 << (q & 63);
                }
            }
        }
        let mut finals_words = vec![0u64; stride];
        for state in 0..query.num_states() {
            if query.is_final(state as u32) {
                finals_words[state >> 6] |= 1u64 << (state & 63);
            }
        }
        EvalScratch {
            visited: ProductVisited::new(num_nodes, query.num_states()),
            found: vec![false; num_nodes],
            found_nodes: Vec::new(),
            queue: VecDeque::new(),
            stride,
            num_symbols,
            succ_words,
            finals_words,
        }
    }
}

/// Runs the per-source product-BFS of [`eval_csr`] for the sources in
/// `sources` only, pushing every answer pair `(source, target)` onto `pairs`
/// (grouped by ascending source; targets unordered within a source;
/// duplicate-free within one call).
///
/// This is the shardable core of RPQ evaluation: each source's sweep is
/// independent, so disjoint ranges can run on different threads against the
/// same shared `csr` and `query`, each with its own [`EvalScratch`] and
/// output buffer.
pub fn eval_csr_range(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    sources: std::ops::Range<u32>,
    scratch: &mut EvalScratch,
    pairs: &mut Vec<(u32, u32)>,
) {
    check_domain(csr, query);
    eval_csr_range_prechecked(csr, query, sources, scratch, pairs);
}

/// [`eval_csr_range`] without the domain-compatibility check: for callers —
/// the parallel pool above all — that validated the `(csr, query)` pair once
/// and then shard it into many range calls.  Passing an unvalidated pair
/// panics on an out-of-range symbol instead of the label-oriented message.
pub fn eval_csr_range_prechecked(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    sources: std::ops::Range<u32>,
    scratch: &mut EvalScratch,
    pairs: &mut Vec<(u32, u32)>,
) {
    let unlimited = SweepBudget::unlimited();
    let progress = SweepState::new();
    // BUDGETED = false compiles the check out of the pop loop entirely, and
    // an unlimited budget cannot trip, so this cannot fail.
    eval_csr_range_impl::<false>(csr, query, sources, scratch, pairs, &unlimited, &progress)
        .expect("unlimited sweeps cannot be interrupted");
}

/// Budgeted variant of [`eval_csr_range`]: the same sharded product-BFS, but
/// checking `budget` against the shared `progress` every
/// [`SWEEP_CHECK_INTERVAL`] pops.  Returns the pops this call charged to
/// `progress`, so a parallel worker can attribute partial work to itself and
/// not just to the shared aggregate.
///
/// On interrupt the scratch buffers are reset (reusable for the next call),
/// `pairs` keeps the answers of the sources completed *before* the
/// interrupted one, and the error carries the cause; `progress.visited()`
/// reports the aggregate partial work.  Workers sharing one `progress` all
/// observe the first trip, so a deadline stops the whole evaluation, not one
/// shard.
pub fn eval_csr_range_budgeted(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    sources: std::ops::Range<u32>,
    scratch: &mut EvalScratch,
    pairs: &mut Vec<(u32, u32)>,
    budget: &SweepBudget,
    progress: &SweepState,
) -> Result<u64, SweepInterrupt> {
    check_domain(csr, query);
    eval_csr_range_budgeted_prechecked(csr, query, sources, scratch, pairs, budget, progress)
}

/// [`eval_csr_range_budgeted`] without the domain-compatibility check (see
/// [`eval_csr_range_prechecked`]).
pub fn eval_csr_range_budgeted_prechecked(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    sources: std::ops::Range<u32>,
    scratch: &mut EvalScratch,
    pairs: &mut Vec<(u32, u32)>,
    budget: &SweepBudget,
    progress: &SweepState,
) -> Result<u64, SweepInterrupt> {
    eval_csr_range_impl::<true>(csr, query, sources, scratch, pairs, budget, progress)
}

/// The shared product-BFS core.  `BUDGETED` is a compile-time switch so the
/// un-budgeted hot path carries no counter or branch for the checks.
/// Returns the pops charged to `progress` (0 when un-budgeted; on interrupt
/// the partial interval since the last charge, at most
/// [`SWEEP_CHECK_INTERVAL`] pops, is unattributed).
fn eval_csr_range_impl<const BUDGETED: bool>(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    sources: std::ops::Range<u32>,
    scratch: &mut EvalScratch,
    pairs: &mut Vec<(u32, u32)>,
    budget: &SweepBudget,
    progress: &SweepState,
) -> Result<u64, SweepInterrupt> {
    let EvalScratch {
        visited,
        found,
        found_nodes,
        queue,
        stride,
        num_symbols,
        succ_words,
        finals_words,
    } = scratch;
    let (stride, num_symbols) = (*stride, *num_symbols);

    let start_accepts = query.any_final(query.start());
    // Pops since the last charge; persists across sources so many tiny
    // sweeps still reach the check interval.
    let mut since_check: u64 = 0;
    let mut charged: u64 = 0;
    for source in sources {
        queue.clear();
        for &q in query.start() {
            visited.visit(source, q);
            queue.push_back((source, q));
        }
        if start_accepts {
            found[source as usize] = true;
            found_nodes.push(source);
        }
        while let Some((node, state)) = queue.pop_front() {
            if BUDGETED {
                since_check += 1;
                if since_check >= SWEEP_CHECK_INTERVAL {
                    if let Err(why) = progress.charge(budget, since_check) {
                        // Leave the scratch reusable and the queue empty; the
                        // current source's partial answers are discarded.
                        visited.reset();
                        for &target in found_nodes.iter() {
                            found[target as usize] = false;
                        }
                        found_nodes.clear();
                        queue.clear();
                        return Err(why);
                    }
                    charged += since_check;
                    since_check = 0;
                }
            }
            let row = state as usize * num_symbols;
            for (label, next_node) in csr.edges_from(node) {
                // ε-closures are folded into the successor lists, and the
                // lists into per-word bitmaps: each 64-state word of the
                // successor set is tested-and-marked in one visit_word call,
                // with final-state detection one AND against the finals
                // bitmap, instead of a per-state loop.
                let base = (row + label as usize) * stride;
                for w in 0..stride {
                    let mask = succ_words[base + w];
                    if mask == 0 {
                        continue;
                    }
                    let new = visited.visit_word(next_node, w, mask);
                    if new == 0 {
                        continue;
                    }
                    if new & finals_words[w] != 0 && !found[next_node as usize] {
                        found[next_node as usize] = true;
                        found_nodes.push(next_node);
                    }
                    let mut bits = new;
                    while bits != 0 {
                        let q = (w as u32) * 64 + bits.trailing_zeros();
                        bits &= bits - 1;
                        queue.push_back((next_node, q));
                    }
                }
            }
        }
        for &target in found_nodes.iter() {
            pairs.push((source, target));
        }
        visited.reset();
        for &target in found_nodes.iter() {
            found[target as usize] = false;
        }
        found_nodes.clear();
    }
    if BUDGETED && since_check > 0 {
        // Account the tail so `progress.visited()` is accurate; the range is
        // complete, so a trip here only affects sibling shards.
        if progress.charge(budget, since_check).is_ok() {
            charged += since_check;
        }
    }
    Ok(charged)
}

/// The result of a single-source sweep: the targets reachable from one
/// source under the query, plus whether that list is the *complete* answer.
///
/// `complete` is `false` exactly when a `limit` stopped the sweep the moment
/// the k-th target was found — including the boundary case where the k-th
/// target happened to be the last one, since deciding that would require
/// draining the frontier anyway.  Callers use `complete` as the "safe to
/// cache as the full answer" bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reachable {
    /// Reachable target nodes, sorted ascending, duplicate-free.
    pub targets: Vec<NodeId>,
    /// `true` iff the frontier drained, so `targets` is the full answer set
    /// for this source.
    pub complete: bool,
}

/// Single-source product-BFS: the targets reachable from `source` under
/// `query`, stopping early once `limit` targets are found (top-k).
///
/// This is the per-source body of [`eval_csr_range`] restricted to one seed
/// `(source, q₀)`; unlike the full sweep it never touches the other `|V|-1`
/// sources, so a point lookup costs one BFS instead of a materialization.
/// Targets are returned sorted ascending (the BFS discovers them in
/// traversal order; *which* k targets are kept under a `limit` is
/// unspecified beyond being genuine answers).
///
/// # Panics
///
/// Panics if `query` is not over the database domain behind `csr`, or if
/// `source >= csr.num_nodes()`.
pub fn eval_csr_from(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    source: u32,
    limit: Option<usize>,
    scratch: &mut EvalScratch,
) -> Reachable {
    check_domain(csr, query);
    let unlimited = SweepBudget::unlimited();
    let progress = SweepState::new();
    eval_csr_from_impl::<false>(csr, query, source, limit, scratch, &unlimited, &progress)
        .expect("unlimited sweeps cannot be interrupted")
}

/// Budgeted variant of [`eval_csr_from`]: checks `budget` against `progress`
/// every [`SWEEP_CHECK_INTERVAL`] pops.  On interrupt the scratch is reset
/// (reusable) and no partial result escapes — an interrupted point lookup
/// must never be mistaken for a verdict.
///
/// # Panics
///
/// Panics if `query` is not over the database domain behind `csr`, or if
/// `source >= csr.num_nodes()`.
pub fn eval_csr_from_budgeted(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    source: u32,
    limit: Option<usize>,
    scratch: &mut EvalScratch,
    budget: &SweepBudget,
    progress: &SweepState,
) -> Result<Reachable, SweepInterrupt> {
    check_domain(csr, query);
    eval_csr_from_impl::<true>(csr, query, source, limit, scratch, budget, progress)
}

fn eval_csr_from_impl<const BUDGETED: bool>(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    source: u32,
    limit: Option<usize>,
    scratch: &mut EvalScratch,
    budget: &SweepBudget,
    progress: &SweepState,
) -> Result<Reachable, SweepInterrupt> {
    assert!(
        (source as usize) < csr.num_nodes(),
        "source node {source} out of range for a {}-node database",
        csr.num_nodes()
    );
    let EvalScratch {
        visited,
        found,
        found_nodes,
        queue,
        stride,
        num_symbols,
        succ_words,
        finals_words,
    } = scratch;
    let (stride, num_symbols) = (*stride, *num_symbols);
    let cap = limit.unwrap_or(usize::MAX);

    queue.clear();
    let mut since_check: u64 = 0;
    let mut complete = true;
    'sweep: {
        if cap == 0 {
            complete = false;
            break 'sweep;
        }
        for &q in query.start() {
            visited.visit(source, q);
            queue.push_back((source, q));
        }
        if query.any_final(query.start()) {
            found[source as usize] = true;
            found_nodes.push(source);
            if found_nodes.len() >= cap {
                complete = false;
                break 'sweep;
            }
        }
        while let Some((node, state)) = queue.pop_front() {
            if BUDGETED {
                since_check += 1;
                if since_check >= SWEEP_CHECK_INTERVAL {
                    if let Err(why) = progress.charge(budget, since_check) {
                        visited.reset();
                        for &target in found_nodes.iter() {
                            found[target as usize] = false;
                        }
                        found_nodes.clear();
                        queue.clear();
                        return Err(why);
                    }
                    since_check = 0;
                }
            }
            let row = state as usize * num_symbols;
            for (label, next_node) in csr.edges_from(node) {
                let base = (row + label as usize) * stride;
                for w in 0..stride {
                    let mask = succ_words[base + w];
                    if mask == 0 {
                        continue;
                    }
                    let new = visited.visit_word(next_node, w, mask);
                    if new == 0 {
                        continue;
                    }
                    if new & finals_words[w] != 0 && !found[next_node as usize] {
                        found[next_node as usize] = true;
                        found_nodes.push(next_node);
                        if found_nodes.len() >= cap {
                            complete = false;
                            break 'sweep;
                        }
                    }
                    let mut bits = new;
                    while bits != 0 {
                        let q = (w as u32) * 64 + bits.trailing_zeros();
                        bits &= bits - 1;
                        queue.push_back((next_node, q));
                    }
                }
            }
        }
    }
    if BUDGETED && since_check > 0 {
        // Tail accounting only — the result below stands either way.
        let _ = progress.charge(budget, since_check);
    }
    let mut targets: Vec<NodeId> = found_nodes.iter().map(|&t| t as NodeId).collect();
    targets.sort_unstable();
    visited.reset();
    for &target in found_nodes.iter() {
        found[target as usize] = false;
    }
    found_nodes.clear();
    queue.clear();
    Ok(Reachable { targets, complete })
}

/// Wall-clock split of one bidirectional pair sweep, filled only when the
/// caller passes `Some` — the untraced path makes **zero** clock calls, so
/// tracing stays strictly opt-in (the telemetry overhead contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairTimings {
    /// Microseconds spent expanding forward rounds (out of the source).
    pub forward_us: u64,
    /// Microseconds spent expanding backward rounds (into the target).
    pub backward_us: u64,
}

/// Reusable buffers for [`eval_csr_pair`]: one [`ProductVisited`] bitmap and
/// one frontier per direction, plus the same per-`(state, label)` successor
/// word table [`EvalScratch`] compiles.
///
/// Like [`EvalScratch`], one scratch serves any number of pair sweeps
/// against the same `(csr, query)` pair but must not be reused across
/// different automata.
#[derive(Debug)]
pub struct PairScratch {
    forward: ProductVisited,
    backward: ProductVisited,
    fwd_frontier: Vec<(u32, u32)>,
    bwd_frontier: Vec<(u32, u32)>,
    next_frontier: Vec<(u32, u32)>,
    stride: usize,
    num_symbols: usize,
    succ_words: Vec<u64>,
}

impl PairScratch {
    /// Allocates buffers sized for bidirectional sweeps of `query` over a
    /// database with `csr`'s node count and compiles the query's successor
    /// lists into word-level bitmaps.
    pub fn new(csr: &CsrAdjacency, query: &DenseNfa) -> Self {
        let num_nodes = csr.num_nodes();
        let num_states = query.num_states().max(1);
        let num_symbols = query.num_symbols().max(1);
        let stride = num_states.div_ceil(64);
        let mut succ_words = vec![0u64; num_states * num_symbols * stride];
        for state in 0..query.num_states() {
            for symbol in 0..query.num_symbols() {
                let base = (state * num_symbols + symbol) * stride;
                for &q in query.closed_successors(state as u32, symbol) {
                    succ_words[base + (q as usize >> 6)] |= 1u64 << (q & 63);
                }
            }
        }
        PairScratch {
            forward: ProductVisited::new(num_nodes, query.num_states()),
            backward: ProductVisited::new(num_nodes, query.num_states()),
            fwd_frontier: Vec::new(),
            bwd_frontier: Vec::new(),
            next_frontier: Vec::new(),
            stride,
            num_symbols,
            succ_words,
        }
    }
}

/// Bidirectional meet-in-the-middle single-pair evaluation: whether `(source,
/// target)` is in the answer of `query`.
///
/// Runs a forward product-BFS from `(source, q₀)` over `csr_out` and a
/// backward product-BFS from every `(target, f)` with `f` accepting over
/// `csr_in` + the query's [`DenseReverse`], expanding whichever frontier is
/// currently smaller one level at a time and exiting the moment the two
/// visited sets intersect.  A product state `(v, q)` is backward-visited iff
/// some path `v ⇝ target` spells a word taking `q` into an accepting state,
/// so forward ∩ backward ≠ ∅ is exactly "a witness path exists" — each side
/// explores only its own reachable cone instead of the whole product.
///
/// `csr_in` must be the incoming-adjacency freeze of the same database as
/// `csr_out` ([`GraphDb::csr_in`]), and `reverse` must be
/// `query.reverse_closed()`.
///
/// # Panics
///
/// Panics if `query` is not over the database domain behind `csr_out`, or if
/// `source`/`target` are out of range.
pub fn eval_csr_pair(
    csr_out: &CsrAdjacency,
    csr_in: &CsrAdjacency,
    query: &DenseNfa,
    reverse: &DenseReverse,
    source: u32,
    target: u32,
    scratch: &mut PairScratch,
) -> bool {
    check_domain(csr_out, query);
    let unlimited = SweepBudget::unlimited();
    let progress = SweepState::new();
    eval_csr_pair_impl::<false>(
        csr_out, csr_in, query, reverse, source, target, scratch, &unlimited, &progress, None,
    )
    .expect("unlimited sweeps cannot be interrupted")
}

/// Budgeted variant of [`eval_csr_pair`]: checks `budget` against `progress`
/// every [`SWEEP_CHECK_INTERVAL`] frontier expansions (both directions
/// charge the same shared progress).  On interrupt the scratch is reset and
/// no verdict escapes — an interrupted search proves nothing in either
/// direction.  When `timings` is `Some`, per-direction wall time is
/// accumulated into it; when `None` the sweep makes no clock calls.
///
/// # Panics
///
/// Panics if `query` is not over the database domain behind `csr_out`, or if
/// `source`/`target` are out of range.
#[allow(clippy::too_many_arguments)]
pub fn eval_csr_pair_budgeted(
    csr_out: &CsrAdjacency,
    csr_in: &CsrAdjacency,
    query: &DenseNfa,
    reverse: &DenseReverse,
    source: u32,
    target: u32,
    scratch: &mut PairScratch,
    budget: &SweepBudget,
    progress: &SweepState,
    timings: Option<&mut PairTimings>,
) -> Result<bool, SweepInterrupt> {
    check_domain(csr_out, query);
    eval_csr_pair_impl::<true>(
        csr_out, csr_in, query, reverse, source, target, scratch, budget, progress, timings,
    )
}

/// Wrapper that guarantees the scratch is clean on *every* exit path of the
/// sweep below, including meets and interrupts mid-round.
#[allow(clippy::too_many_arguments)]
fn eval_csr_pair_impl<const BUDGETED: bool>(
    csr_out: &CsrAdjacency,
    csr_in: &CsrAdjacency,
    query: &DenseNfa,
    reverse: &DenseReverse,
    source: u32,
    target: u32,
    scratch: &mut PairScratch,
    budget: &SweepBudget,
    progress: &SweepState,
    timings: Option<&mut PairTimings>,
) -> Result<bool, SweepInterrupt> {
    let num_nodes = csr_out.num_nodes();
    assert!(
        (source as usize) < num_nodes && (target as usize) < num_nodes,
        "pair ({source}, {target}) out of range for a {num_nodes}-node database"
    );
    let verdict = pair_sweep::<BUDGETED>(
        csr_out, csr_in, query, reverse, source, target, scratch, budget, progress, timings,
    );
    scratch.forward.reset();
    scratch.backward.reset();
    scratch.fwd_frontier.clear();
    scratch.bwd_frontier.clear();
    scratch.next_frontier.clear();
    verdict
}

#[allow(clippy::too_many_arguments)]
fn pair_sweep<const BUDGETED: bool>(
    csr_out: &CsrAdjacency,
    csr_in: &CsrAdjacency,
    query: &DenseNfa,
    reverse: &DenseReverse,
    source: u32,
    target: u32,
    scratch: &mut PairScratch,
    budget: &SweepBudget,
    progress: &SweepState,
    mut timings: Option<&mut PairTimings>,
) -> Result<bool, SweepInterrupt> {
    // Zero-length witness: ε ∈ L(query) answers (v, v) for every node.
    if source == target && query.any_final(query.start()) {
        return Ok(true);
    }
    let PairScratch {
        forward,
        backward,
        fwd_frontier,
        bwd_frontier,
        next_frontier,
        stride,
        num_symbols,
        succ_words,
    } = scratch;
    let (stride, num_symbols) = (*stride, *num_symbols);

    for &q in query.start() {
        if forward.visit(source, q) {
            fwd_frontier.push((source, q));
        }
    }
    for q in 0..query.num_states() as u32 {
        if query.is_final(q) && backward.visit(target, q) {
            bwd_frontier.push((target, q));
        }
    }
    // The seeds cannot already meet: source == target with an accepting
    // start state returned above, and start states at `source` are disjoint
    // from final states at `target` otherwise.

    let mut since_check: u64 = 0;
    loop {
        if fwd_frontier.is_empty() || bwd_frontier.is_empty() {
            break;
        }
        // Alternate on the cheaper side: expanding the smaller frontier
        // keeps the product of explored cones (and thus total work) minimal,
        // the classic bidirectional-search heuristic.
        let forward_side = fwd_frontier.len() <= bwd_frontier.len();
        let round_start = timings.as_ref().map(|_| std::time::Instant::now());
        let mut met = false;
        if forward_side {
            'fwd: for &(node, state) in fwd_frontier.iter() {
                if BUDGETED {
                    since_check += 1;
                    if since_check >= SWEEP_CHECK_INTERVAL {
                        progress.charge(budget, since_check)?;
                        since_check = 0;
                    }
                }
                let row = state as usize * num_symbols;
                for (label, next_node) in csr_out.edges_from(node) {
                    let base = (row + label as usize) * stride;
                    for w in 0..stride {
                        let mask = succ_words[base + w];
                        if mask == 0 {
                            continue;
                        }
                        let new = forward.visit_word(next_node, w, mask);
                        if new == 0 {
                            continue;
                        }
                        if new & backward.word(next_node, w) != 0 {
                            met = true;
                            break 'fwd;
                        }
                        let mut bits = new;
                        while bits != 0 {
                            let q = (w as u32) * 64 + bits.trailing_zeros();
                            bits &= bits - 1;
                            next_frontier.push((next_node, q));
                        }
                    }
                }
            }
            std::mem::swap(fwd_frontier, next_frontier);
        } else {
            'bwd: for &(node, state) in bwd_frontier.iter() {
                if BUDGETED {
                    since_check += 1;
                    if since_check >= SWEEP_CHECK_INTERVAL {
                        progress.charge(budget, since_check)?;
                        since_check = 0;
                    }
                }
                // (node, state) reaches acceptance at `target`; an edge
                // `pred -label-> node` extends every automaton predecessor
                // `p` with `state ∈ closed_successors(p, label)`.
                for (label, pred) in csr_in.edges_from(node) {
                    for &p in reverse.closed_predecessors(state, label as usize) {
                        if backward.visit(pred, p) {
                            if forward.contains(pred, p) {
                                met = true;
                                break 'bwd;
                            }
                            next_frontier.push((pred, p));
                        }
                    }
                }
            }
            std::mem::swap(bwd_frontier, next_frontier);
        }
        next_frontier.clear();
        if let (Some(t), Some(start)) = (timings.as_deref_mut(), round_start) {
            let us = start.elapsed().as_micros() as u64;
            if forward_side {
                t.forward_us += us;
            } else {
                t.backward_us += us;
            }
        }
        if met {
            if BUDGETED && since_check > 0 {
                let _ = progress.charge(budget, since_check);
            }
            return Ok(true);
        }
    }
    if BUDGETED && since_check > 0 {
        // Tail accounting only — a drained frontier is a definitive "no".
        let _ = progress.charge(budget, since_check);
    }
    Ok(false)
}

/// The seed's tree-based evaluator (`BTreeSet` visited pairs, per-edge
/// singleton ε-closure recomputation) returning the seed's [`AnswerSet`]
/// representation.  Retained as the differential baseline for
/// [`eval_automaton`] — both the algorithm *and* the answer representation
/// are the old path; see the property tests and the `rpq_eval` benchmark.
pub fn eval_automaton_baseline(db: &GraphDb, query: &Nfa) -> AnswerSet {
    db.domain()
        .check_compatible(query.alphabet())
        .expect("query automaton must be over the database domain");
    let mut answer = AnswerSet::new();
    let start_config = query.start_configuration();
    let accepts_here = |states: &BTreeSet<StateId>| states.iter().any(|&s| query.is_final(s));

    for source in db.nodes() {
        // BFS over product states (node, nfa state); we track visited pairs.
        let mut seen: BTreeSet<(NodeId, StateId)> = BTreeSet::new();
        let mut queue: VecDeque<(NodeId, StateId)> = VecDeque::new();
        for &q in &start_config {
            if seen.insert((source, q)) {
                queue.push_back((source, q));
            }
        }
        if accepts_here(&start_config) {
            answer.insert((source, source));
        }
        while let Some((node, state)) = queue.pop_front() {
            for (label, next_node) in db.edges_from(node) {
                for next_state in query.successors(state, label) {
                    // Close under ε so acceptance is detected promptly.
                    let closure = query.epsilon_closure(&BTreeSet::from([next_state]));
                    for &q in &closure {
                        if seen.insert((next_node, q)) {
                            queue.push_back((next_node, q));
                            if query.is_final(q) {
                                answer.insert((source, next_node));
                            }
                        } else if query.is_final(q) {
                            answer.insert((source, next_node));
                        }
                    }
                }
            }
        }
    }
    answer
}

/// Translates a regex query to an NFA over the database domain, panicking
/// with a label-oriented message on unknown symbols.  Shared by
/// [`eval_regex`] and view materialization so the conversion cannot drift.
pub(crate) fn query_nfa(db: &GraphDb, query: &Regex) -> Nfa {
    thompson(query, db.domain()).unwrap_or_else(|unknown| {
        panic!(
            "query mentions `{}` which is not a label of the database domain",
            unknown.name
        )
    })
}

/// Evaluates a query given as a regular expression over the label names.
pub fn eval_regex(db: &GraphDb, query: &Regex) -> Answer {
    eval_automaton(db, &query_nfa(db, query))
}

/// Evaluates a query written in the paper's concrete syntax.
pub fn eval_str(db: &GraphDb, query: &str) -> Answer {
    let expr = regexlang::parse(query).expect("query must parse");
    eval_regex(db, &expr)
}

/// Renders an answer using node names where available (handy in examples and
/// error messages).
pub fn render_answer(db: &GraphDb, answer: &Answer) -> Vec<(String, String)> {
    answer
        .iter()
        .map(|&(x, y)| (db.render_node(x), db.render_node(y)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Alphabet;

    fn abc_domain() -> Alphabet {
        Alphabet::from_chars(['a', 'b', 'c']).unwrap()
    }

    /// A small chain with a loop:  n0 -a-> n1 -b-> n2 -a-> n1,  n1 -c-> n1.
    fn chain_db() -> GraphDb {
        let mut db = GraphDb::new(abc_domain());
        db.add_edge_named("n0", "a", "n1");
        db.add_edge_named("n1", "b", "n2");
        db.add_edge_named("n2", "a", "n1");
        db.add_edge_named("n1", "c", "n1");
        db
    }

    fn pair(db: &GraphDb, x: &str, y: &str) -> (NodeId, NodeId) {
        (db.node_by_name(x).unwrap(), db.node_by_name(y).unwrap())
    }

    #[test]
    fn single_symbol_queries_follow_edges() {
        let db = chain_db();
        let ans = eval_str(&db, "a");
        assert!(ans.contains(&pair(&db, "n0", "n1")));
        assert!(ans.contains(&pair(&db, "n2", "n1")));
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn epsilon_queries_return_all_identity_pairs() {
        let db = chain_db();
        let ans = eval_str(&db, "ε");
        assert_eq!(ans.len(), db.num_nodes());
        for v in db.nodes() {
            assert!(ans.contains(&(v, v)));
        }
    }

    #[test]
    fn paper_query_on_chain() {
        // a·(b·a+c)* from n0 reaches n1 (a), and stays at n1 via c* or b·a.
        let db = chain_db();
        let ans = eval_str(&db, "a·(b·a+c)*");
        assert!(ans.contains(&pair(&db, "n0", "n1")));
        assert!(!ans.contains(&pair(&db, "n0", "n2")));
        // n2 -a-> n1 then (b·a+c)* stays at n1.
        assert!(ans.contains(&pair(&db, "n2", "n1")));
    }

    #[test]
    fn star_queries_include_transitive_closure() {
        let domain = Alphabet::from_chars(['x']).unwrap();
        let mut db = GraphDb::new(domain);
        db.add_edge_named("v0", "x", "v1");
        db.add_edge_named("v1", "x", "v2");
        db.add_edge_named("v2", "x", "v3");
        let ans = eval_str(&db, "x*");
        // all pairs (i, j) with i ≤ j along the chain
        assert_eq!(ans.len(), 4 + 3 + 2 + 1);
        assert!(ans.contains(&pair(&db, "v0", "v3")));
        assert!(!ans.contains(&pair(&db, "v3", "v0")));
        let plus = eval_str(&db, "x^+");
        assert_eq!(plus.len(), 3 + 2 + 1);
    }

    #[test]
    fn disconnected_nodes_do_not_answer() {
        let mut db = GraphDb::new(abc_domain());
        db.add_edge_named("u", "a", "v");
        let lonely = db.add_node();
        let ans = eval_str(&db, "a");
        assert_eq!(ans.len(), 1);
        assert!(!ans.iter().any(|&(x, y)| x == lonely || y == lonely));
    }

    #[test]
    fn empty_query_has_empty_answer() {
        let db = chain_db();
        assert!(eval_str(&db, "∅").is_empty());
    }

    #[test]
    fn cyclic_graphs_terminate_and_answer_correctly() {
        let domain = Alphabet::from_chars(['x', 'y']).unwrap();
        let mut db = GraphDb::new(domain);
        db.add_edge_named("p", "x", "q");
        db.add_edge_named("q", "x", "p");
        db.add_edge_named("q", "y", "r");
        let ans = eval_str(&db, "x*·y");
        assert!(ans.contains(&pair(&db, "p", "r")));
        assert!(ans.contains(&pair(&db, "q", "r")));
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn render_answer_uses_names() {
        let db = chain_db();
        let ans = eval_str(&db, "b");
        let rendered = render_answer(&db, &ans);
        assert_eq!(rendered, vec![("n1".to_string(), "n2".to_string())]);
    }

    #[test]
    #[should_panic(expected = "not a label")]
    fn unknown_labels_in_queries_panic() {
        let db = chain_db();
        eval_str(&db, "zz");
    }

    #[test]
    fn sharded_ranges_cover_the_full_answer() {
        // Evaluating disjoint source ranges with separate scratches must
        // reproduce eval_csr exactly — this is the invariant the parallel
        // engine relies on.
        let db = chain_db();
        let csr = db.csr_out();
        let nfa = query_nfa(&db, &regexlang::parse("a·(b·a+c)*").unwrap());
        let dense = DenseNfa::from_nfa(&nfa);
        let whole = eval_csr(&csr, &dense);
        let n = csr.num_nodes() as u32;
        let mut pairs = Vec::new();
        for lo in 0..n {
            let mut scratch = EvalScratch::new(&csr, &dense);
            eval_csr_range(&csr, &dense, lo..lo + 1, &mut scratch, &mut pairs);
        }
        let sharded: Answer = pairs
            .into_iter()
            .map(|(x, y)| (x as NodeId, y as NodeId))
            .collect();
        assert_eq!(whole, sharded);
    }

    #[test]
    fn budgeted_range_with_unlimited_budget_matches_plain() {
        let db = chain_db();
        let csr = db.csr_out();
        let nfa = query_nfa(&db, &regexlang::parse("a·(b·a+c)*").unwrap());
        let dense = DenseNfa::from_nfa(&nfa);
        let mut scratch = EvalScratch::new(&csr, &dense);
        let mut plain = Vec::new();
        let n = csr.num_nodes() as u32;
        eval_csr_range(&csr, &dense, 0..n, &mut scratch, &mut plain);

        let budget = SweepBudget::unlimited();
        let progress = SweepState::new();
        let mut budgeted = Vec::new();
        let charged = eval_csr_range_budgeted(
            &csr, &dense, 0..n, &mut scratch, &mut budgeted, &budget, &progress,
        )
        .expect("unlimited budget never interrupts");
        plain.sort_unstable();
        budgeted.sort_unstable();
        assert_eq!(plain, budgeted);
        // The tail flush accounted the pops, and this call charged them all.
        assert!(progress.visited() > 0);
        assert_eq!(charged, progress.visited());
    }

    #[test]
    fn tiny_deadline_interrupts_and_scratch_stays_reusable() {
        use crate::generator::{random_graph, RandomGraphConfig};
        use std::time::Instant;

        let cfg = RandomGraphConfig {
            num_nodes: 400,
            num_edges: 2400,
        };
        let db = random_graph(&abc_domain(), &cfg, 11);
        let csr = db.csr_out();
        let nfa = query_nfa(&db, &regexlang::parse("(a+b+c)*").unwrap());
        let dense = DenseNfa::from_nfa(&nfa);
        let mut scratch = EvalScratch::new(&csr, &dense);
        let n = csr.num_nodes() as u32;

        let budget = SweepBudget {
            deadline: Some(Instant::now()), // already past
            ..SweepBudget::unlimited()
        };
        let progress = SweepState::new();
        let mut pairs = Vec::new();
        let err = eval_csr_range_budgeted(
            &csr, &dense, 0..n, &mut scratch, &mut pairs, &budget, &progress,
        )
        .expect_err("expired deadline must interrupt a large sweep");
        assert_eq!(err, SweepInterrupt::DeadlineExceeded);

        // The scratch must be clean: a fresh unbudgeted run reproduces the
        // full answer exactly.
        let mut after = Vec::new();
        eval_csr_range(&csr, &dense, 0..n, &mut scratch, &mut after);
        let mut fresh_pairs = Vec::new();
        let mut fresh = EvalScratch::new(&csr, &dense);
        eval_csr_range(&csr, &dense, 0..n, &mut fresh, &mut fresh_pairs);
        after.sort_unstable();
        fresh_pairs.sort_unstable();
        assert_eq!(after, fresh_pairs);
    }

    #[test]
    fn visit_cap_interrupts_large_sweeps() {
        use crate::generator::{random_graph, RandomGraphConfig};

        let cfg = RandomGraphConfig {
            num_nodes: 400,
            num_edges: 2400,
        };
        let db = random_graph(&abc_domain(), &cfg, 13);
        let csr = db.csr_out();
        let nfa = query_nfa(&db, &regexlang::parse("(a+b+c)*").unwrap());
        let dense = DenseNfa::from_nfa(&nfa);
        let mut scratch = EvalScratch::new(&csr, &dense);
        let n = csr.num_nodes() as u32;
        let budget = SweepBudget {
            max_visited: Some(SWEEP_CHECK_INTERVAL),
            ..SweepBudget::unlimited()
        };
        let progress = SweepState::new();
        let mut pairs = Vec::new();
        let err = eval_csr_range_budgeted(
            &csr, &dense, 0..n, &mut scratch, &mut pairs, &budget, &progress,
        )
        .expect_err("a (a+b+c)* sweep over 400 nodes visits far more than one interval");
        assert_eq!(err, SweepInterrupt::VisitLimit);
        assert!(progress.visited() > SWEEP_CHECK_INTERVAL);
    }

    #[test]
    fn answers_on_multigraphs_are_sets() {
        let domain = Alphabet::from_chars(['x']).unwrap();
        let mut db = GraphDb::new(domain);
        db.add_edge_named("a", "x", "b");
        db.add_edge_named("a", "x", "b");
        let ans = eval_str(&db, "x");
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn wide_automata_cross_word_boundaries_correctly() {
        // Concatenating > 64 single-symbol factors yields an NFA with well
        // over 64 states, so the visited bitmap and successor table span
        // multiple words per node.  A chain graph of the same length then
        // has exactly one answer: (start, end).
        let domain = Alphabet::from_chars(['x']).unwrap();
        let mut db = GraphDb::new(domain);
        let hops = 80usize;
        for i in 0..hops {
            db.add_edge_named(&format!("v{i}"), "x", &format!("v{}", i + 1));
        }
        let query = "x·".repeat(hops - 1) + "x";
        let nfa = query_nfa(&db, &regexlang::parse(&query).unwrap());
        let dense = DenseNfa::from_nfa(&nfa);
        assert!(dense.num_states() > 64, "need a multi-word automaton");
        let ans = eval_csr(&db.csr_out(), &dense);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&pair(&db, "v0", &format!("v{hops}"))));
    }

    #[test]
    fn differential_sorted_pairs_vs_btreeset_on_random_cases() {
        // The satellite differential: the SortedPairs-backed evaluator must
        // agree, pair for pair, with the seed's BTreeSet-based baseline on
        // hundreds of random (graph, query) cases.
        use crate::generator::{random_graph, RandomGraphConfig};

        let queries = [
            "a",
            "a·b",
            "a·(b·a+c)*",
            "c*",
            "(a+b)*·c",
            "ε",
            "∅",
            "a+b·c?",
            "(a+b+c)*",
            "a?·b*",
        ];
        let mut cases = 0usize;
        for seed in 0..7u64 {
            for &(nodes, edges) in &[(5usize, 12usize), (17, 60), (33, 140)] {
                let cfg = RandomGraphConfig {
                    num_nodes: nodes,
                    num_edges: edges,
                };
                let db = random_graph(&abc_domain(), &cfg, seed);
                for q in queries {
                    let nfa = query_nfa(&db, &regexlang::parse(q).unwrap());
                    let new_path = eval_automaton(&db, &nfa);
                    let old_path = eval_automaton_baseline(&db, &nfa);
                    let as_set: AnswerSet = new_path.iter().copied().collect();
                    assert_eq!(as_set, old_path, "seed {seed} v{nodes} q {q}");
                    assert_eq!(new_path.len(), old_path.len());
                    cases += 1;
                }
            }
        }
        assert!(cases >= 200, "differential must cover 200+ cases, ran {cases}");
    }
}
