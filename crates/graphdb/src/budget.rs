//! Cooperative resource budgets for product sweeps.
//!
//! A product-BFS over `graph × query` is worst-case `O(|V| · (|V| + |E|) ·
//! |Q|)`; behind a socket that bound must be enforceable per query, not just
//! provable.  A [`SweepBudget`] carries the limits (wall-clock deadline,
//! visited-pair cap, cancel flag) and a [`SweepState`] carries the shared
//! progress of one evaluation — possibly sharded across worker threads — so
//! every worker stops promptly once any one of them trips a limit.
//!
//! Checks are cooperative: the budgeted evaluator polls every
//! [`SWEEP_CHECK_INTERVAL`] product-state pops, which keeps the hot loop free
//! of per-pop atomics while bounding the overshoot past a deadline to a few
//! thousand pops per worker.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of product-BFS pops between cooperative budget checks.
///
/// Each check costs one atomic add plus (amortized) one `Instant::now()`;
/// 4096 pops of real traversal work dwarf that, while a tripped budget is
/// still noticed within microseconds on any realistic workload.
pub const SWEEP_CHECK_INTERVAL: u64 = 4096;

/// Resource limits for one (possibly sharded) product sweep.
///
/// The default budget is unlimited, which is also what the un-budgeted hot
/// path uses; limits compose — the first one hit wins.
#[derive(Debug, Clone, Default)]
pub struct SweepBudget {
    /// Wall-clock deadline; the sweep stops with
    /// [`SweepInterrupt::DeadlineExceeded`] at the first check past it.
    pub deadline: Option<Instant>,
    /// Cap on product `(node, state)` pairs popped across **all** workers of
    /// the evaluation; trips [`SweepInterrupt::VisitLimit`].
    pub max_visited: Option<u64>,
    /// Cooperative cancel flag (e.g. set when a client disconnects); trips
    /// [`SweepInterrupt::Cancelled`].
    pub cancel: Option<Arc<AtomicBool>>,
}

impl SweepBudget {
    /// A budget with no limits: the sweep runs to completion.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Whether no limit is set (callers use this to pick the un-budgeted
    /// fast path).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_visited.is_none() && self.cancel.is_none()
    }
}

/// Why a budgeted sweep stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepInterrupt {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The visited-pair cap was reached.
    VisitLimit,
    /// The cancel flag was set.
    Cancelled,
}

impl std::fmt::Display for SweepInterrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepInterrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
            SweepInterrupt::VisitLimit => write!(f, "visit budget exceeded"),
            SweepInterrupt::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Shared progress of one budgeted evaluation: the global visited-pair count
/// and a sticky "tripped" marker, so once any worker hits a limit every other
/// worker (and the caller's later phases) observe the same interrupt.
#[derive(Debug, Default)]
pub struct SweepState {
    visited: AtomicU64,
    /// 0 while running; otherwise `interrupt discriminant + 1`.
    tripped: AtomicU32,
}

impl SweepState {
    // ordering: Relaxed throughout this impl — visited counts, the cancel
    // flag, and the sticky trip code are budget *advice*: a worker may see a
    // trip a few pops late, which only over-counts the partial-work stat.
    // No data is published through these atomics.

    /// Fresh progress for one evaluation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Product pairs charged so far across all workers (the partial-work
    /// statistic reported alongside an interrupt).
    pub fn visited(&self) -> u64 {
        self.visited.load(Ordering::Relaxed)
    }

    /// The sticky interrupt, if any worker tripped a limit.
    pub fn interrupt(&self) -> Option<SweepInterrupt> {
        match self.tripped.load(Ordering::Relaxed) {
            0 => None,
            1 => Some(SweepInterrupt::DeadlineExceeded),
            2 => Some(SweepInterrupt::VisitLimit),
            _ => Some(SweepInterrupt::Cancelled),
        }
    }

    fn trip(&self, why: SweepInterrupt) -> SweepInterrupt {
        let code = match why {
            SweepInterrupt::DeadlineExceeded => 1,
            SweepInterrupt::VisitLimit => 2,
            SweepInterrupt::Cancelled => 3,
        };
        // First trip wins; later workers keep the original cause.
        let _ = self
            .tripped
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
        self.interrupt().unwrap_or(why)
    }

    /// Charges `pops` visited pairs and checks every limit.  Called from the
    /// sweep loop every [`SWEEP_CHECK_INTERVAL`] pops (and once at the end
    /// with the remainder).
    pub fn charge(&self, budget: &SweepBudget, pops: u64) -> Result<(), SweepInterrupt> {
        let total = self.visited.fetch_add(pops, Ordering::Relaxed) + pops;
        if let Some(why) = self.interrupt() {
            return Err(why);
        }
        if let Some(cancel) = &budget.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(self.trip(SweepInterrupt::Cancelled));
            }
        }
        if budget.max_visited.is_some_and(|cap| total > cap) {
            return Err(self.trip(SweepInterrupt::VisitLimit));
        }
        if budget.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(self.trip(SweepInterrupt::DeadlineExceeded));
        }
        Ok(())
    }

    /// Checks the time-like limits (tripped flag, cancel, deadline) without
    /// charging visited pairs.  Used between coarse work items — repair jobs,
    /// per-edge delta sweeps — where no pop count is being accumulated.
    pub fn poll(&self, budget: &SweepBudget) -> Result<(), SweepInterrupt> {
        if let Some(why) = self.interrupt() {
            return Err(why);
        }
        if let Some(cancel) = &budget.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(self.trip(SweepInterrupt::Cancelled));
            }
        }
        if budget.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(self.trip(SweepInterrupt::DeadlineExceeded));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = SweepBudget::unlimited();
        assert!(budget.is_unlimited());
        let state = SweepState::new();
        for _ in 0..100 {
            assert!(state.charge(&budget, 1_000_000).is_ok());
            assert!(state.poll(&budget).is_ok());
        }
        assert_eq!(state.visited(), 100_000_000);
        assert_eq!(state.interrupt(), None);
    }

    #[test]
    fn visit_cap_trips_and_sticks() {
        let budget = SweepBudget {
            max_visited: Some(10),
            ..SweepBudget::unlimited()
        };
        assert!(!budget.is_unlimited());
        let state = SweepState::new();
        assert!(state.charge(&budget, 10).is_ok());
        assert_eq!(state.charge(&budget, 1), Err(SweepInterrupt::VisitLimit));
        // Sticky: later polls (even with a fresh unlimited budget view) see it.
        assert_eq!(state.poll(&budget), Err(SweepInterrupt::VisitLimit));
        assert_eq!(state.interrupt(), Some(SweepInterrupt::VisitLimit));
        assert_eq!(state.visited(), 11);
    }

    #[test]
    fn past_deadline_trips_immediately() {
        let budget = SweepBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..SweepBudget::unlimited()
        };
        let state = SweepState::new();
        assert_eq!(
            state.charge(&budget, 1),
            Err(SweepInterrupt::DeadlineExceeded)
        );
    }

    #[test]
    fn cancel_flag_trips_poll_and_charge() {
        let cancel = Arc::new(AtomicBool::new(false));
        let budget = SweepBudget {
            cancel: Some(Arc::clone(&cancel)),
            ..SweepBudget::unlimited()
        };
        let state = SweepState::new();
        assert!(state.poll(&budget).is_ok());
        cancel.store(true, Ordering::Relaxed);
        assert_eq!(state.poll(&budget), Err(SweepInterrupt::Cancelled));
        assert_eq!(state.charge(&budget, 1), Err(SweepInterrupt::Cancelled));
    }

    #[test]
    fn first_trip_cause_wins() {
        let state = SweepState::new();
        let visit_budget = SweepBudget {
            max_visited: Some(1),
            ..SweepBudget::unlimited()
        };
        assert_eq!(state.charge(&visit_budget, 2), Err(SweepInterrupt::VisitLimit));
        // A later deadline check reports the original cause.
        let deadline_budget = SweepBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..SweepBudget::unlimited()
        };
        assert_eq!(state.poll(&deadline_budget), Err(SweepInterrupt::VisitLimit));
    }
}
