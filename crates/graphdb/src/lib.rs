//! # graphdb — the semi-structured database substrate
//!
//! Section 4 of the reproduced paper applies regular-expression rewriting to
//! *regular path queries* over semi-structured databases: edge-labeled graphs
//! whose basic query mechanism retrieves all node pairs connected by a path
//! conforming to a regular language.  This crate provides that substrate:
//!
//! * [`GraphDb`] — an edge-labeled graph over a finite label domain `D`,
//! * [`eval_regex`]/[`eval_automaton`] — RPQ evaluation by product
//!   reachability (Definition 4.2),
//! * [`witness_regex`] — shortest witness paths for answer pairs,
//! * [`MaterializedViews`] — view extensions and the evaluation of
//!   Σ_E-languages (rewritings) over them,
//! * [`Theory`]/[`Formula`] — the decidable complete theory over `D` used by
//!   the formula-based data model of §4.1, and
//! * seeded graph generators for the experiments.
//!
//! ```
//! use automata::Alphabet;
//! use graphdb::{GraphDb, eval_str};
//!
//! let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
//! db.add_edge_named("n0", "a", "n1");
//! db.add_edge_named("n1", "c", "n1");
//! db.add_edge_named("n1", "b", "n2");
//! db.add_edge_named("n2", "a", "n1");
//!
//! let answer = eval_str(&db, "a·(b·a+c)*");
//! let n0 = db.node_by_name("n0").unwrap();
//! let n1 = db.node_by_name("n1").unwrap();
//! assert!(answer.contains(&(n0, n1)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod answer;
pub mod budget;
pub mod eval;
pub mod generator;
pub mod graph;
pub mod paths;
pub mod theory;
pub mod views;

pub use answer::SortedPairs;
pub use budget::{SweepBudget, SweepInterrupt, SweepState, SWEEP_CHECK_INTERVAL};
pub use eval::{
    eval_automaton, eval_automaton_baseline, eval_csr, eval_csr_from, eval_csr_from_budgeted,
    eval_csr_pair, eval_csr_pair_budgeted, eval_csr_range, eval_csr_range_budgeted,
    eval_csr_range_budgeted_prechecked, eval_csr_range_prechecked, eval_dense, eval_regex,
    eval_str, render_answer, Answer, AnswerSet, EvalScratch, PairScratch, PairTimings,
    ProductVisited, Reachable,
};
pub use generator::{
    community_graph, layered_graph, power_law_graph, random_graph, travel_graph, tree_graph,
    CommunityGraphConfig, PowerLawGraphConfig, RandomGraphConfig,
};
pub use graph::{CsrAdjacency, Edge, GraphDb, GraphError, NodeId};
pub use paths::{witness_automaton, witness_regex, PathWitness};
pub use theory::{Formula, Theory};
pub use views::MaterializedViews;
