//! Edge-labeled graph databases (the semi-structured data model of §4.1).
//!
//! Following \[BDFS97\] as the paper does, a database is a graph whose edges
//! are labeled by elements of a finite domain `D`; nodes are plain objects.
//! We additionally allow naming nodes for readability in examples (the
//! paper's web-site / digital-library motivation), but all algorithms work on
//! dense integer node ids.

use std::collections::{BTreeMap, BTreeSet};

use automata::{Alphabet, Symbol};

/// Identifier of a node within a [`GraphDb`].
pub type NodeId = usize;

/// Structured failure of a graph operation on user-supplied input.
///
/// The `Display` strings keep the wording of the historical panic messages
/// ("out of range", "not in domain"), so the panicking convenience methods —
/// which now delegate to the fallible ones — behave byte-for-byte as before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint does not exist.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Current node count of the database.
        num_nodes: usize,
    },
    /// A label (by symbol or by name) is not part of the database domain.
    LabelOutOfDomain {
        /// The offending label, rendered.
        label: String,
        /// The database domain, rendered.
        domain: String,
    },
    /// A node name did not resolve.
    UnknownNode {
        /// The offending name.
        name: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (database has {num_nodes} node(s))")
            }
            GraphError::LabelOutOfDomain { label, domain } => {
                write!(f, "label {label} not in domain {domain}")
            }
            GraphError::UnknownNode { name } => write!(f, "no node named `{name}`"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed edge `from --label--> to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Edge label (a constant of the domain `D`).
    pub label: Symbol,
    /// Target node.
    pub to: NodeId,
}

/// An edge-labeled graph database over a finite label domain `D`.
#[derive(Debug, Clone)]
pub struct GraphDb {
    domain: Alphabet,
    node_names: Vec<Option<String>>,
    named: BTreeMap<String, NodeId>,
    /// Outgoing adjacency: `out[v]` lists `(label, target)` pairs.
    out: Vec<Vec<(Symbol, NodeId)>>,
    /// Incoming adjacency: `inc[v]` lists `(label, source)` pairs.
    inc: Vec<Vec<(Symbol, NodeId)>>,
    num_edges: usize,
}

impl GraphDb {
    /// Creates an empty database over the given label domain.
    pub fn new(domain: Alphabet) -> Self {
        Self {
            domain,
            node_names: Vec::new(),
            named: BTreeMap::new(),
            out: Vec::new(),
            inc: Vec::new(),
            num_edges: 0,
        }
    }

    /// The label domain `D`.
    pub fn domain(&self) -> &Alphabet {
        &self.domain
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.out.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds an anonymous node.
    pub fn add_node(&mut self) -> NodeId {
        self.node_names.push(None);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.out.len() - 1
    }

    /// Adds (or returns) a node with the given name.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.named.get(name) {
            return id;
        }
        let id = self.add_node();
        self.node_names[id] = Some(name.to_string());
        self.named.insert(name.to_string(), id);
        id
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.named.get(name).copied()
    }

    /// The name of a node, if it was created with one.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.node_names.get(id).and_then(|n| n.as_deref())
    }

    /// Adds a labeled edge between existing nodes.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or the label is not in the
    /// domain.  [`try_add_edge`](Self::try_add_edge) is the fallible variant
    /// for untrusted input.
    pub fn add_edge(&mut self, from: NodeId, label: Symbol, to: NodeId) {
        self.try_add_edge(from, label, to)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`add_edge`](Self::add_edge): validates both endpoints and
    /// the label before touching any adjacency list, so a failed call leaves
    /// the database unchanged.
    pub fn try_add_edge(
        &mut self,
        from: NodeId,
        label: Symbol,
        to: NodeId,
    ) -> Result<(), GraphError> {
        self.check_edge_parts(from, label, to)?;
        self.out[from].push((label, to));
        self.inc[to].push((label, from));
        self.num_edges += 1;
        Ok(())
    }

    /// Validates an edge triple without mutating: both endpoints in range,
    /// label in the domain.  Batch mutators call this over the whole batch
    /// before applying anything (validate-before-mutate).
    pub fn check_edge_parts(
        &self,
        from: NodeId,
        label: Symbol,
        to: NodeId,
    ) -> Result<(), GraphError> {
        let num_nodes = self.num_nodes();
        let node = if from >= num_nodes {
            Some(from)
        } else if to >= num_nodes {
            Some(to)
        } else {
            None
        };
        if let Some(node) = node {
            return Err(GraphError::NodeOutOfRange { node, num_nodes });
        }
        if label.index() >= self.domain.len() {
            return Err(GraphError::LabelOutOfDomain {
                label: label.to_string(),
                domain: self.domain.render(),
            });
        }
        Ok(())
    }

    /// Resolves a label name, or reports [`GraphError::LabelOutOfDomain`].
    pub fn require_label(&self, name: &str) -> Result<Symbol, GraphError> {
        self.domain.symbol(name).ok_or_else(|| GraphError::LabelOutOfDomain {
            label: format!("`{name}`"),
            domain: self.domain.render(),
        })
    }

    /// Resolves an existing node name, or reports [`GraphError::UnknownNode`]
    /// (unlike [`node`](Self::node), which creates missing nodes).
    pub fn require_node(&self, name: &str) -> Result<NodeId, GraphError> {
        self.node_by_name(name)
            .ok_or_else(|| GraphError::UnknownNode { name: name.to_string() })
    }

    /// Adds an edge between named nodes using a label name, creating the
    /// nodes on demand.
    pub fn add_edge_named(&mut self, from: &str, label: &str, to: &str) {
        let label = self.require_label(label).unwrap_or_else(|e| panic!("{e}"));
        let from = self.node(from);
        let to = self.node(to);
        self.add_edge(from, label, to);
    }

    /// Removes **one occurrence** of the edge `from --label--> to`, returning
    /// whether an occurrence existed.  On a multigraph with parallel copies
    /// of the edge, only one copy is removed per call; nodes are never
    /// removed (a node left without edges simply becomes isolated).
    ///
    /// Adjacency lists are patched in place (swap-remove on both the
    /// outgoing and the incoming list), so removal is `O(degree)`; frozen
    /// [`CsrAdjacency`] views are immutable and must be re-frozen by the
    /// caller — the `engine` crate does this under its revision bump.
    pub fn remove_edge(&mut self, from: NodeId, label: Symbol, to: NodeId) -> bool {
        let Some(out_idx) = self
            .out
            .get(from)
            .and_then(|edges| edges.iter().position(|&e| e == (label, to)))
        else {
            return false;
        };
        self.out[from].swap_remove(out_idx);
        let inc_idx = self.inc[to]
            .iter()
            .position(|&e| e == (label, from))
            .expect("incoming list mirrors outgoing list");
        self.inc[to].swap_remove(inc_idx);
        self.num_edges -= 1;
        true
    }

    /// Removes one occurrence of an edge between named nodes using a label
    /// name, returning whether it existed (unknown node or label names
    /// simply report `false`).
    pub fn remove_edge_named(&mut self, from: &str, label: &str, to: &str) -> bool {
        let (Some(label), Some(from), Some(to)) = (
            self.domain.symbol(label),
            self.node_by_name(from),
            self.node_by_name(to),
        ) else {
            return false;
        };
        self.remove_edge(from, label, to)
    }

    /// Number of parallel copies of the edge `from --label--> to` currently
    /// present.  The delta-maintenance fast path of the `engine` crate uses
    /// this as a support count: deleting one copy of an edge whose
    /// multiplicity stays positive cannot change any RPQ answer.
    pub fn edge_multiplicity(&self, from: NodeId, label: Symbol, to: NodeId) -> usize {
        self.out
            .get(from)
            .map_or(0, |edges| edges.iter().filter(|&&e| e == (label, to)).count())
    }

    /// Outgoing edges of a node.
    pub fn edges_from(&self, node: NodeId) -> impl Iterator<Item = (Symbol, NodeId)> + '_ {
        self.out[node].iter().copied()
    }

    /// Incoming edges of a node as `(label, source)` pairs.
    pub fn edges_to(&self, node: NodeId) -> impl Iterator<Item = (Symbol, NodeId)> + '_ {
        self.inc[node].iter().copied()
    }

    /// Outgoing edges of a node restricted to one label.
    pub fn successors(&self, node: NodeId, label: Symbol) -> impl Iterator<Item = NodeId> + '_ {
        self.out[node]
            .iter()
            .filter(move |&&(l, _)| l == label)
            .map(|&(_, t)| t)
    }

    /// All edges of the database.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out.iter().enumerate().flat_map(|(from, edges)| {
            edges.iter().map(move |&(label, to)| Edge { from, label, to })
        })
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes()
    }

    /// The set of labels that actually occur on edges.
    pub fn used_labels(&self) -> BTreeSet<Symbol> {
        self.edges().map(|e| e.label).collect()
    }

    /// Renders a node for error messages and reports: its name when it has
    /// one, otherwise `#id`.
    pub fn render_node(&self, id: NodeId) -> String {
        match self.node_name(id) {
            Some(name) => name.to_string(),
            None => format!("#{id}"),
        }
    }

    /// Compact description of the database.
    pub fn describe(&self) -> String {
        format!(
            "GraphDb(nodes={}, edges={}, domain={})",
            self.num_nodes(),
            self.num_edges(),
            self.domain.render()
        )
    }

    /// Freezes the outgoing adjacency into a CSR layout for traversal-heavy
    /// algorithms (one flat `(label, target)` array plus a per-node offset
    /// index).  The RPQ evaluator builds this once per query instead of
    /// chasing per-node `Vec`s during every product-BFS.
    pub fn csr_out(&self) -> CsrAdjacency {
        Self::freeze_lists(&self.domain, &self.out, self.num_edges)
    }

    /// Freezes the *incoming* adjacency into the same CSR layout:
    /// `edges_from(v)` on the result yields `(label, source)` pairs, i.e. the
    /// edges *entering* `v`.  Backward traversals (the delta maintenance of
    /// the `engine` crate) walk this instead of scanning every edge.
    pub fn csr_in(&self) -> CsrAdjacency {
        Self::freeze_lists(&self.domain, &self.inc, self.num_edges)
    }

    fn freeze_lists(
        domain: &Alphabet,
        lists: &[Vec<(Symbol, NodeId)>],
        num_edges: usize,
    ) -> CsrAdjacency {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut labels = Vec::with_capacity(num_edges);
        let mut targets = Vec::with_capacity(num_edges);
        offsets.push(0u32);
        for edges in lists {
            for &(label, to) in edges {
                labels.push(label.0);
                targets.push(to as u32);
            }
            offsets.push(labels.len() as u32);
        }
        CsrAdjacency {
            domain: domain.clone(),
            offsets,
            labels,
            targets,
        }
    }
}

/// Frozen outgoing adjacency of a [`GraphDb`] in CSR layout.
///
/// Edge `i` of node `v` has label index `labels[offsets[v] + i]` and target
/// `targets[offsets[v] + i]`; labels are raw [`Symbol`] indices into the
/// database domain, which travels along so evaluators can check query
/// compatibility against the frozen adjacency alone.
#[derive(Debug, Clone)]
pub struct CsrAdjacency {
    domain: Alphabet,
    offsets: Vec<u32>,
    labels: Vec<u32>,
    targets: Vec<u32>,
}

impl CsrAdjacency {
    /// The label domain of the database this adjacency was frozen from.
    pub fn domain(&self) -> &Alphabet {
        &self.domain
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges (rows of the CSR).
    pub fn num_edges(&self) -> usize {
        self.labels.len()
    }

    /// Out-degree of `node` — the cost proxy the parallel scheduler uses to
    /// build frontier-mass-weighted chunks.
    #[inline]
    pub fn out_degree(&self, node: u32) -> u32 {
        self.offsets[node as usize + 1] - self.offsets[node as usize]
    }

    /// The `(label index, target)` pairs leaving `node`.
    #[inline]
    pub fn edges_from(&self, node: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.offsets[node as usize] as usize;
        let hi = self.offsets[node as usize + 1] as usize;
        self.labels[lo..hi]
            .iter()
            .copied()
            .zip(self.targets[lo..hi].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city_domain() -> Alphabet {
        Alphabet::from_names(["rome", "jerusalem", "flight", "restaurant"]).unwrap()
    }

    #[test]
    fn builds_nodes_and_edges() {
        let mut db = GraphDb::new(city_domain());
        db.add_edge_named("start", "rome", "city");
        db.add_edge_named("city", "restaurant", "place");
        assert_eq!(db.num_nodes(), 3);
        assert_eq!(db.num_edges(), 2);
        let start = db.node_by_name("start").unwrap();
        let city = db.node_by_name("city").unwrap();
        let rome = db.domain().symbol("rome").unwrap();
        assert_eq!(db.successors(start, rome).collect::<Vec<_>>(), vec![city]);
        assert_eq!(db.edges_to(city).count(), 1);
        assert_eq!(db.render_node(start), "start");
    }

    #[test]
    fn named_nodes_are_reused() {
        let mut db = GraphDb::new(city_domain());
        let a = db.node("x");
        let b = db.node("x");
        assert_eq!(a, b);
        assert_eq!(db.num_nodes(), 1);
        let anon = db.add_node();
        assert_eq!(db.node_name(anon), None);
        assert_eq!(db.render_node(anon), "#1");
    }

    #[test]
    #[should_panic(expected = "not in domain")]
    fn unknown_labels_panic() {
        let mut db = GraphDb::new(city_domain());
        db.add_edge_named("a", "train", "b");
    }

    #[test]
    fn edge_iteration_and_used_labels() {
        let mut db = GraphDb::new(city_domain());
        db.add_edge_named("a", "flight", "b");
        db.add_edge_named("b", "flight", "c");
        db.add_edge_named("c", "restaurant", "a");
        assert_eq!(db.edges().count(), 3);
        let labels = db.used_labels();
        assert_eq!(labels.len(), 2);
        assert!(db.describe().contains("nodes=3"));
    }

    #[test]
    fn csr_out_mirrors_adjacency_lists() {
        let mut db = GraphDb::new(city_domain());
        db.add_edge_named("a", "flight", "b");
        db.add_edge_named("a", "rome", "c");
        db.add_edge_named("b", "flight", "c");
        let csr = db.csr_out();
        assert_eq!(csr.num_nodes(), db.num_nodes());
        for v in db.nodes() {
            let direct: Vec<(u32, u32)> = db
                .edges_from(v)
                .map(|(label, to)| (label.0, to as u32))
                .collect();
            let frozen: Vec<(u32, u32)> = csr.edges_from(v as u32).collect();
            assert_eq!(direct, frozen, "node {v}");
        }
    }

    #[test]
    fn csr_in_mirrors_incoming_lists() {
        let mut db = GraphDb::new(city_domain());
        db.add_edge_named("a", "flight", "b");
        db.add_edge_named("c", "rome", "b");
        db.add_edge_named("b", "flight", "a");
        let csr = db.csr_in();
        assert_eq!(csr.num_nodes(), db.num_nodes());
        for v in db.nodes() {
            let direct: Vec<(u32, u32)> = db
                .edges_to(v)
                .map(|(label, from)| (label.0, from as u32))
                .collect();
            let frozen: Vec<(u32, u32)> = csr.edges_from(v as u32).collect();
            assert_eq!(direct, frozen, "node {v}");
        }
    }

    #[test]
    fn remove_edge_deletes_exactly_one_occurrence() {
        let mut db = GraphDb::new(city_domain());
        db.add_edge_named("a", "flight", "b");
        db.add_edge_named("a", "flight", "b");
        db.add_edge_named("b", "flight", "a");
        let (a, b) = (db.node_by_name("a").unwrap(), db.node_by_name("b").unwrap());
        let flight = db.domain().symbol("flight").unwrap();
        assert_eq!(db.edge_multiplicity(a, flight, b), 2);

        assert!(db.remove_edge(a, flight, b));
        assert_eq!(db.num_edges(), 2);
        assert_eq!(db.edge_multiplicity(a, flight, b), 1);
        // Both adjacency directions were patched.
        assert_eq!(db.edges_from(a).count(), 1);
        assert_eq!(db.edges_to(b).count(), 1);

        assert!(db.remove_edge(a, flight, b));
        assert_eq!(db.edge_multiplicity(a, flight, b), 0);
        // Nothing left to remove: reported, not panicked.
        assert!(!db.remove_edge(a, flight, b));
        assert_eq!(db.num_edges(), 1);
        // Nodes survive edge removal.
        assert_eq!(db.num_nodes(), 2);
    }

    #[test]
    fn remove_edge_named_reports_unknown_names() {
        let mut db = GraphDb::new(city_domain());
        db.add_edge_named("a", "flight", "b");
        assert!(!db.remove_edge_named("a", "flight", "zz"));
        assert!(!db.remove_edge_named("a", "train", "b"));
        assert!(db.remove_edge_named("a", "flight", "b"));
        assert_eq!(db.num_edges(), 0);
    }

    #[test]
    fn csr_freezes_track_removal() {
        let mut db = GraphDb::new(city_domain());
        db.add_edge_named("a", "flight", "b");
        db.add_edge_named("b", "rome", "c");
        db.add_edge_named("c", "flight", "a");
        assert!(db.remove_edge_named("b", "rome", "c"));
        let (csr_out, csr_in) = (db.csr_out(), db.csr_in());
        for v in db.nodes() {
            let direct_out: Vec<(u32, u32)> =
                db.edges_from(v).map(|(l, t)| (l.0, t as u32)).collect();
            assert_eq!(direct_out, csr_out.edges_from(v as u32).collect::<Vec<_>>());
            let direct_in: Vec<(u32, u32)> =
                db.edges_to(v).map(|(l, f)| (l.0, f as u32)).collect();
            assert_eq!(direct_in, csr_in.edges_from(v as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn multi_edges_and_self_loops_are_allowed() {
        let mut db = GraphDb::new(city_domain());
        db.add_edge_named("a", "flight", "a");
        db.add_edge_named("a", "flight", "a");
        assert_eq!(db.num_edges(), 2);
        let a = db.node_by_name("a").unwrap();
        assert_eq!(db.edges_from(a).count(), 2);
    }
}
