//! Witness paths: for an answer pair `(x, y)` of a regular path query,
//! reconstruct a concrete database path whose label word conforms to the
//! query.
//!
//! The rewriting machinery only needs the boolean answer relation, but
//! examples and debugging benefit from seeing *why* a pair is in the answer;
//! integration tests also use witnesses to cross-validate the product-BFS
//! evaluator against a path-level definition of the semantics.

use std::collections::{BTreeSet, VecDeque};

use automata::{Nfa, StateId, Symbol};
use regexlang::{thompson, Regex};

use crate::graph::{GraphDb, NodeId};

/// A concrete path in the database: the visited nodes and the labels of the
/// traversed edges (`nodes.len() == labels.len() + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathWitness {
    /// The sequence of visited nodes, starting at the source.
    pub nodes: Vec<NodeId>,
    /// The labels of the traversed edges.
    pub labels: Vec<Symbol>,
}

impl PathWitness {
    /// Length of the path in edges.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the path has no edges (source equals target).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Renders the path as `n0 --a--> n1 --b--> n2`.
    pub fn render(&self, db: &GraphDb) -> String {
        let mut out = db.render_node(self.nodes[0]);
        for (i, &label) in self.labels.iter().enumerate() {
            out.push_str(&format!(
                " --{}--> {}",
                db.domain().name(label),
                db.render_node(self.nodes[i + 1])
            ));
        }
        out
    }
}

/// Finds a shortest witness path from `source` to `target` whose label word
/// is accepted by `query`, if one exists.
pub fn witness_automaton(
    db: &GraphDb,
    query: &Nfa,
    source: NodeId,
    target: NodeId,
) -> Option<PathWitness> {
    db.domain()
        .check_compatible(query.alphabet())
        .expect("query automaton must be over the database domain");
    // BFS over (node, ε-closed query state) product configurations, tracking
    // predecessors for reconstruction.
    type Config = (NodeId, StateId);
    let mut pred: std::collections::BTreeMap<Config, (Config, Symbol)> =
        std::collections::BTreeMap::new();
    let mut seen: BTreeSet<Config> = BTreeSet::new();
    let mut queue: VecDeque<Config> = VecDeque::new();

    let start_states = query.start_configuration();
    for &q in &start_states {
        let cfg = (source, q);
        if seen.insert(cfg) {
            queue.push_back(cfg);
        }
        if q == *start_states.iter().next().unwrap() {
            // no-op: predecessors of start configs stay absent
        }
    }
    // Immediate acceptance: empty path.
    if source == target && start_states.iter().any(|&q| query.is_final(q)) {
        return Some(PathWitness {
            nodes: vec![source],
            labels: vec![],
        });
    }

    let mut goal: Option<Config> = None;
    'bfs: while let Some((node, state)) = queue.pop_front() {
        for (label, next_node) in db.edges_from(node) {
            for next_state in query.successors(state, label) {
                let closure = query.epsilon_closure(&BTreeSet::from([next_state]));
                for &q in &closure {
                    let cfg = (next_node, q);
                    if seen.insert(cfg) {
                        pred.insert(cfg, ((node, state), label));
                        if next_node == target && query.is_final(q) {
                            goal = Some(cfg);
                            break 'bfs;
                        }
                        queue.push_back(cfg);
                    }
                }
            }
        }
    }

    let goal = goal?;
    let mut nodes = vec![goal.0];
    let mut labels = Vec::new();
    let mut cur = goal;
    while let Some(&(prev, label)) = pred.get(&cur) {
        labels.push(label);
        nodes.push(prev.0);
        cur = prev;
    }
    nodes.reverse();
    labels.reverse();
    // Deduplicate consecutive repeated nodes caused by ε-closure bookkeeping:
    // the reconstruction above already records one node per edge, so lengths
    // line up by construction.
    debug_assert_eq!(nodes.len(), labels.len() + 1);
    Some(PathWitness { nodes, labels })
}

/// Finds a shortest witness path for a regex-form query.
pub fn witness_regex(
    db: &GraphDb,
    query: &Regex,
    source: NodeId,
    target: NodeId,
) -> Option<PathWitness> {
    let nfa = thompson(query, db.domain()).expect("query symbols must be database labels");
    witness_automaton(db, &nfa, source, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_str;
    use automata::Alphabet;

    fn chain_db() -> GraphDb {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
        db.add_edge_named("n0", "a", "n1");
        db.add_edge_named("n1", "b", "n2");
        db.add_edge_named("n2", "a", "n1");
        db.add_edge_named("n1", "c", "n1");
        db
    }

    #[test]
    fn witnesses_exist_exactly_for_answer_pairs() {
        let db = chain_db();
        let query = regexlang::parse("a·(b·a+c)*").unwrap();
        let answer = eval_str(&db, "a·(b·a+c)*");
        for x in db.nodes() {
            for y in db.nodes() {
                let witness = witness_regex(&db, &query, x, y);
                assert_eq!(
                    witness.is_some(),
                    answer.contains(&(x, y)),
                    "witness/answer mismatch for ({x},{y})"
                );
                if let Some(w) = witness {
                    // The witness must be a real path of the database.
                    assert_eq!(w.nodes[0], x);
                    assert_eq!(*w.nodes.last().unwrap(), y);
                    for (i, &label) in w.labels.iter().enumerate() {
                        assert!(
                            db.successors(w.nodes[i], label).any(|t| t == w.nodes[i + 1]),
                            "edge {} missing in the database",
                            i
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn witness_is_shortest() {
        let db = chain_db();
        let n0 = db.node_by_name("n0").unwrap();
        let n1 = db.node_by_name("n1").unwrap();
        let w = witness_regex(&db, &regexlang::parse("a·(b·a+c)*").unwrap(), n0, n1).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.render(&db), "n0 --a--> n1");
    }

    #[test]
    fn empty_word_witness_for_reflexive_answers() {
        let db = chain_db();
        let n2 = db.node_by_name("n2").unwrap();
        let w = witness_regex(&db, &regexlang::parse("c*").unwrap(), n2, n2).unwrap();
        assert!(w.is_empty());
        assert_eq!(w.nodes, vec![n2]);
    }

    #[test]
    fn no_witness_for_unreachable_pairs() {
        let db = chain_db();
        let n2 = db.node_by_name("n2").unwrap();
        let n0 = db.node_by_name("n0").unwrap();
        assert!(witness_regex(&db, &regexlang::parse("a").unwrap(), n2, n0).is_none());
    }
}
