//! The sorted-pairs answer representation.
//!
//! The answer to a regular path query is a *set* of node pairs, and the seed
//! stored it as a `BTreeSet<(NodeId, NodeId)>`.  That representation made
//! the parallel evaluator's merge phase its bottleneck: re-inserting every
//! pair of every worker's buffer into a tree costs an allocation-heavy
//! `O(n log n)` with terrible locality, and `parallel_breakdown` measured it
//! at ~40% of the whole parallel wall time.
//!
//! [`SortedPairs`] keeps the same *abstract* contract — an ordered,
//! duplicate-free set of `(source, target)` pairs with the `BTreeSet`-shaped
//! API the rest of the workspace uses (`insert`/`remove`/`contains`/ordered
//! `iter`/`is_subset`) — but stores the pairs in one sorted `Vec`.  Lookups
//! are binary searches, iteration is a slice walk, and bulk construction is
//! where it earns its keep:
//!
//! * [`SortedPairs::from_sorted_runs`] k-way-merges the per-worker runs of
//!   the parallel evaluator without re-hashing or tree insertion (the runs
//!   are disjoint by construction — each source node belongs to exactly one
//!   chunk — so the merge never even compares for duplicates across runs),
//! * [`SortedPairs::extend`] sorts the incoming batch once and splices it in
//!   a single merge pass (with an append fast path when the batch lands
//!   entirely past the current tail, as identity pairs of freshly added
//!   nodes do), and
//! * [`SortedPairs::remove_batch`] deletes a sorted batch in one sweep —
//!   the shape DRed over-deletion needs, where per-element `Vec::remove`
//!   would degrade to `O(n·k)`.
//!
//! Point `insert`/`remove` remain available for the seed-era call sites and
//! tests; they are `O(n)` per call and documented as such.

use crate::graph::NodeId;

/// An ordered, duplicate-free set of `(source, target)` node pairs backed by
/// one sorted `Vec`.
///
/// This is the concrete type behind [`crate::Answer`].  Element order is the
/// natural tuple order, identical to the `BTreeSet` representation it
/// replaced, so iteration order — and therefore every rendered answer and
/// serialized payload — is unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SortedPairs {
    /// Strictly increasing in tuple order.
    pairs: Vec<(NodeId, NodeId)>,
}

impl SortedPairs {
    /// Creates an empty answer set.
    pub fn new() -> Self {
        SortedPairs { pairs: Vec::new() }
    }

    /// Number of pairs in the set.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether `pair` is in the set (binary search, `O(log n)`).
    pub fn contains(&self, pair: &(NodeId, NodeId)) -> bool {
        self.pairs.binary_search(pair).is_ok()
    }

    /// Inserts one pair, returning `true` if it was absent.
    ///
    /// `O(n)` worst case (a memmove of the tail); bulk updates should use
    /// [`SortedPairs::extend`] instead, which merges a whole batch in one
    /// pass.
    pub fn insert(&mut self, pair: (NodeId, NodeId)) -> bool {
        match self.pairs.binary_search(&pair) {
            Ok(_) => false,
            Err(at) => {
                self.pairs.insert(at, pair);
                true
            }
        }
    }

    /// Removes one pair, returning `true` if it was present.
    ///
    /// `O(n)` worst case; bulk deletions should use
    /// [`SortedPairs::remove_batch`].
    pub fn remove(&mut self, pair: &(NodeId, NodeId)) -> bool {
        match self.pairs.binary_search(pair) {
            Ok(at) => {
                self.pairs.remove(at);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates the pairs in ascending tuple order.
    pub fn iter(&self) -> std::slice::Iter<'_, (NodeId, NodeId)> {
        self.pairs.iter()
    }

    /// The pairs as one sorted slice.
    pub fn as_slice(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Whether every pair of `self` is in `other` (one merge walk,
    /// `O(n + m)`).
    pub fn is_subset(&self, other: &SortedPairs) -> bool {
        if self.pairs.len() > other.pairs.len() {
            return false;
        }
        let mut theirs = other.pairs.iter();
        'mine: for pair in &self.pairs {
            for candidate in theirs.by_ref() {
                match candidate.cmp(pair) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'mine,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Removes every pair of `batch` that is present, in one merge sweep
    /// over the set (`O(n + k log k)` for a `k`-pair batch), and returns the
    /// pairs actually removed, sorted and duplicate-free.
    ///
    /// `batch` may be unsorted and may contain duplicates or absent pairs;
    /// both are ignored.  This is the DRed over-deletion primitive: the
    /// delta sweeps enumerate candidate pairs edge by edge, and the repair
    /// needs to know which of them were really cached.
    pub fn remove_batch(&mut self, batch: &[(NodeId, NodeId)]) -> Vec<(NodeId, NodeId)> {
        if batch.is_empty() || self.pairs.is_empty() {
            return Vec::new();
        }
        let mut doomed: Vec<(NodeId, NodeId)> = batch.to_vec();
        doomed.sort_unstable();
        doomed.dedup();

        let mut removed = Vec::new();
        let mut next = 0usize; // cursor into `doomed`
        self.pairs.retain(|&pair| {
            while next < doomed.len() && doomed[next] < pair {
                next += 1;
            }
            if next < doomed.len() && doomed[next] == pair {
                removed.push(pair);
                next += 1;
                false
            } else {
                true
            }
        });
        removed
    }

    /// Builds the answer from the per-worker runs of the parallel evaluator:
    /// each run sorted ascending, runs mutually disjoint (every source node's
    /// sweep ran in exactly one chunk, on exactly one worker).
    ///
    /// One k-way heap merge, `O(n log k)` for `n` total pairs across `k`
    /// runs — no hashing, no tree insertion, no duplicate checks.  This is
    /// what replaced the `BTreeSet` merge the breakdown benchmarks blamed
    /// for ~250 ms at |V|=2000.
    pub fn from_sorted_runs(runs: Vec<Vec<(u32, u32)>>) -> SortedPairs {
        let mut runs: Vec<Vec<(u32, u32)>> = runs.into_iter().filter(|r| !r.is_empty()).collect();
        let total: usize = runs.iter().map(Vec::len).sum();
        let widen = |(x, y): (u32, u32)| (x as NodeId, y as NodeId);
        match runs.len() {
            0 => return SortedPairs::new(),
            1 => {
                let run = runs.pop().expect("one run");
                debug_assert!(run.windows(2).all(|w| w[0] < w[1]), "run must be sorted");
                return SortedPairs {
                    pairs: run.into_iter().map(widen).collect(),
                };
            }
            _ => {}
        }
        for run in &runs {
            debug_assert!(run.windows(2).all(|w| w[0] < w[1]), "runs must be sorted");
        }

        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut pairs = Vec::with_capacity(total);
        // Heap of (next pair, run index); cursors track each run's position.
        let mut cursors = vec![0usize; runs.len()];
        let mut heap: BinaryHeap<Reverse<((u32, u32), usize)>> = runs
            .iter()
            .enumerate()
            .map(|(i, run)| Reverse((run[0], i)))
            .collect();
        while let Some(Reverse((pair, run))) = heap.pop() {
            pairs.push(widen(pair));
            cursors[run] += 1;
            if let Some(&next) = runs[run].get(cursors[run]) {
                heap.push(Reverse((next, run)));
            }
        }
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]), "runs must be disjoint");
        SortedPairs { pairs }
    }
}

impl Extend<(NodeId, NodeId)> for SortedPairs {
    /// Bulk insertion: sorts the incoming batch once and merges it in a
    /// single pass (`O(n + k log k)`), with an `O(k)` append fast path when
    /// the whole batch sorts after the current tail.
    fn extend<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, batch: I) {
        let mut incoming: Vec<(NodeId, NodeId)> = batch.into_iter().collect();
        if incoming.is_empty() {
            return;
        }
        incoming.sort_unstable();
        incoming.dedup();
        match self.pairs.last() {
            None => {
                self.pairs = incoming;
            }
            Some(&tail) if incoming[0] > tail => {
                // Everything lands past the tail (e.g. identity pairs of
                // freshly added nodes): plain append, no merge.
                self.pairs.extend(incoming);
            }
            _ => {
                let old = std::mem::take(&mut self.pairs);
                self.pairs = Vec::with_capacity(old.len() + incoming.len());
                let (mut a, mut b) = (old.into_iter().peekable(), incoming.into_iter().peekable());
                loop {
                    match (a.peek(), b.peek()) {
                        (Some(x), Some(y)) => match x.cmp(y) {
                            std::cmp::Ordering::Less => self.pairs.push(a.next().expect("peeked")),
                            std::cmp::Ordering::Greater => {
                                self.pairs.push(b.next().expect("peeked"))
                            }
                            std::cmp::Ordering::Equal => {
                                self.pairs.push(a.next().expect("peeked"));
                                b.next();
                            }
                        },
                        (Some(_), None) => self.pairs.push(a.next().expect("peeked")),
                        (None, Some(_)) => self.pairs.push(b.next().expect("peeked")),
                        (None, None) => break,
                    }
                }
            }
        }
    }
}

impl FromIterator<(NodeId, NodeId)> for SortedPairs {
    fn from_iter<I: IntoIterator<Item = (NodeId, NodeId)>>(iter: I) -> Self {
        let mut pairs: Vec<(NodeId, NodeId)> = iter.into_iter().collect();
        pairs.sort_unstable();
        pairs.dedup();
        SortedPairs { pairs }
    }
}

impl<const N: usize> From<[(NodeId, NodeId); N]> for SortedPairs {
    fn from(pairs: [(NodeId, NodeId); N]) -> Self {
        pairs.into_iter().collect()
    }
}

impl IntoIterator for SortedPairs {
    type Item = (NodeId, NodeId);
    type IntoIter = std::vec::IntoIter<(NodeId, NodeId)>;

    fn into_iter(self) -> Self::IntoIter {
        self.pairs.into_iter()
    }
}

impl<'a> IntoIterator for &'a SortedPairs {
    type Item = &'a (NodeId, NodeId);
    type IntoIter = std::slice::Iter<'a, (NodeId, NodeId)>;

    fn into_iter(self) -> Self::IntoIter {
        self.pairs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn reference(pairs: &SortedPairs) -> BTreeSet<(NodeId, NodeId)> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn insert_remove_contains_behave_like_a_set() {
        let mut s = SortedPairs::new();
        assert!(s.is_empty());
        assert!(s.insert((3, 4)));
        assert!(s.insert((1, 2)));
        assert!(!s.insert((3, 4)), "duplicate insert is a no-op");
        assert_eq!(s.len(), 2);
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
        assert!(s.remove(&(1, 2)));
        assert!(!s.remove(&(1, 2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_sorted_regardless_of_insertion_order() {
        let s: SortedPairs = [(5, 0), (0, 5), (3, 3), (0, 1)].into();
        let got: Vec<_> = s.iter().copied().collect();
        assert_eq!(got, vec![(0, 1), (0, 5), (3, 3), (5, 0)]);
    }

    #[test]
    fn extend_merges_dedups_and_takes_the_append_fast_path() {
        let mut s: SortedPairs = [(1, 1), (4, 4)].into();
        s.extend([(0, 9), (4, 4), (2, 2), (2, 2)]);
        assert_eq!(s.as_slice(), &[(0, 9), (1, 1), (2, 2), (4, 4)]);
        // Append fast path: everything past the tail.
        s.extend([(9, 0), (8, 8)]);
        assert_eq!(s.as_slice(), &[(0, 9), (1, 1), (2, 2), (4, 4), (8, 8), (9, 0)]);
        // Extending with nothing changes nothing.
        s.extend(std::iter::empty());
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn is_subset_matches_the_btreeset_semantics() {
        let small: SortedPairs = [(1, 2), (3, 4)].into();
        let big: SortedPairs = [(0, 0), (1, 2), (3, 4), (9, 9)].into();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(SortedPairs::new().is_subset(&small));
        assert!(small.is_subset(&small));
        let disjoint: SortedPairs = [(7, 7)].into();
        assert!(!disjoint.is_subset(&big));
    }

    #[test]
    fn remove_batch_removes_present_pairs_and_reports_them() {
        let mut s: SortedPairs = [(0, 0), (1, 1), (2, 2), (3, 3)].into();
        // Unsorted batch with duplicates and absent pairs.
        let removed = s.remove_batch(&[(3, 3), (9, 9), (1, 1), (1, 1)]);
        assert_eq!(removed, vec![(1, 1), (3, 3)]);
        assert_eq!(s.as_slice(), &[(0, 0), (2, 2)]);
        assert!(s.remove_batch(&[]).is_empty());
        let mut empty = SortedPairs::new();
        assert!(empty.remove_batch(&[(0, 0)]).is_empty());
    }

    #[test]
    fn from_sorted_runs_merges_disjoint_worker_runs() {
        let runs = vec![
            vec![(0u32, 3u32), (2, 1)],
            vec![],
            vec![(1, 0), (1, 9)],
            vec![(0, 7), (3, 3)],
        ];
        let merged = SortedPairs::from_sorted_runs(runs);
        assert_eq!(
            merged.as_slice(),
            &[(0, 3), (0, 7), (1, 0), (1, 9), (2, 1), (3, 3)]
        );
        assert!(SortedPairs::from_sorted_runs(vec![]).is_empty());
        let single = SortedPairs::from_sorted_runs(vec![vec![(5, 5)]]);
        assert_eq!(single.as_slice(), &[(5, 5)]);
    }

    #[test]
    fn randomized_differential_against_btreeset() {
        // Deterministic xorshift so the test needs no rand dependency here.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let mut ours = SortedPairs::new();
            let mut truth: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
            for _ in 0..200 {
                let pair = ((next() % 16) as NodeId, (next() % 16) as NodeId);
                match next() % 3 {
                    0 => assert_eq!(ours.insert(pair), truth.insert(pair)),
                    1 => assert_eq!(ours.remove(&pair), truth.remove(&pair)),
                    _ => assert_eq!(ours.contains(&pair), truth.contains(&pair)),
                }
            }
            assert_eq!(reference(&ours), truth);
            assert_eq!(ours.len(), truth.len());
        }
    }
}
