//! Benchmark E5 (+ ablations #3/#4): cost of the maximal-rewriting
//! construction as the query grows, with and without minimizing `A_d`, with
//! batched vs per-pair reachability tests, and the dense pipeline vs the
//! seed's tree baseline.

use bench::{random_problem, RandomProblemConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use rewriter::{
    compute_maximal_rewriting_with, compute_maximal_rewriting_with_baseline, RewriterOptions,
};

fn bench_rewriting(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_rewriting");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &query_size in &[8usize, 16, 24] {
        let cfg = RandomProblemConfig {
            alphabet_size: 3,
            query_size,
            num_views: 3,
            view_size: 5,
        };
        let problems: Vec<_> = (0..4).map(|seed| random_problem(&cfg, seed)).collect();
        for (label, options) in [
            (
                "minimized+batched",
                RewriterOptions {
                    minimize_query_dfa: true,
                    use_glushkov: false,
                    per_pair_reachability: false,
                },
            ),
            (
                "unminimized",
                RewriterOptions {
                    minimize_query_dfa: false,
                    use_glushkov: false,
                    per_pair_reachability: false,
                },
            ),
            (
                "per_pair",
                RewriterOptions {
                    minimize_query_dfa: true,
                    use_glushkov: false,
                    per_pair_reachability: true,
                },
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, query_size),
                &problems,
                |b, problems| {
                    b.iter(|| {
                        for problem in problems {
                            std::hint::black_box(compute_maximal_rewriting_with(problem, &options));
                        }
                    })
                },
            );
        }
        // The seed's tree pipeline on the same problems — the yardstick the
        // `rewriting` rows of BENCH_rpq.json track.
        group.bench_with_input(
            BenchmarkId::new("tree_baseline", query_size),
            &problems,
            |b, problems| {
                b.iter(|| {
                    for problem in problems {
                        std::hint::black_box(compute_maximal_rewriting_with_baseline(
                            problem,
                            &RewriterOptions::default(),
                        ));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rewriting);
criterion_main!(benches);
