//! Benchmark E10: the cost structure of view-based answering — materializing
//! the view extensions, building the view graph, and evaluating the rewriting
//! over it — against direct evaluation of the query on the base data.

use bench::random_rpq_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use rpq::materialize_views;

fn bench_view_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_eval");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &(nodes, edges) in &[(50usize, 150usize), (150, 600), (300, 1200)] {
        let workload = random_rpq_workload(nodes, edges, 7);
        let rewriting = rpq::rewrite_rpq(&workload.problem).expect("workload rewrites");
        let views = materialize_views(&workload.db, &workload.problem);
        let over_views = automata::Nfa::from_dfa(&rewriting.maximal.automaton)
            .with_alphabet(views.view_alphabet().clone());

        group.bench_with_input(
            BenchmarkId::new("materialize_views", nodes),
            &workload,
            |b, w| b.iter(|| std::hint::black_box(materialize_views(&w.db, &w.problem))),
        );
        group.bench_with_input(
            BenchmarkId::new("eval_rewriting_over_views", nodes),
            &(views, over_views),
            |b, (views, over_views)| {
                b.iter(|| std::hint::black_box(views.eval_over_views(over_views)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("direct_eval_baseline", nodes),
            &workload,
            |b, w| {
                b.iter(|| {
                    std::hint::black_box(rpq::answer_rpq(&w.db, &w.problem.query, &w.problem.theory))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_view_eval);
criterion_main!(benches);
