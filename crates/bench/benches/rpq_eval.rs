//! Benchmark E9: end-to-end regular-path-query processing — rewriting an RPQ
//! over views and evaluating it on databases of growing size.

use bench::random_rpq_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_rpq_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpq_eval");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &(nodes, edges) in &[(50usize, 150usize), (100, 400), (200, 800)] {
        let workload = random_rpq_workload(nodes, edges, 42);
        let rewriting = rpq::rewrite_rpq(&workload.problem).expect("workload rewrites");
        group.bench_with_input(
            BenchmarkId::new("rewrite_only", nodes),
            &workload,
            |b, w| b.iter(|| std::hint::black_box(rpq::rewrite_rpq(&w.problem).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("direct_eval", nodes),
            &workload,
            |b, w| {
                b.iter(|| {
                    std::hint::black_box(rpq::answer_rpq(&w.db, &w.problem.query, &w.problem.theory))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("eval_via_views", nodes),
            &(workload, rewriting),
            |b, (w, rewriting)| {
                b.iter(|| {
                    std::hint::black_box(rpq::answer_rewriting_over_views(
                        &w.db, &w.problem, rewriting,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rpq_eval);
criterion_main!(benches);
