//! Benchmark E9: end-to-end regular-path-query processing — rewriting an RPQ
//! over views and evaluating it on databases of growing size — plus the
//! dense product-BFS evaluator vs the seed's tree-based baseline on
//! |V| ≥ 1000 generated graphs.

use bench::random_rpq_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphdb::{eval_automaton, eval_automaton_baseline, eval_dense};
use std::time::Duration;

fn bench_rpq_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpq_eval");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &(nodes, edges) in &[(50usize, 150usize), (100, 400), (200, 800)] {
        let workload = random_rpq_workload(nodes, edges, 42);
        let rewriting = rpq::rewrite_rpq(&workload.problem).expect("workload rewrites");
        group.bench_with_input(
            BenchmarkId::new("rewrite_only", nodes),
            &workload,
            |b, w| b.iter(|| std::hint::black_box(rpq::rewrite_rpq(&w.problem).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("direct_eval", nodes),
            &workload,
            |b, w| {
                b.iter(|| {
                    std::hint::black_box(rpq::answer_rpq(&w.db, &w.problem.query, &w.problem.theory))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("eval_via_views", nodes),
            &(workload, rewriting),
            |b, (w, rewriting)| {
                b.iter(|| {
                    std::hint::black_box(rpq::answer_rewriting_over_views(
                        &w.db, &w.problem, rewriting,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Head-to-head: the dense product-BFS evaluator vs the seed's tree-based
/// one, on the same grounded query over generated graphs with |V| ≥ 1000.
fn bench_dense_vs_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpq_eval_dense_vs_baseline");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for &(nodes, edges) in &[(1000usize, 4000usize), (2000, 8000)] {
        let workload = random_rpq_workload(nodes, edges, 42);
        let grounded = workload.problem.query.ground(&workload.problem.theory);
        let nfa = regexlang::thompson(&grounded, workload.db.domain())
            .expect("grounded query is over the domain");
        let frozen = automata::DenseNfa::from_nfa(&nfa);
        group.bench_with_input(
            BenchmarkId::new("dense", nodes),
            &(&workload.db, &nfa),
            |b, (db, nfa)| b.iter(|| std::hint::black_box(eval_automaton(db, nfa).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("dense_prefrozen", nodes),
            &(&workload.db, &frozen),
            |b, (db, frozen)| b.iter(|| std::hint::black_box(eval_dense(db, frozen).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("baseline", nodes),
            &(&workload.db, &nfa),
            |b, (db, nfa)| b.iter(|| std::hint::black_box(eval_automaton_baseline(db, nfa).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rpq_eval, bench_dense_vs_baseline);
criterion_main!(benches);
