//! Benchmark E6 (+ ablation #2): the exponential subset construction on the
//! worst-case family `(a+b)*·a·(a+b)^k`, comparing the Thompson and Glushkov
//! front-ends — plus the dense-core vs tree-based baseline comparison on
//! random NFAs (n ≥ 64 states) and on the worst-case family itself.

use automata::{
    determinize_with_subsets, determinize_with_subsets_baseline, random_nfa, Alphabet,
    RandomAutomatonConfig,
};
use bench::determinization_family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regexlang::{glushkov, thompson};
use std::time::Duration;

fn bench_determinization(c: &mut Criterion) {
    let mut group = c.benchmark_group("determinization");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &k in &[4usize, 8, 12] {
        let (expr, _) = determinization_family(k);
        let alphabet = expr.inferred_alphabet();
        group.bench_with_input(BenchmarkId::new("thompson", k), &expr, |b, expr| {
            b.iter(|| {
                let nfa = thompson(expr, &alphabet).unwrap();
                std::hint::black_box(automata::determinize(&nfa).num_states())
            })
        });
        group.bench_with_input(BenchmarkId::new("glushkov", k), &expr, |b, expr| {
            b.iter(|| {
                let nfa = glushkov(expr, &alphabet).unwrap();
                std::hint::black_box(automata::determinize(&nfa).num_states())
            })
        });
        group.bench_with_input(BenchmarkId::new("plus_minimization", k), &expr, |b, expr| {
            b.iter(|| {
                let nfa = thompson(expr, &alphabet).unwrap();
                std::hint::black_box(automata::minimize(&automata::determinize(&nfa)).num_states())
            })
        });
    }
    group.finish();
}

/// Head-to-head: the dense subset construction vs the seed's tree-based one,
/// on the same inputs.  `dense`/`baseline` pairs share a parameter so the
/// speedup reads off directly.
fn bench_dense_vs_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("determinization_dense_vs_baseline");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    // Random NFAs, n ≥ 64 states over three symbols.
    let alpha = Alphabet::from_chars(['a', 'b', 'c']).expect("distinct");
    for &n in &[64usize, 128] {
        let config = RandomAutomatonConfig {
            num_states: n,
            density: 0.02,
            final_probability: 0.2,
        };
        let nfa = random_nfa(&alpha, &config, 42);
        group.bench_with_input(BenchmarkId::new("dense_random", n), &nfa, |b, nfa| {
            b.iter(|| std::hint::black_box(determinize_with_subsets(nfa).dfa.num_states()))
        });
        group.bench_with_input(BenchmarkId::new("baseline_random", n), &nfa, |b, nfa| {
            b.iter(|| {
                std::hint::black_box(determinize_with_subsets_baseline(nfa).dfa.num_states())
            })
        });
    }

    // The exponential worst-case family at k = 12 (Thompson front end).
    let (expr, _) = determinization_family(12);
    let family_alpha = expr.inferred_alphabet();
    let family_nfa = thompson(&expr, &family_alpha).unwrap();
    group.bench_with_input(
        BenchmarkId::new("dense_family", 12),
        &family_nfa,
        |b, nfa| b.iter(|| std::hint::black_box(determinize_with_subsets(nfa).dfa.num_states())),
    );
    group.bench_with_input(
        BenchmarkId::new("baseline_family", 12),
        &family_nfa,
        |b, nfa| {
            b.iter(|| std::hint::black_box(determinize_with_subsets_baseline(nfa).dfa.num_states()))
        },
    );
    group.finish();
}

criterion_group!(benches, bench_determinization, bench_dense_vs_baseline);
criterion_main!(benches);
