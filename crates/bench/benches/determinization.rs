//! Benchmark E6 (+ ablation #2): the exponential subset construction on the
//! worst-case family `(a+b)*·a·(a+b)^k`, comparing the Thompson and Glushkov
//! front-ends.

use bench::determinization_family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use regexlang::{glushkov, thompson};

fn bench_determinization(c: &mut Criterion) {
    let mut group = c.benchmark_group("determinization");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &k in &[4usize, 8, 12] {
        let (expr, _) = determinization_family(k);
        let alphabet = expr.inferred_alphabet();
        group.bench_with_input(BenchmarkId::new("thompson", k), &expr, |b, expr| {
            b.iter(|| {
                let nfa = thompson(expr, &alphabet).unwrap();
                std::hint::black_box(automata::determinize(&nfa).num_states())
            })
        });
        group.bench_with_input(BenchmarkId::new("glushkov", k), &expr, |b, expr| {
            b.iter(|| {
                let nfa = glushkov(expr, &alphabet).unwrap();
                std::hint::black_box(automata::determinize(&nfa).num_states())
            })
        });
        group.bench_with_input(BenchmarkId::new("plus_minimization", k), &expr, |b, expr| {
            b.iter(|| {
                let nfa = thompson(expr, &alphabet).unwrap();
                std::hint::black_box(automata::minimize(&automata::determinize(&nfa)).num_states())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_determinization);
criterion_main!(benches);
