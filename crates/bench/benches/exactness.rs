//! Benchmark E11 (+ ablation #1): the exactness check of Theorem 2.3 with the
//! on-the-fly containment of Theorem 3.2 vs the explicit complement of the
//! expansion automaton.

use bench::{random_problem, RandomProblemConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use rewriter::{check_exactness_with, compute_maximal_rewriting, ExactnessStrategy};

fn bench_exactness(c: &mut Criterion) {
    let mut group = c.benchmark_group("exactness_check");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &query_size in &[8usize, 14, 20] {
        let cfg = RandomProblemConfig {
            alphabet_size: 3,
            query_size,
            num_views: 3,
            view_size: 5,
        };
        // Pre-compute the rewritings so only the exactness check is timed.
        let prepared: Vec<_> = (0..4)
            .map(|seed| {
                let problem = random_problem(&cfg, seed * 7 + 1);
                let rewriting = compute_maximal_rewriting(&problem);
                (problem, rewriting)
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("on_the_fly", query_size),
            &prepared,
            |b, prepared| {
                b.iter(|| {
                    for (problem, rewriting) in prepared {
                        std::hint::black_box(check_exactness_with(
                            rewriting,
                            &problem.views,
                            ExactnessStrategy::OnTheFly,
                        ));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("explicit_complement", query_size),
            &prepared,
            |b, prepared| {
                b.iter(|| {
                    for (problem, rewriting) in prepared {
                        std::hint::black_box(check_exactness_with(
                            rewriting,
                            &problem.views,
                            ExactnessStrategy::ExplicitComplement,
                        ));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exactness);
criterion_main!(benches);
