//! Engine benchmarks: the sharded parallel evaluator vs the sequential one
//! on |V| ≥ 1000 workloads, and incremental view maintenance (delta
//! product-BFS per inserted edge) vs re-materializing after every insertion.

use bench::random_rpq_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{available_threads, eval_csr_parallel, QueryEngine};
use graphdb::eval_csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn frozen_query(workload: &bench::RpqWorkload) -> automata::DenseNfa {
    let grounded = workload.problem.query.ground(&workload.problem.theory);
    let nfa = regexlang::thompson(&grounded, workload.db.domain())
        .expect("grounded query is over the domain");
    automata::DenseNfa::from_nfa(&nfa)
}

/// Sequential vs parallel product-BFS over the same frozen query and CSR.
fn bench_parallel_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_parallel");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let threads = available_threads();
    for &(nodes, edges) in &[(1000usize, 4000usize), (2000, 8000)] {
        let workload = random_rpq_workload(nodes, edges, 42);
        let frozen = frozen_query(&workload);
        let csr = workload.db.csr_out();
        group.bench_with_input(
            BenchmarkId::new("sequential", nodes),
            &(&csr, &frozen),
            |b, (csr, frozen)| b.iter(|| std::hint::black_box(eval_csr(csr, frozen).len())),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("parallel_x{threads}"), nodes),
            &(&csr, &frozen),
            |b, (csr, frozen)| {
                b.iter(|| std::hint::black_box(eval_csr_parallel(csr, frozen, threads).len()))
            },
        );
    }
    group.finish();
}

/// Keeping one view extension current across 8 edge insertions: delta repair
/// through the engine vs a full re-evaluation after every insertion.  Both
/// sides pay the same setup (database clone, initial materialization).
fn bench_incremental_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_incremental");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let workload = random_rpq_workload(1000, 4000, 7);
    let grounded = workload.problem.query.ground(&workload.problem.theory);
    let frozen = frozen_query(&workload);
    let mut rng = StdRng::seed_from_u64(99);
    let inserts: Vec<(usize, automata::Symbol, usize)> = (0..8)
        .map(|_| {
            (
                rng.gen_range(0..workload.db.num_nodes()),
                automata::Symbol(rng.gen_range(0..workload.db.domain().len()) as u32),
                rng.gen_range(0..workload.db.num_nodes()),
            )
        })
        .collect();

    group.bench_with_input(
        BenchmarkId::new("delta_repair", "v1000_plus8"),
        &(&workload, &grounded, &inserts),
        |b, (workload, grounded, inserts)| {
            b.iter(|| {
                let mut engine = QueryEngine::new(workload.db.clone());
                engine.register_view("q", (*grounded).clone());
                engine.view_extension("q");
                for &(f, l, t) in inserts.iter() {
                    engine.add_edge(f, l, t);
                }
                std::hint::black_box(engine.view_extension("q").map(|e| e.len()))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("rematerialize", "v1000_plus8"),
        &(&workload, &frozen, &inserts),
        |b, (workload, frozen, inserts)| {
            b.iter(|| {
                let mut db = workload.db.clone();
                let mut size = eval_csr(&db.csr_out(), frozen).len();
                for &(f, l, t) in inserts.iter() {
                    db.add_edge(f, l, t);
                    size = eval_csr(&db.csr_out(), frozen).len();
                }
                std::hint::black_box(size)
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_parallel_eval, bench_incremental_maintenance);
criterion_main!(benches);
