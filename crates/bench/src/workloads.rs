//! Workload generators shared by the Criterion benchmarks and the
//! `experiments` binary.
//!
//! Every generator is seeded and deterministic so the experiment tables in
//! EXPERIMENTS.md can be regenerated exactly.

use automata::{Alphabet, Nfa};
use graphdb::{random_graph, GraphDb, RandomGraphConfig};
use regexlang::{random_regex, random_views, RandomRegexConfig, Regex};
use rewriter::{RewriteProblem, View, ViewSet};
use rpq::RpqRewriteProblem;

/// Parameters for random rewriting problems (experiments E5/E11).
#[derive(Debug, Clone)]
pub struct RandomProblemConfig {
    /// Number of symbols of the base alphabet Σ.
    pub alphabet_size: usize,
    /// Target AST size of the query expression.
    pub query_size: usize,
    /// Number of views.
    pub num_views: usize,
    /// Target AST size of each view expression.
    pub view_size: usize,
}

impl Default for RandomProblemConfig {
    fn default() -> Self {
        Self {
            alphabet_size: 3,
            query_size: 12,
            num_views: 3,
            view_size: 5,
        }
    }
}

/// Generates a random rewriting problem (query + views over a shared
/// alphabet).
pub fn random_problem(config: &RandomProblemConfig, seed: u64) -> RewriteProblem {
    let alphabet = alphabet_of_size(config.alphabet_size);
    let query_cfg = RandomRegexConfig {
        target_size: config.query_size,
        ..Default::default()
    };
    let view_cfg = RandomRegexConfig {
        target_size: config.view_size,
        ..Default::default()
    };
    let query = random_regex(&alphabet, &query_cfg, seed);
    let views: Vec<View> = random_views(&alphabet, &view_cfg, config.num_views, seed ^ 0x9e37)
        .into_iter()
        .enumerate()
        .map(|(i, def)| View::new(format!("v{i}"), ensure_nonempty(def, &alphabet)))
        .collect();
    let view_set = ViewSet::new(alphabet, views).expect("generated views are well-formed");
    RewriteProblem::new(query, view_set).expect("generated query is over the alphabet")
}

/// The classic determinization worst case `(a+b)*·a·(a+b)^k` (experiment E6):
/// its minimal DFA needs `2^(k+1)` states.
pub fn determinization_family(k: usize) -> (Regex, Nfa) {
    let alphabet = Alphabet::from_chars(['a', 'b']).expect("distinct");
    let any = Regex::symbol("a").or(Regex::symbol("b"));
    let mut expr = any.clone().star().then(Regex::symbol("a"));
    for _ in 0..k {
        expr = expr.then(any.clone());
    }
    let nfa = regexlang::thompson(&expr, &alphabet).expect("expression over {a,b}");
    (expr, nfa)
}

/// The determinization blow-up family turned into a rewriting problem: the
/// query `(a+b)*·a·(a+b)^k` (whose `A_d` needs `2^(k+1)` states) with the
/// identity views plus one composite view.  Stresses every stage of the
/// Theorem 2.2 construction — subset construction, minimization, and one
/// reachability sweep per view over the exponentially large `A_d` — which is
/// exactly where the dense pipeline separates from the tree baseline.
pub fn blowup_rewriting_problem(k: usize) -> RewriteProblem {
    let (expr, _) = determinization_family(k);
    let alphabet = Alphabet::from_chars(['a', 'b']).expect("distinct");
    let views = vec![
        View::new("va", Regex::symbol("a")),
        View::new("vb", Regex::symbol("b")),
        View::new("vab", Regex::symbol("a").then(Regex::symbol("b"))),
    ];
    let view_set = ViewSet::new(alphabet, views).expect("fixed views are well-formed");
    RewriteProblem::new(expr, view_set).expect("family query is over {a,b}")
}

/// A full RPQ workload: a database, a label-based RPQ rewriting problem, and
/// the query string, for experiments E9/E10.
#[derive(Debug, Clone)]
pub struct RpqWorkload {
    /// The database to evaluate over.
    pub db: GraphDb,
    /// The rewriting problem (query + views + elementary theory).
    pub problem: RpqRewriteProblem,
}

/// Generates an RPQ workload over a `{a,b,c,d}` label domain: a random graph
/// plus the Figure 1-style query and views lifted to that domain.
pub fn random_rpq_workload(num_nodes: usize, num_edges: usize, seed: u64) -> RpqWorkload {
    let problem = RpqRewriteProblem::parse_labels(
        "a·(b·a+c)*·d?",
        [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c"), ("e4", "d")],
    )
    .expect("fixed workload problem is well-formed");
    let domain = problem.theory.domain().clone();
    let db = random_graph(
        &domain,
        &RandomGraphConfig {
            num_nodes,
            num_edges,
        },
        seed,
    );
    RpqWorkload { db, problem }
}

fn alphabet_of_size(k: usize) -> Alphabet {
    let letters: Vec<String> = (0..k.clamp(1, 26))
        .map(|i| ((b'a' + i as u8) as char).to_string())
        .collect();
    Alphabet::from_names(letters).expect("distinct letters")
}

/// Random view definitions occasionally denote the empty language (e.g. `∅`
/// sub-expressions); replace those by a single symbol so the view set stays
/// meaningful.
fn ensure_nonempty(def: Regex, alphabet: &Alphabet) -> Regex {
    if def.is_syntactically_empty() {
        Regex::symbol(alphabet.names().next().expect("nonempty alphabet"))
    } else {
        def
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::determinize;

    #[test]
    fn random_problems_are_reproducible_and_solvable() {
        let cfg = RandomProblemConfig::default();
        let p1 = random_problem(&cfg, 3);
        let p2 = random_problem(&cfg, 3);
        assert_eq!(p1.query, p2.query);
        assert_eq!(p1.views.len(), cfg.num_views);
        // The pipeline runs without panicking on a handful of seeds.
        for seed in 0..5 {
            let problem = random_problem(&cfg, seed);
            let report = rewriter::run_and_report(&problem);
            assert!(!report.query.is_empty());
        }
    }

    #[test]
    fn determinization_family_blows_up() {
        let (expr, nfa) = determinization_family(6);
        assert!(expr.size() > 6);
        let dfa = determinize(&nfa);
        assert!(dfa.num_states() >= 1 << 7);
    }

    #[test]
    fn rpq_workload_is_consistent() {
        let w = random_rpq_workload(30, 90, 11);
        assert_eq!(w.db.num_nodes(), 30);
        assert_eq!(w.db.num_edges(), 90);
        assert!(w.db.domain().is_compatible(w.problem.theory.domain()));
        let rewriting = rpq::rewrite_rpq(&w.problem).unwrap();
        let cmp = rpq::compare_on_database(&w.db, &w.problem, &rewriting);
        assert!(cmp.sound);
    }
}
