//! Experiment harness: regenerates every figure, worked example, and
//! complexity-scaling experiment of the paper (see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded results).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin experiments            # quick set (E1–E4, E12)
//! cargo run --release -p bench --bin experiments -- all     # everything
//! cargo run --release -p bench --bin experiments -- e5 e6   # selected ids
//! ```
//!
//! Results are printed as human-readable tables and also dumped as JSON to
//! `target/experiments/<id>.json` so EXPERIMENTS.md can be regenerated.
//!
//! Default, `all`, and `bench` runs additionally refresh `BENCH_rpq.json`
//! in the working directory: dense-core vs tree-baseline timings for
//! determinization and RPQ evaluation, plus the engine's parallel,
//! incremental, and concurrent-snapshot workloads, so the perf trajectory
//! of the hot paths is tracked from PR to PR.  Targeted runs
//! (`experiments e6`) skip the snapshot to stay fast; `experiments bench`
//! emits only the snapshot, and `experiments rewriting` / `experiments
//! concurrent` / `experiments deletion` / `experiments service` /
//! `experiments metrics` / `experiments parallel` run those CI smoke
//! workloads alone (honoring `BENCH_THREADS` for the reader, client, and
//! worker counts).  The `metrics` smoke
//! doubles as the telemetry overhead guard: it exits nonzero if enabling
//! collection costs more than 5% on the |V| = 1000 eval workload, or if a
//! traced query's explain payload fails to account for the wall time.

use std::fs;
use std::time::Instant;

use bench::{
    blowup_rewriting_problem, determinization_family, random_problem, random_rpq_workload,
    RandomProblemConfig,
};
use rewriter::{
    check_exactness_with, compute_maximal_rewriting, compute_maximal_rewriting_baseline,
    compute_maximal_rewriting_with, run_and_report, ExactnessStrategy, RewriteProblem,
    RewriterOptions,
};
use serde_json::{json, Value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let quick = ["e1", "e2", "e3", "e4", "e12"];
    let all = [
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
    ];
    let selected: Vec<&str> = if args.is_empty() {
        quick.to_vec()
    } else if args.iter().any(|a| a == "all") {
        all.to_vec()
    } else {
        all.iter().copied().filter(|id| args.iter().any(|a| a == id)).collect()
    };
    fs::create_dir_all("target/experiments").ok();
    for id in selected {
        let started = Instant::now();
        println!("\n================ {} ================", id.to_uppercase());
        let value = match id {
            "e1" => e1_figure1(),
            "e2" => e2_example21(),
            "e3" => e3_example23(),
            "e4" => e4_example41(),
            "e5" => e5_rewriting_scaling(),
            "e6" => e6_determinization(),
            "e7" => e7_lower_bound_family(),
            "e8" => e8_expspace_reduction(),
            "e9" => e9_rpq_semantics(),
            "e10" => e10_view_eval(),
            "e11" => e11_exactness(),
            "e12" => e12_partial_rewritings(),
            _ => unreachable!(),
        };
        let path = format!("target/experiments/{id}.json");
        fs::write(&path, serde_json::to_string_pretty(&value).expect("serializable")).ok();
        println!(
            "[{}] finished in {:.2?}; JSON written to {path}",
            id.to_uppercase(),
            started.elapsed()
        );
    }
    // The perf snapshot takes ~30s (it times the tree baselines too), so
    // targeted single-experiment runs skip it unless asked for.
    if args.is_empty() || args.iter().any(|a| a == "all" || a == "bench") {
        bench_rpq_json();
    } else if args.iter().any(|a| a == "rewriting") {
        // `experiments rewriting`: the rewriting-construction workload alone
        // (the CI "Rewriting bench smoke" step) — measured and printed, but
        // the committed snapshot is left untouched; the full `bench` run is
        // what refreshes and diffs BENCH_rpq.json.
        println!("\n================ rewriting construction (smoke) ================");
        rewriting_rows();
    } else if args.iter().any(|a| a == "concurrent") {
        // `experiments concurrent`: the snapshot-serving workload alone
        // (the CI "Concurrent bench smoke" step, run with BENCH_THREADS=4) —
        // N readers against a published snapshot while the writer streams
        // edge batches.  Like `rewriting`, the committed snapshot is left
        // untouched.
        println!("\n================ concurrent snapshot serving (smoke) ================");
        concurrent_rows();
    } else if args.iter().any(|a| a == "deletion") {
        // `experiments deletion`: the non-monotone maintenance workload
        // alone (the CI "Deletion bench smoke" step) — per-edge DRed
        // deletion repair of a cached view extension vs re-materializing
        // after every deletion.  Like the other smokes, the committed
        // snapshot is left untouched.
        println!("\n================ incremental deletion (smoke) ================");
        deletion_rows();
    } else if args.iter().any(|a| a == "service") {
        // `experiments service`: the TCP serving workload alone (the CI
        // "Service smoke" step) — closed-loop clients against an in-process
        // `service::Server`, with built-in health/fault assertions that
        // exit nonzero on failure.  Like the other smokes, the committed
        // snapshot is left untouched.
        println!("\n================ service latency (smoke) ================");
        service_rows();
    } else if args.iter().any(|a| a == "metrics") {
        // `experiments metrics`: the observability smoke (the CI "Metrics
        // smoke" step) — asserts the telemetry overhead budget (<5% on the
        // |V| = 1000 eval workload), then drives a traced query and both
        // metrics formats through a live in-process server, checking that
        // the explain payload's top-level spans account for the wall time.
        // Like the other smokes, the committed snapshot is left untouched.
        println!("\n================ telemetry overhead + explain surface (smoke) ================");
        metrics_rows();
    } else if args.iter().any(|a| a == "interactive") {
        // `experiments interactive`: the point-lookup workload alone (the
        // CI "Interactive bench smoke" step) — single-pair bidirectional
        // lookups and single-source sweeps through a published engine
        // snapshot on the |V| = 10^5 power-law graph, vs the amortized cost
        // of materializing the full answer, with a GitHub warning
        // annotation if the pair p99 fails to stay 10x under the full
        // materialization.  Like the other smokes, the committed snapshot
        // is left untouched.
        println!("\n================ interactive point lookups (smoke) ================");
        interactive_rows(true);
    } else if args.iter().any(|a| a == "parallel") {
        // `experiments parallel`: the production-scale parallel-evaluation
        // workload alone (the CI "Parallel scaling smoke" step, run with
        // BENCH_THREADS=4) — the work-stealing pool vs the sequential
        // evaluator on a |V| = 10^5 power-law graph, with a GitHub warning
        // annotation if the pool fails to reach a 1.2x speedup at more than
        // one thread.  Like the other smokes, the committed snapshot is
        // left untouched.
        println!("\n================ parallel scaling (smoke) ================");
        parallel_scale_rows(true);
    }
}

/// Times one closure: best of `runs` wall-clock measurements, in ms.
/// Best-of is stable under scheduler noise and treats both sides of a
/// comparison symmetrically regardless of run count.
fn time_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..runs.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// `numerator_ms / denominator_ms`, or `None` when the timing is degenerate
/// (a ~0 ms denominator on a fast run would yield `inf`/`NaN`, which is not
/// a meaningful ratio and not valid JSON).
fn speedup(numerator_ms: f64, denominator_ms: f64) -> Option<f64> {
    (denominator_ms > 0.0)
        .then(|| numerator_ms / denominator_ms)
        .filter(|r| r.is_finite())
}

/// The JSON form of a ratio field: a number, or `null` for degenerate
/// timings so every emitted snapshot stays valid JSON and the regression
/// diff skips the field.
fn speedup_json(numerator_ms: f64, denominator_ms: f64) -> Value {
    match speedup(numerator_ms, denominator_ms) {
        Some(r) => json!(r),
        None => Value::Null,
    }
}

/// Human-readable `N.Nx` ratio, or `n/a` for degenerate timings.
fn speedup_label(numerator_ms: f64, denominator_ms: f64) -> String {
    match speedup(numerator_ms, denominator_ms) {
        Some(r) => format!("{r:.1}x"),
        None => "n/a".to_string(),
    }
}

/// Minimal blocking client for the in-process TCP server: one socket, one
/// line-delimited JSON frame per call (shared by the `service` and
/// `metrics` workloads).
struct ServiceClient {
    writer: std::net::TcpStream,
    reader: std::io::BufReader<std::net::TcpStream>,
}

impl ServiceClient {
    fn connect(addr: std::net::SocketAddr) -> ServiceClient {
        let stream = std::net::TcpStream::connect(addr).expect("connect to in-process server");
        stream.set_nodelay(true).expect("nodelay");
        let reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
        ServiceClient { writer: stream, reader }
    }

    fn roundtrip(&mut self, frame: &str) -> Value {
        use std::io::{BufRead, Write};
        self.writer.write_all(frame.as_bytes()).expect("send frame");
        self.writer.write_all(b"\n").expect("send newline");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(!line.is_empty(), "server closed the connection");
        serde_json::from_str(line.trim_end()).expect("response is valid JSON")
    }
}

/// Reader thread count for the concurrent workload: `BENCH_THREADS`
/// overrides the detected core count (CI containers often report one core).
fn bench_threads() -> usize {
    std::env::var("BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(engine::available_threads)
}

/// Dense-core vs tree-baseline timings for the two hottest loops
/// (determinization and RPQ evaluation), plus the engine's parallel and
/// incremental paths, written to `BENCH_rpq.json` so the perf trajectory is
/// tracked across PRs.  If a committed snapshot is present in the working
/// directory it is diffed first: >20% regressions on any `*_ms` field are
/// flagged as GitHub warning annotations (see the CI workflow).
fn bench_rpq_json() {
    use automata::{
        determinize_with_subsets, determinize_with_subsets_baseline, random_nfa,
        RandomAutomatonConfig,
    };
    use graphdb::{eval_automaton, eval_automaton_baseline};

    println!("\n================ BENCH_rpq.json ================");
    // The committed snapshot, for the regression diff after remeasuring.
    let previous = fs::read_to_string("BENCH_rpq.json")
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    let mut determinization = Vec::new();

    // Random NFA, n = 64 states over {a, b, c}.
    let alpha = automata::Alphabet::from_chars(['a', 'b', 'c']).expect("distinct");
    let nfa = random_nfa(
        &alpha,
        &RandomAutomatonConfig {
            num_states: 64,
            density: 0.02,
            final_probability: 0.2,
        },
        42,
    );
    // Few runs: one subset construction here explores ~500k subsets, and the
    // Criterion bench is the statistically careful measurement.
    let dense_ms = time_ms(2, || determinize_with_subsets(&nfa).dfa.num_states());
    let baseline_ms = time_ms(2, || {
        determinize_with_subsets_baseline(&nfa).dfa.num_states()
    });
    println!(
        "determinize random n=64   : dense {dense_ms:.3} ms, baseline {baseline_ms:.3} ms ({})",
        speedup_label(baseline_ms, dense_ms)
    );
    determinization.push(json!({
        "workload": "random_nfa_n64_density0.02",
        "dense_ms": dense_ms,
        "baseline_ms": baseline_ms,
        "speedup": speedup_json(baseline_ms, dense_ms),
    }));

    // The exponential worst-case family at k = 11.
    let (expr, _) = determinization_family(11);
    let family_alpha = expr.inferred_alphabet();
    let family_nfa = regexlang::thompson(&expr, &family_alpha).expect("family over {a,b}");
    let dense_ms = time_ms(5, || determinize_with_subsets(&family_nfa).dfa.num_states());
    let baseline_ms = time_ms(5, || {
        determinize_with_subsets_baseline(&family_nfa).dfa.num_states()
    });
    println!(
        "determinize family k=11   : dense {dense_ms:.3} ms, baseline {baseline_ms:.3} ms ({})",
        speedup_label(baseline_ms, dense_ms)
    );
    determinization.push(json!({
        "workload": "blowup_family_k11",
        "dense_ms": dense_ms,
        "baseline_ms": baseline_ms,
        "speedup": speedup_json(baseline_ms, dense_ms),
    }));

    // RPQ evaluation on a generated |V| = 1000 graph.
    let mut eval = Vec::new();
    let workload = random_rpq_workload(1000, 4000, 42);
    let grounded = workload.problem.query.ground(&workload.problem.theory);
    let query_nfa = regexlang::thompson(&grounded, workload.db.domain())
        .expect("grounded query is over the domain");
    let dense_ms = time_ms(3, || eval_automaton(&workload.db, &query_nfa).len());
    let baseline_ms = time_ms(3, || {
        eval_automaton_baseline(&workload.db, &query_nfa).len()
    });
    println!(
        "rpq eval |V|=1000         : dense {dense_ms:.3} ms, baseline {baseline_ms:.3} ms ({})",
        speedup_label(baseline_ms, dense_ms)
    );
    eval.push(json!({
        "workload": "random_graph_v1000_e4000",
        "dense_ms": dense_ms,
        "baseline_ms": baseline_ms,
        "speedup": speedup_json(baseline_ms, dense_ms),
    }));

    // Parallel evaluation: the engine's sharded product-BFS vs the
    // sequential evaluator on the |V| = 2000 workload.
    let mut parallel = Vec::new();
    let mut parallel_breakdown = Vec::new();
    {
        use engine::eval_csr_parallel;
        use graphdb::eval_csr;

        let workload = random_rpq_workload(2000, 8000, 42);
        let grounded = workload.problem.query.ground(&workload.problem.theory);
        let nfa = regexlang::thompson(&grounded, workload.db.domain())
            .expect("grounded query is over the domain");
        let frozen = automata::DenseNfa::from_nfa(&nfa);
        let csr = workload.db.csr_out();
        // BENCH_THREADS overrides the detected core count, so CI containers
        // that report a single core (where "parallel" would tautologically
        // record a ~1.0× speedup) can still exercise and time the pool; the
        // thread count is recorded in the JSON row either way.
        let threads = bench_threads();
        let sequential_ms = time_ms(3, || eval_csr(&csr, &frozen).len());
        let parallel_ms = time_ms(3, || eval_csr_parallel(&csr, &frozen, threads).len());
        println!(
            "rpq eval |V|=2000         : sequential {sequential_ms:.3} ms, parallel {parallel_ms:.3} ms on {threads} thread(s) ({})",
            speedup_label(sequential_ms, parallel_ms)
        );
        parallel.push(json!({
            "workload": "random_graph_v2000_e8000",
            "threads": threads,
            "sequential_ms": sequential_ms,
            "parallel_ms": parallel_ms,
            "speedup": speedup_json(sequential_ms, parallel_ms),
        }));

        // One instrumented run decomposes the parallel time above into
        // per-worker chunk-acquire vs sweep plus the single-threaded merge,
        // so a flat speedup is diagnosable from the snapshot alone:
        // queueing on the chunk cursor vs an oversized merge vs genuine
        // sweep imbalance look identical in `parallel_ms` but not here.
        let (answer, breakdown) =
            engine::eval_csr_parallel_breakdown(&csr, &frozen, threads);
        std::hint::black_box(answer.len());
        let to_ms = |us: u64| us as f64 / 1e3;
        let workers: Vec<Value> = breakdown
            .workers
            .iter()
            .map(|w| {
                json!({
                    "worker": w.worker,
                    "chunks": w.chunks,
                    "steals": w.steals,
                    "visited": w.visited,
                    "acquire_ms": to_ms(w.acquire_us),
                    "sweep_ms": to_ms(w.sweep_us),
                })
            })
            .collect();
        println!(
            "parallel breakdown        : acquire {:.3} ms + sweep {:.3} ms across {} worker(s), merge {:.3} ms, {} chunk(s) / {} steal(s)",
            to_ms(breakdown.total_acquire_us()),
            to_ms(breakdown.total_sweep_us()),
            breakdown.workers.len(),
            to_ms(breakdown.merge_us),
            breakdown.total_chunks(),
            breakdown.total_steals()
        );
        parallel_breakdown.push(json!({
            "workload": "random_graph_v2000_e8000",
            "threads": threads,
            "merge_ms": to_ms(breakdown.merge_us),
            "total_acquire_ms": to_ms(breakdown.total_acquire_us()),
            "total_sweep_ms": to_ms(breakdown.total_sweep_us()),
            "total_chunks": breakdown.total_chunks(),
            "total_steals": breakdown.total_steals(),
            "workers": workers,
        }));
    }

    // Production-scale parallel evaluation on the generator families
    // (power-law hubs with Zipfian labels, community blocks); rows land in
    // the same two sections so the regression diff covers them.
    {
        let (scale_parallel, scale_breakdown) = parallel_scale_rows(false);
        parallel.extend(scale_parallel);
        parallel_breakdown.extend(scale_breakdown);
    }

    // Incremental maintenance: per-edge delta repair of a cached view
    // extension vs re-materializing from scratch after each insertion.
    let mut incremental = Vec::new();
    {
        use engine::QueryEngine;
        use graphdb::eval_csr;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let workload = random_rpq_workload(1000, 4000, 7);
        let grounded = workload.problem.query.ground(&workload.problem.theory);
        let nfa = regexlang::thompson(&grounded, workload.db.domain())
            .expect("grounded query is over the domain");
        let frozen = automata::DenseNfa::from_nfa(&nfa);
        let num_nodes = workload.db.num_nodes();
        let domain_len = workload.db.domain().len();
        let mut rng = StdRng::seed_from_u64(99);
        let inserts: Vec<(usize, automata::Symbol, usize)> = (0..8)
            .map(|_| {
                (
                    rng.gen_range(0..num_nodes),
                    automata::Symbol(rng.gen_range(0..domain_len) as u32),
                    rng.gen_range(0..num_nodes),
                )
            })
            .collect();

        // From-scratch strategy: one full evaluation per inserted edge (the
        // final graph's evaluation is representative of each step's cost).
        let mut grown = workload.db.clone();
        for &(f, l, t) in &inserts {
            grown.add_edge(f, l, t);
        }
        let grown_csr = grown.csr_out();
        let rematerialize_ms = time_ms(3, || eval_csr(&grown_csr, &frozen).len());

        // Delta strategy: repair the cached extension on every insertion
        // (setup — engine construction and initial materialization — is
        // outside the timed window).
        let delta_repair_ms = (0..3)
            .map(|_| {
                let mut engine = QueryEngine::new(workload.db.clone());
                engine.register_view("q", grounded.clone());
                engine.view_extension("q").expect("registered");
                let t0 = Instant::now();
                for &(f, l, t) in &inserts {
                    engine.add_edge(f, l, t);
                }
                std::hint::black_box(engine.view_extension("q").map(|e| e.len()));
                t0.elapsed().as_secs_f64() * 1e3 / inserts.len() as f64
            })
            .fold(f64::INFINITY, f64::min);
        println!(
            "incremental |V|=1000 +8e  : rematerialize {rematerialize_ms:.3} ms/edge, delta repair {delta_repair_ms:.3} ms/edge ({})",
            speedup_label(rematerialize_ms, delta_repair_ms)
        );
        incremental.push(json!({
            "workload": "random_graph_v1000_e4000_plus8edges",
            "edges_inserted": inserts.len(),
            "rematerialize_ms": rematerialize_ms,
            "delta_repair_ms": delta_repair_ms,
            "speedup": speedup_json(rematerialize_ms, delta_repair_ms),
        }));
    }

    // Non-monotone maintenance: per-edge DRed deletion repair vs
    // re-materializing after every deletion.
    let deletion = deletion_rows();

    // The maximal-rewriting construction itself (Theorem 2.2): the dense
    // CSR pipeline vs the retained tree baseline.
    let rewriting = rewriting_rows();

    // Snapshot serving: reader-throughput scaling while the writer streams
    // mutations (the writer/snapshot split's headline workload).
    let concurrent = concurrent_rows();

    // End-to-end serving latency through the TCP service layer.
    let service = service_rows();

    // Interactive point lookups: single-pair and single-source evaluation
    // through a published snapshot vs amortized full materialization.
    let interactive = interactive_rows(false);

    let value = json!({
        "determinization": determinization,
        "eval": eval,
        "parallel": parallel,
        "parallel_breakdown": parallel_breakdown,
        "incremental": incremental,
        "deletion": deletion,
        "rewriting": rewriting,
        "concurrent": concurrent,
        "service": service,
        "interactive": interactive,
    });
    if let Some(previous) = &previous {
        diff_bench_snapshots(previous, &value);
    } else {
        println!("no committed BENCH_rpq.json found; skipping regression diff");
    }
    match fs::write(
        "BENCH_rpq.json",
        serde_json::to_string_pretty(&value).expect("serializable"),
    ) {
        Ok(()) => println!("written to BENCH_rpq.json"),
        Err(err) => {
            eprintln!("failed to write BENCH_rpq.json: {err}");
            std::process::exit(1);
        }
    }
}

/// Production-scale parallel evaluation on the generator families: the
/// work-stealing pool vs the sequential evaluator on a |V| = 10^5 power-law
/// graph with Zipfian labels (hub-heavy degree distributions are the worst
/// case for fixed-size source chunking) and — in full-bench runs — a
/// community-structured graph of the same size (dense blocks with sparse
/// bridges, the cache-friendly case).  The query anchors on labels from the
/// Zipf tail, so the product BFS is selective per source but still sweeps
/// all 10^5 sources.  Returns the JSON rows for the `parallel` and
/// `parallel_breakdown` sections of `BENCH_rpq.json`; also runs standalone
/// as `experiments parallel` (the CI "Parallel scaling smoke" step).  When
/// `smoke` is set, the community workload is skipped to stay fast and a
/// GitHub `::warning::` annotation is emitted if the pool fails to reach a
/// 1.2x speedup at more than one thread.  Setting `RPQ_BENCH_1M=1` adds a
/// |V| = 10^6 power-law row (too slow for every CI run; for production-size
/// measurements on demand).
fn parallel_scale_rows(smoke: bool) -> (Vec<Value>, Vec<Value>) {
    use engine::{eval_csr_parallel, eval_csr_parallel_breakdown};
    use graphdb::{
        community_graph, eval_csr, power_law_graph, CommunityGraphConfig, PowerLawGraphConfig,
    };

    let mut parallel = Vec::new();
    let mut breakdown_rows = Vec::new();
    let domain = automata::Alphabet::from_chars(['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'])
        .expect("distinct");
    // Under the Zipf label distribution (exponent 1.0) the late-alphabet
    // labels are the rare tail: the h anchor keeps most sources' BFS
    // shallow, and the (f+g)* closure walks a sparse ~11% subgraph, so the
    // sweep cost is spread across per-source frontiers instead of one giant
    // reachable set.
    let query = regexlang::parse("h·(f+g)*·e").expect("scale query parses");
    let max_threads = bench_threads();
    let mut thread_counts = vec![1usize, 2, 4];
    if !thread_counts.contains(&max_threads) {
        thread_counts.push(max_threads);
    }

    let mut measure = |workload: &str, db: &graphdb::GraphDb, counts: &[usize]| {
        let nfa = regexlang::thompson(&query, db.domain()).expect("query over the domain");
        let frozen = automata::DenseNfa::from_nfa(&nfa);
        let csr = db.csr_out();
        let top = *counts.last().expect("at least one thread count");
        let sequential_ms = time_ms(2, || eval_csr(&csr, &frozen).len());
        for &threads in counts {
            let parallel_ms = time_ms(2, || eval_csr_parallel(&csr, &frozen, threads).len());
            println!(
                "{workload:<26}: sequential {sequential_ms:.3} ms, parallel {parallel_ms:.3} ms on {threads} thread(s) ({})",
                speedup_label(sequential_ms, parallel_ms)
            );
            parallel.push(json!({
                "workload": workload,
                "threads": threads,
                "sequential_ms": sequential_ms,
                "parallel_ms": parallel_ms,
                "speedup": speedup_json(sequential_ms, parallel_ms),
            }));
            if smoke && threads == top && threads > 1 {
                match speedup(sequential_ms, parallel_ms) {
                    Some(ratio) if ratio < 1.2 => println!(
                        "::warning title=parallel scaling::{workload}: only {ratio:.2}x over \
                         sequential at {threads} threads (< 1.2x)"
                    ),
                    _ => {}
                }
            }
        }

        // One instrumented run at the largest thread count: per-worker
        // chunk/steal/acquire/sweep detail plus the merge, so scaling
        // plateaus are attributable from the snapshot alone.
        let (answer, breakdown) = eval_csr_parallel_breakdown(&csr, &frozen, top);
        std::hint::black_box(answer.len());
        let to_ms = |us: u64| us as f64 / 1e3;
        let workers: Vec<Value> = breakdown
            .workers
            .iter()
            .map(|w| {
                json!({
                    "worker": w.worker,
                    "chunks": w.chunks,
                    "steals": w.steals,
                    "visited": w.visited,
                    "acquire_ms": to_ms(w.acquire_us),
                    "sweep_ms": to_ms(w.sweep_us),
                })
            })
            .collect();
        println!(
            "  breakdown @{top} thread(s) : acquire {:.3} ms + sweep {:.3} ms, merge {:.3} ms, {} chunk(s) / {} steal(s)",
            to_ms(breakdown.total_acquire_us()),
            to_ms(breakdown.total_sweep_us()),
            to_ms(breakdown.merge_us),
            breakdown.total_chunks(),
            breakdown.total_steals()
        );
        breakdown_rows.push(json!({
            "workload": workload,
            "threads": top,
            "merge_ms": to_ms(breakdown.merge_us),
            "total_acquire_ms": to_ms(breakdown.total_acquire_us()),
            "total_sweep_ms": to_ms(breakdown.total_sweep_us()),
            "total_chunks": breakdown.total_chunks(),
            "total_steals": breakdown.total_steals(),
            "workers": workers,
        }));
    };

    let power = power_law_graph(
        &domain,
        &PowerLawGraphConfig {
            num_nodes: 100_000,
            num_edges: 400_000,
            label_exponent: 1.0,
        },
        42,
    );
    measure("power_law_v100000_e400000", &power, &thread_counts);
    if !smoke {
        let community = community_graph(
            &domain,
            &CommunityGraphConfig {
                num_communities: 100,
                community_size: 1_000,
                num_edges: 400_000,
                intra_fraction: 0.9,
            },
            42,
        );
        measure("community_c100_s1000_e400000", &community, &[max_threads.max(2)]);
    }
    if std::env::var_os("RPQ_BENCH_1M").is_some() {
        let big = power_law_graph(
            &domain,
            &PowerLawGraphConfig {
                num_nodes: 1_000_000,
                num_edges: 4_000_000,
                label_exponent: 1.0,
            },
            42,
        );
        measure("power_law_v1000000_e4000000", &big, &[max_threads.max(2)]);
    }
    (parallel, breakdown_rows)
}

/// Non-monotone incremental maintenance: per-edge DRed deletion repair
/// (over-delete + re-derive) of a cached view extension vs re-materializing
/// from scratch after each deletion, on the |V| = 1000 workload.  Returns
/// the JSON rows for the `deletion` section of `BENCH_rpq.json`; also runs
/// standalone as `experiments deletion` (the CI "Deletion bench smoke"
/// step).
fn deletion_rows() -> Vec<Value> {
    use engine::QueryEngine;
    use graphdb::eval_csr;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let workload = random_rpq_workload(1000, 4000, 7);
    let grounded = workload.problem.query.ground(&workload.problem.theory);
    let nfa = regexlang::thompson(&grounded, workload.db.domain())
        .expect("grounded query is over the domain");
    let frozen = automata::DenseNfa::from_nfa(&nfa);

    // Eight distinct existing single-support edges to delete: duplicated
    // triples would be short-circuited by the engine's support-count fast
    // path, and the workload under measurement is the DRed repair itself.
    let edges: Vec<graphdb::Edge> = workload.db.edges().collect();
    let mut rng = StdRng::seed_from_u64(17);
    let mut removals: Vec<(usize, automata::Symbol, usize)> = Vec::new();
    while removals.len() < 8 {
        let e = edges[rng.gen_range(0..edges.len())];
        let triple = (e.from, e.label, e.to);
        if workload.db.edge_multiplicity(e.from, e.label, e.to) == 1
            && !removals.contains(&triple)
        {
            removals.push(triple);
        }
    }

    // From-scratch strategy: one full evaluation per deleted edge (the
    // final shrunk graph's evaluation is representative of each step's
    // cost).
    let mut shrunk = workload.db.clone();
    for &(f, l, t) in &removals {
        assert!(shrunk.remove_edge(f, l, t), "sampled edges exist");
    }
    let shrunk_csr = shrunk.csr_out();
    let rematerialize_ms = time_ms(3, || eval_csr(&shrunk_csr, &frozen).len());

    // Delta strategy: DRed-repair the cached extension on every deletion
    // (setup — engine construction and initial materialization — is outside
    // the timed window).
    let delta_delete_ms = (0..3)
        .map(|_| {
            let mut engine = QueryEngine::new(workload.db.clone());
            engine.register_view("q", grounded.clone());
            engine.view_extension("q").expect("registered");
            let t0 = Instant::now();
            for &(f, l, t) in &removals {
                engine.remove_edge(f, l, t);
            }
            std::hint::black_box(engine.view_extension("q").map(|e| e.len()));
            t0.elapsed().as_secs_f64() * 1e3 / removals.len() as f64
        })
        .fold(f64::INFINITY, f64::min);
    println!(
        "deletion |V|=1000 -8e     : rematerialize {rematerialize_ms:.3} ms/edge, delta deletion {delta_delete_ms:.3} ms/edge ({})",
        speedup_label(rematerialize_ms, delta_delete_ms)
    );
    vec![json!({
        "workload": "random_graph_v1000_e4000_minus8edges",
        "edges_deleted": removals.len(),
        "rematerialize_ms": rematerialize_ms,
        "delta_delete_ms": delta_delete_ms,
        "speedup": speedup_json(rematerialize_ms, delta_delete_ms),
    })]
}

/// Times the full Theorem 2.2 construction — dense pipeline vs tree
/// baseline — on the random-problem family and on the determinization
/// blow-up family, printing a table and returning the JSON rows for the
/// `rewriting` section of `BENCH_rpq.json`.
fn rewriting_rows() -> Vec<Value> {
    let mut rows = Vec::new();

    // Random family: a batch of moderately sized problems (the E5 regime).
    let cfg = RandomProblemConfig {
        alphabet_size: 3,
        query_size: 22,
        num_views: 3,
        view_size: 5,
    };
    let problems: Vec<RewriteProblem> =
        (0..4).map(|seed| random_problem(&cfg, seed * 37 + 11)).collect();
    let dense_ms = time_ms(3, || {
        problems
            .iter()
            .map(|p| compute_maximal_rewriting(p).stats.rewriting_states)
            .sum::<usize>()
    });
    let baseline_ms = time_ms(3, || {
        problems
            .iter()
            .map(|p| compute_maximal_rewriting_baseline(p).stats.rewriting_states)
            .sum::<usize>()
    });
    println!(
        "rewriting random q22 x4   : dense {dense_ms:.3} ms, baseline {baseline_ms:.3} ms ({})",
        speedup_label(baseline_ms, dense_ms)
    );
    rows.push(json!({
        "workload": "random_q22_v3_x4",
        "dense_ms": dense_ms,
        "baseline_ms": baseline_ms,
        "speedup": speedup_json(baseline_ms, dense_ms),
    }));

    // Blow-up family: A_d needs 2^(k+1) states, so every stage of the
    // construction works at scale (the Section 4 lower-bound regime).
    let k = 11;
    let problem = blowup_rewriting_problem(k);
    let dense_ms = time_ms(3, || {
        compute_maximal_rewriting(&problem).stats.rewriting_states
    });
    let baseline_ms = time_ms(3, || {
        compute_maximal_rewriting_baseline(&problem).stats.rewriting_states
    });
    println!(
        "rewriting blow-up k={k}    : dense {dense_ms:.3} ms, baseline {baseline_ms:.3} ms ({})",
        speedup_label(baseline_ms, dense_ms)
    );
    rows.push(json!({
        "workload": format!("blowup_family_k{k}_views3"),
        "dense_ms": dense_ms,
        "baseline_ms": baseline_ms,
        "speedup": speedup_json(baseline_ms, dense_ms),
    }));
    rows
}

/// The concurrent-serving workload of the writer/snapshot split: N reader
/// threads evaluate a mixed workload (cached ad-hoc regexes + the
/// rewriting evaluated over materialized views) against a published
/// [`engine::EngineSnapshot`] while the writer keeps streaming `add_edges`
/// batches and publishing fresh revisions.  A fixed total number of reader
/// passes is split across the readers, so `single_reader_ms` vs
/// `concurrent_reader_ms` measures reader-throughput scaling with
/// `BENCH_THREADS`; the writer runs (and is timed) alongside either way.
fn concurrent_rows() -> Vec<Value> {
    use engine::{EngineConfig, EngineSnapshot, QueryEngine};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let threads = bench_threads();
    let workload = random_rpq_workload(400, 1600, 33);
    let rewriting = rpq::rewrite_rpq(&workload.problem).expect("workload rewrites");
    let grounded = workload.problem.query.ground(&workload.problem.theory);
    // The mixed ad-hoc side: the grounded query plus distinct variants, so
    // readers exercise both answer-cache misses (first pass) and hits.
    let queries: Vec<regexlang::Regex> = std::iter::once(grounded.clone())
        .chain((1..8).map(|i| {
            regexlang::parse(&format!("({grounded}){}", "·(a+b+c)?".repeat(i)))
                .expect("suffixed query parses")
        }))
        .collect();
    let total_passes = 12usize;
    let writer_batches = 12usize;
    let edges_per_batch = 4usize;
    let num_nodes = workload.db.num_nodes();
    let domain_len = workload.db.domain().len();

    // One timed run: fresh engine (cold caches both times, identical work),
    // readers pinned to the initial snapshot, writer streaming mutations.
    let run = |readers: usize| -> f64 {
        let mut engine = QueryEngine::with_config(
            workload.db.clone(),
            EngineConfig {
                threads: 1, // readers are the parallelism under test
                ..EngineConfig::default()
            },
        );
        rpq::register_problem_views(&mut engine, &workload.problem);
        let snapshot = engine.publish_snapshot();
        let mut rng = StdRng::seed_from_u64(4242);
        let batches: Vec<Vec<(usize, automata::Symbol, usize)>> = (0..writer_batches)
            .map(|_| {
                (0..edges_per_batch)
                    .map(|_| {
                        (
                            rng.gen_range(0..num_nodes),
                            automata::Symbol(rng.gen_range(0..domain_len) as u32),
                            rng.gen_range(0..num_nodes),
                        )
                    })
                    .collect()
            })
            .collect();

        let reader_pass = |snapshot: &EngineSnapshot| {
            for q in &queries {
                std::hint::black_box(snapshot.eval_regex(q).len());
            }
            std::hint::black_box(
                snapshot
                    .eval_dfa_over_views(&rewriting.maximal.automaton)
                    .len(),
            );
        };
        // Warm the shared caches once outside the timed window: the timed
        // passes then measure concurrent read throughput (answer-cache hits
        // + per-pass Σ_E rewriting evaluations), not a thundering herd of
        // duplicated first-miss evaluations racing on one core.
        reader_pass(&snapshot);

        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let snapshot = &snapshot;
            let reader_pass = &reader_pass;
            // The writer streams mutations for the whole measurement; its
            // repairs never block the pinned readers.
            scope.spawn(|| {
                for batch in &batches {
                    engine.add_edges(batch);
                    std::hint::black_box(engine.publish_snapshot().revision());
                }
            });
            // Split the fixed pass budget exactly, so the 1-reader and
            // N-reader runs perform identical total work regardless of
            // whether BENCH_THREADS divides it.
            for reader in 0..readers {
                let per_reader =
                    total_passes / readers + usize::from(reader < total_passes % readers);
                scope.spawn(move || {
                    for _ in 0..per_reader {
                        reader_pass(snapshot);
                    }
                });
            }
        });
        t0.elapsed().as_secs_f64() * 1e3
    };

    let single_reader_ms = run(1);
    let concurrent_reader_ms = run(threads);
    println!(
        "concurrent |V|=400 mixed  : 1 reader {single_reader_ms:.3} ms, {threads} reader(s) {concurrent_reader_ms:.3} ms ({} scaling), writer streaming {writer_batches}x{edges_per_batch} edges",
        speedup_label(single_reader_ms, concurrent_reader_ms)
    );
    vec![json!({
        "workload": "random_graph_v400_e1600_mixed_readers",
        "threads": threads,
        "reader_passes": total_passes,
        "queries_per_pass": queries.len() + 1,
        "single_reader_ms": single_reader_ms,
        "concurrent_reader_ms": concurrent_reader_ms,
        "throughput_scaling": speedup_json(single_reader_ms, concurrent_reader_ms),
        "writer_batches": writer_batches,
        "writer_edges_per_batch": edges_per_batch,
    })]
}

/// End-to-end serving latency through the TCP service layer: an in-process
/// [`service::Server`] over the |V| = 400 workload graph, `BENCH_THREADS`
/// closed-loop clients issuing budgeted queries over real sockets while one
/// writer connection streams `add_edges` batches.  Latencies are folded
/// into [`telemetry::Histogram`]s — the same mergeable log-bucketed
/// summaries the server itself exports — and the per-response `eval_us`
/// field splits each round trip into engine evaluation vs everything else
/// (socket + framing + queue wait), so a p99 outlier is attributable from
/// the snapshot: `service_eval_p99_ms` growing means the evaluation got
/// slower, `service_wait_p99_ms` growing means the server queued.  Reports
/// p50/p99 request latency and the rejection rate (`service_p99_ms` is the
/// gated field).  Doubles as the CI "Service smoke" step (`experiments
/// service`): the built-in health, stats, and fault-recovery assertions
/// panic — exiting nonzero — if the server misbehaves.
fn service_rows() -> Vec<Value> {
    let clients = bench_threads();
    let requests_per_client = 40usize;
    let workload = random_rpq_workload(400, 1600, 33);
    let grounded = workload.problem.query.ground(&workload.problem.theory);
    // Mixed query set: the grounded query plus distinct suffixed variants,
    // so the run exercises answer-cache misses, hits, and the revision
    // invalidations the streaming writer causes.
    let query_texts: Vec<String> = std::iter::once(format!("{grounded}"))
        .chain((1..6).map(|i| format!("({grounded}){}", "·(a+b+c)?".repeat(i))))
        .collect();
    let label_names: Vec<String> =
        workload.db.domain().names().map(str::to_string).collect();

    let config = service::ServiceConfig {
        max_inflight: (2 * clients).max(4),
        engine: engine::EngineConfig {
            threads: 1, // concurrent connections are the parallelism under test
            ..engine::EngineConfig::default()
        },
        ..service::ServiceConfig::default()
    };
    let server = service::Server::start(workload.db.clone(), config).expect("server starts");
    let addr = server.addr();

    // Closed-loop measurement: every client thread drives its own socket at
    // full speed; one writer connection streams edge batches alongside.
    let writer_batches = 12usize;
    let edges_per_batch = 4usize;
    let t0 = Instant::now();
    let (latencies, rejected, timed_out): (Vec<(u64, Option<u64>)>, usize, usize) = std::thread::scope(|scope| {
        let query_texts = &query_texts;
        let label_names = &label_names;
        let writer_handle = scope.spawn(move || {
            let mut client = ServiceClient::connect(addr);
            for batch in 0..writer_batches {
                let edges: Vec<String> = (0..edges_per_batch)
                    .map(|i| {
                        let label = &label_names[(batch + i) % label_names.len()];
                        format!("[\"svc{batch}_{i}\",\"{label}\",\"svc{}_{i}\"]", batch + 1)
                    })
                    .collect();
                let response = client.roundtrip(&format!(
                    "{{\"op\":\"add_edges\",\"edges\":[{}]}}",
                    edges.join(",")
                ));
                assert_eq!(response["ok"].as_bool(), Some(true), "writer batch failed: {response:?}");
            }
        });
        let handles: Vec<_> = (0..clients)
            .map(|client_id| {
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr);
                    let mut samples = Vec::with_capacity(requests_per_client);
                    let mut rejected = 0usize;
                    let mut timed_out = 0usize;
                    for request in 0..requests_per_client {
                        let q = &query_texts[(client_id + request) % query_texts.len()];
                        let frame = format!(
                            "{{\"id\":{request},\"op\":\"query\",\"q\":\"{q}\",\
                             \"timeout_ms\":10000,\"limit\":64}}"
                        );
                        let sent = Instant::now();
                        let response = client.roundtrip(&frame);
                        let elapsed_us = sent.elapsed().as_micros() as u64;
                        match response["ok"].as_bool() {
                            // The server stamps successes with its own
                            // evaluation time; the difference to the client
                            // round trip is socket + framing + queue wait.
                            Some(true) => {
                                samples.push((elapsed_us, response["eval_us"].as_u64()))
                            }
                            // Overload rejections and deadline trips are
                            // correct server behavior under pressure; any
                            // other failure is a smoke-test failure.
                            Some(false) => match response["error"]["code"].as_str() {
                                Some("overloaded") => rejected += 1,
                                Some("deadline_exceeded") => timed_out += 1,
                                _ => panic!("unacceptable rejection {response:?}"),
                            },
                            None => panic!("malformed response {response:?}"),
                        }
                    }
                    (samples, rejected, timed_out)
                })
            })
            .collect();
        writer_handle.join().expect("writer client panicked");
        let mut latencies = Vec::new();
        let mut rejected = 0usize;
        let mut timed_out = 0usize;
        for handle in handles {
            let (samples, client_rejected, client_timed_out) =
                handle.join().expect("reader client panicked");
            latencies.extend(samples);
            rejected += client_rejected;
            timed_out += client_timed_out;
        }
        (latencies, rejected, timed_out)
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Smoke assertions (the CI "Service smoke" step runs this function for
    // exactly these): clean load produced no protocol errors, the server
    // is still healthy, and a fault on one connection stays on that frame.
    let mut probe = ServiceClient::connect(addr);
    let health = probe.roundtrip("{\"op\":\"health\"}");
    assert_eq!(health["status"].as_str(), Some("ok"), "unhealthy after load: {health:?}");
    let stats = probe.roundtrip("{\"op\":\"stats\"}");
    assert_eq!(
        stats["service"]["protocol_errors"].as_u64(),
        Some(0),
        "clean load must not log protocol errors: {stats:?}"
    );
    assert_eq!(
        stats["service"]["writes_applied"].as_u64(),
        Some(writer_batches as u64),
        "every writer batch must have applied: {stats:?}"
    );
    let fault = probe.roundtrip("{\"op\":\"nonsense\"}");
    assert_eq!(fault["ok"].as_bool(), Some(false), "bad op must fail: {fault:?}");
    let recovered = probe.roundtrip("{\"op\":\"health\"}");
    assert_eq!(recovered["ok"].as_bool(), Some(true), "connection must survive the fault");
    server.shutdown();

    // Fold the samples into the same log-bucketed histograms the server
    // exports (≤6.25% relative bucket error — well inside run-to-run
    // noise), splitting each round trip into evaluation vs queue wait.
    let rtt = telemetry::Histogram::new();
    let eval = telemetry::Histogram::new();
    let wait = telemetry::Histogram::new();
    for &(rtt_us, eval_us) in &latencies {
        rtt.record(rtt_us);
        if let Some(eval_us) = eval_us {
            eval.record(eval_us);
            wait.record(rtt_us.saturating_sub(eval_us));
        }
    }
    let issued = clients * requests_per_client;
    let p50 = rtt.percentile_ms(0.50);
    let p99 = rtt.percentile_ms(0.99);
    let rejection_rate = rejected as f64 / issued.max(1) as f64;
    println!(
        "service |V|=400 tcp       : p50 {p50:.3} ms, p99 {p99:.3} ms over {issued} requests \
         from {clients} client(s), {rejected} rejected ({:.1}%), {timed_out} timed out, \
         wall {wall_ms:.1} ms",
        rejection_rate * 100.0
    );
    println!(
        "service p99 split         : eval {:.3} ms vs queue-wait {:.3} ms \
         (mean {:.3} / {:.3} ms over {} stamped responses)",
        eval.percentile_ms(0.99),
        wait.percentile_ms(0.99),
        eval.mean_us() / 1e3,
        wait.mean_us() / 1e3,
        eval.count()
    );
    vec![json!({
        "workload": "service_tcp_v400_e1600_closed_loop",
        "clients": clients,
        "requests": issued,
        "answered": latencies.len(),
        "rejected": rejected,
        "rejection_rate": rejection_rate,
        "timed_out": timed_out,
        "service_p50_ms": p50,
        "service_p99_ms": p99,
        "service_eval_p99_ms": eval.percentile_ms(0.99),
        "service_wait_p99_ms": wait.percentile_ms(0.99),
        "writer_batches": writer_batches,
        "writer_edges_per_batch": edges_per_batch,
    })]
}

/// Interactive point lookups on the |V| = 10^5 power-law workload:
/// single-pair bidirectional (meet-in-the-middle) lookups and single-source
/// sweeps through a published `EngineSnapshot`, against the amortized cost
/// of materializing the full answer set once.  The pair lookups sample
/// random (source, target) endpoints — reachable and not — so the p99
/// covers both early meets and drained cones; every lookup is a fresh
/// search (pair verdicts are never cached and each sampled source is
/// distinct with high probability).  Returns the JSON rows for the
/// `interactive` section of `BENCH_rpq.json`; also runs standalone as
/// `experiments interactive` (the CI "Interactive bench smoke" step).
/// When `smoke` is set, fewer lookups are sampled and a GitHub
/// `::warning::` annotation is emitted if the pair p99 is not at least 10x
/// below the full materialization time.
fn interactive_rows(smoke: bool) -> Vec<Value> {
    use engine::QueryEngine;
    use graphdb::{eval_csr, power_law_graph, PowerLawGraphConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let domain = automata::Alphabet::from_chars(['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'])
        .expect("distinct");
    // Same selective scale query as the parallel workload: the h anchor
    // keeps forward cones shallow, which is exactly the regime interactive
    // lookups are built for.
    let query = "h·(f+g)*·e";
    let db = power_law_graph(
        &domain,
        &PowerLawGraphConfig {
            num_nodes: 100_000,
            num_edges: 400_000,
            label_exponent: 1.0,
        },
        42,
    );
    let num_nodes = db.num_nodes();

    // The amortized reference: one full materialization of the answer set.
    let expr = regexlang::parse(query).expect("interactive query parses");
    let nfa = regexlang::thompson(&expr, db.domain()).expect("query over the domain");
    let frozen = automata::DenseNfa::from_nfa(&nfa);
    let csr = db.csr_out();
    let full_materialize_ms = time_ms(2, || eval_csr(&csr, &frozen).len());

    let mut engine = QueryEngine::new(db);
    let snapshot = engine.publish_snapshot();
    let percentile = |sorted: &[f64], p: usize| sorted[(sorted.len() - 1) * p / 100];

    let pair_lookups = if smoke { 100 } else { 200 };
    let mut rng = StdRng::seed_from_u64(4242);
    let mut pair_ms: Vec<f64> = (0..pair_lookups)
        .map(|_| {
            let s = rng.gen_range(0..num_nodes);
            let t = rng.gen_range(0..num_nodes);
            let t0 = Instant::now();
            std::hint::black_box(snapshot.eval_pair_str(query, s, t));
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    pair_ms.sort_by(f64::total_cmp);
    let pair_p50_ms = percentile(&pair_ms, 50);
    let pair_p99_ms = percentile(&pair_ms, 99);

    let from_sweeps = if smoke { 50 } else { 100 };
    let mut from_ms: Vec<f64> = (0..from_sweeps)
        .map(|_| {
            let s = rng.gen_range(0..num_nodes);
            let t0 = Instant::now();
            std::hint::black_box(snapshot.eval_from_str(query, s, None).targets.len());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    from_ms.sort_by(f64::total_cmp);
    let from_p50_ms = percentile(&from_ms, 50);
    let from_p99_ms = percentile(&from_ms, 99);

    println!(
        "interactive |V|=100000    : full materialize {full_materialize_ms:.3} ms; \
         pair p50 {pair_p50_ms:.4} ms / p99 {pair_p99_ms:.4} ms ({} lookups, {}); \
         from p50 {from_p50_ms:.4} ms / p99 {from_p99_ms:.4} ms ({} sweeps)",
        pair_lookups,
        speedup_label(full_materialize_ms, pair_p99_ms),
        from_sweeps
    );
    if smoke {
        match speedup(full_materialize_ms, pair_p99_ms) {
            Some(ratio) if ratio < 10.0 => println!(
                "::warning title=interactive latency::single-pair p99 only {ratio:.1}x \
                 under full materialization (< 10x)"
            ),
            _ => {}
        }
    }
    vec![json!({
        "workload": "power_law_v100000_e400000",
        "full_materialize_ms": full_materialize_ms,
        "pair_lookups": pair_lookups,
        "pair_p50_ms": pair_p50_ms,
        "interactive_pair_p99_ms": pair_p99_ms,
        "from_sweeps": from_sweeps,
        "from_p50_ms": from_p50_ms,
        "from_p99_ms": from_p99_ms,
        "speedup": speedup_json(full_materialize_ms, pair_p99_ms),
    })]
}

/// Observability smoke + overhead guard (the CI "Metrics smoke" step,
/// `experiments metrics`).  Two halves, both of which panic — exiting
/// nonzero — on failure:
///
/// 1. **Overhead guard**: cold-cache evaluation of the |V| = 1000 workload
///    with telemetry collection on vs off must differ by less than 5%
///    (plus a small absolute slack so a near-0 ms denominator cannot trip
///    the ratio on scheduler noise).  A fresh engine per run keeps the
///    revision-exact answer cache from turning later runs into cache hits.
/// 2. **Explain surface**: a traced query against a live in-process server
///    must echo its trace id, report every cold-eval phase, and cover at
///    least 90% of the measured wall time with top-level spans; the
///    `metrics` op must report non-zero engine + service histogram counts
///    and a parseable Prometheus exposition.
fn metrics_rows() -> Vec<Value> {
    use engine::{EngineConfig, QueryEngine};

    let workload = random_rpq_workload(1000, 4000, 42);
    let grounded = workload.problem.query.ground(&workload.problem.theory);
    // At least two workers so the traced run exercises the sharded sweep
    // (and its chunk_merge phase); |V| = 1000 is over the parallel
    // threshold either way.
    let threads = bench_threads().max(2);

    let measure = |telemetry: bool| -> f64 {
        (0..7)
            .map(|_| {
                let mut engine = QueryEngine::with_config(
                    workload.db.clone(),
                    EngineConfig { telemetry, threads, ..EngineConfig::default() },
                );
                let snapshot = engine.publish_snapshot();
                let t0 = Instant::now();
                std::hint::black_box(snapshot.eval_regex(&grounded).len());
                t0.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let off_ms = measure(false);
    let on_ms = measure(true);
    println!(
        "telemetry overhead |V|=1000: off {off_ms:.3} ms, on {on_ms:.3} ms ({})",
        speedup(on_ms, off_ms)
            .map_or_else(|| "n/a".to_string(), |r| format!("{:+.1}%", (r - 1.0) * 100.0))
    );
    assert!(
        on_ms <= off_ms * 1.05 + 0.1,
        "telemetry overhead beyond the 5% budget: off {off_ms:.3} ms -> on {on_ms:.3} ms"
    );

    let config = service::ServiceConfig {
        engine: EngineConfig { threads, ..EngineConfig::default() },
        ..service::ServiceConfig::default()
    };
    let server = service::Server::start(workload.db.clone(), config).expect("server starts");
    let mut client = ServiceClient::connect(server.addr());

    let response = client.roundtrip(&format!(
        "{{\"id\":1,\"op\":\"query\",\"q\":\"{grounded}\",\"trace\":true,\
         \"trace_id\":4242,\"limit\":64}}"
    ));
    assert_eq!(response["ok"].as_bool(), Some(true), "traced query failed: {response:?}");
    let trace = &response["trace"];
    assert_eq!(trace["trace_id"].as_u64(), Some(4242), "trace id must echo verbatim");
    for phase in ["parse", "cache_lookup", "compile", "product_bfs", "chunk_merge"] {
        assert!(
            trace["phase_totals"][phase].as_u64().is_some(),
            "cold traced eval is missing phase {phase}: {response:?}"
        );
    }
    let total_us = trace["total_us"].as_u64().expect("total_us");
    let top_level_us = trace["top_level_us"].as_u64().expect("top_level_us");
    assert!(
        top_level_us as f64 >= 0.9 * total_us as f64,
        "top-level spans cover only {top_level_us} of {total_us} us (< 90%)"
    );

    let metrics = client.roundtrip("{\"op\":\"metrics\"}");
    assert_eq!(metrics["ok"].as_bool(), Some(true), "metrics op failed: {metrics:?}");
    let engine_evals = metrics["engine"]["eval"]["count"].as_u64().unwrap_or(0);
    let service_queries = metrics["service"]["query"]["count"].as_u64().unwrap_or(0);
    assert!(engine_evals >= 1, "engine eval histogram is empty: {metrics:?}");
    assert!(service_queries >= 1, "service query histogram is empty: {metrics:?}");

    let response = client.roundtrip("{\"op\":\"metrics\",\"format\":\"prometheus\"}");
    assert_eq!(response["ok"].as_bool(), Some(true), "prometheus format failed: {response:?}");
    let text = response["exposition"].as_str().expect("exposition text").to_string();
    assert!(
        text.contains("# TYPE rpq_engine_eval_duration_seconds histogram"),
        "missing the engine eval family:\n{text}"
    );
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (_, value) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("sample line has no value: {line}"));
        assert!(value.parse::<f64>().is_ok(), "unparseable sample: {line}");
        samples += 1;
    }
    server.shutdown();

    println!(
        "metrics smoke             : trace covered {top_level_us}/{total_us} us, \
         {engine_evals} engine eval(s), {samples} prometheus sample(s)"
    );
    vec![json!({
        "workload": "telemetry_overhead_v1000_e4000",
        "threads": threads,
        "telemetry_off_ms": off_ms,
        "telemetry_on_ms": on_ms,
        "overhead_ratio": speedup_json(on_ms, off_ms),
        "trace_total_us": total_us,
        "trace_top_level_us": top_level_us,
        "prometheus_samples": samples,
    })]
}

/// Compares every `*_ms` field of the new snapshot against the committed one
/// (rows matched by section and workload) and flags slowdowns beyond 20% as
/// GitHub warning annotations.  New sections/workloads/fields pass silently
/// — only measured-vs-measured regressions are flagged.
fn diff_bench_snapshots(old: &Value, new: &Value) {
    println!("---- diff vs committed BENCH_rpq.json (threshold: +20% on *_ms) ----");
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (section, rows) in new.as_object().unwrap_or(&[]) {
        let Some(rows) = rows.as_array() else { continue };
        let Some(old_rows) = old.get(section).and_then(Value::as_array) else {
            // A section the committed snapshot predates: one line for the
            // whole section, not a row-by-row drizzle — newly added
            // instrumentation must not read as regression-diff noise.
            println!("  [new section] {section} ({} row(s))", rows.len());
            continue;
        };
        for row in rows {
            let Some(workload) = row.get("workload").and_then(Value::as_str) else {
                continue;
            };
            let old_row = old_rows
                .iter()
                .find(|r| r.get("workload").and_then(Value::as_str) == Some(workload));
            let Some(old_row) = old_row else {
                println!("  [new row] {section}/{workload}");
                continue;
            };
            for (field, value) in row.as_object().unwrap_or(&[]) {
                if !field.ends_with("_ms") {
                    continue;
                }
                let (Some(new_ms), Some(old_ms)) =
                    (value.as_f64(), old_row.get(field).and_then(Value::as_f64))
                else {
                    continue;
                };
                // Only the product's own hot paths gate; baseline_ms /
                // sequential_ms / rematerialize_ms / single_reader_ms time
                // the deliberately slow (or deliberately unscaled) reference
                // strategies and would train everyone to ignore the
                // annotation.
                let gated = matches!(
                    field.as_str(),
                    "dense_ms"
                        | "parallel_ms"
                        | "merge_ms"
                        | "delta_repair_ms"
                        | "delta_delete_ms"
                        | "concurrent_reader_ms"
                        | "service_p99_ms"
                        | "interactive_pair_p99_ms"
                );
                compared += 1;
                let change = (new_ms - old_ms) / old_ms.max(f64::MIN_POSITIVE) * 100.0;
                if gated && new_ms > old_ms * 1.2 {
                    regressions += 1;
                    // GitHub renders `::warning::` lines as annotations.
                    println!(
                        "::warning title=perf regression::{section}/{workload}/{field}: \
                         {old_ms:.3} ms -> {new_ms:.3} ms ({change:+.0}%)"
                    );
                } else {
                    let tag = if gated { "ok " } else { "ref" };
                    println!(
                        "  {tag} {section}/{workload}/{field}: {old_ms:.3} -> {new_ms:.3} ms ({change:+.0}%)"
                    );
                }
            }
        }
    }
    println!("{compared} timings compared, {regressions} regression(s) beyond 20%");
}

/// E1 — Figure 1 / Examples 2.2 & 2.3: the full pipeline on the paper's
/// running example.
fn e1_figure1() -> Value {
    let problem = RewriteProblem::parse(
        "a·(b·a+c)*",
        [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
    )
    .expect("paper instance");
    let report = run_and_report(&problem);
    println!("query        : {}", report.query);
    println!("views        : {:?}", report.views);
    println!("rewriting    : {}   (paper: e2*·e1·e3*)", report.rewriting);
    println!("exact        : {}   (paper: exact)", report.exact);
    println!("A_d states   : {}", report.stats.query_dfa_states);
    println!("A' edges     : {}", report.stats.a_prime_transitions);
    json!({ "report": report, "expected_rewriting": "e2*·e1·e3*", "expected_exact": true })
}

/// E2 — Example 2.1: Σ- vs Σ_E-maximality on a* w.r.t. {a*}.
fn e2_example21() -> Value {
    let problem = RewriteProblem::parse("a*", [("e", "a*")]).expect("paper instance");
    let report = run_and_report(&problem);
    println!("query      : {}", report.query);
    println!("rewriting  : {}   (paper: e* — the Σ_E-maximal one)", report.rewriting);
    println!("exact      : {}", report.exact);
    json!({ "report": report, "expected_rewriting": "e*", "expected_exact": true })
}

/// E3 — Example 2.3 variant: dropping view c loses exactness.
fn e3_example23() -> Value {
    let problem =
        RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b")]).expect("instance");
    let report = run_and_report(&problem);
    println!("query        : {}", report.query);
    println!("rewriting    : {}   (paper: e2*·e1)", report.rewriting);
    println!("exact        : {}   (paper: not exact)", report.exact);
    println!("counterexample in L(E0) missed by the rewriting: {:?}", report.counterexample);
    json!({ "report": report, "expected_rewriting": "e2*·e1", "expected_exact": false })
}

/// E4 — Example 4.1: partial rewritings at the RPQ level.
fn e4_example41() -> Value {
    let problem = rpq::RpqRewriteProblem::parse_labels("a·(b+c)", [("q1", "a"), ("q2", "b")])
        .expect("paper instance");
    let before = rpq::rewrite_rpq(&problem).expect("rewrites");
    let partial = rpq::find_partial_rewriting(&problem).expect("partial rewriting exists");
    let added: Vec<String> = partial.added.iter().map(|v| v.symbol()).collect();
    println!("query                  : a·(b+c) with views {{q1:=a, q2:=b}}");
    println!("maximal rewriting      : {}   exact: {}", before.regex(), before.is_exact());
    println!("added atomic views     : {added:?}   (paper: the elementary view c)");
    println!("partial rewriting      : {}   exact: {}", partial.rewriting.regex(), partial.rewriting.is_exact());
    json!({
        "maximal_rewriting": before.regex().to_string(),
        "maximal_exact": before.is_exact(),
        "added_views": added,
        "partial_rewriting": partial.rewriting.regex().to_string(),
        "partial_exact": partial.rewriting.is_exact(),
    })
}

/// E5 — construction scaling (Theorem 3.1 upper bound): time and sizes vs
/// query size, with/without the minimization ablation.
fn e5_rewriting_scaling() -> Value {
    println!("{:>6} {:>6} {:>10} {:>10} {:>12} {:>12}", "|E0|", "k", "A_d", "R states", "t(min) ms", "t(nomin) ms");
    let mut rows = Vec::new();
    for &query_size in &[6usize, 10, 14, 18, 22, 26] {
        for &num_views in &[2usize, 4] {
            let cfg = RandomProblemConfig {
                alphabet_size: 3,
                query_size,
                num_views,
                view_size: 5,
            };
            let mut dfa_states = 0usize;
            let mut rewriting_states = 0usize;
            let mut time_min = 0.0f64;
            let mut time_nomin = 0.0f64;
            let seeds = 5u64;
            for seed in 0..seeds {
                let problem = random_problem(&cfg, seed * 37 + query_size as u64);
                let t0 = Instant::now();
                let with_min = compute_maximal_rewriting(&problem);
                time_min += t0.elapsed().as_secs_f64() * 1e3;
                let t1 = Instant::now();
                let _ = compute_maximal_rewriting_with(
                    &problem,
                    &RewriterOptions {
                        minimize_query_dfa: false,
                        ..Default::default()
                    },
                );
                time_nomin += t1.elapsed().as_secs_f64() * 1e3;
                dfa_states += with_min.stats.query_dfa_states;
                rewriting_states += with_min.stats.rewriting_states;
            }
            let n = seeds as f64;
            println!(
                "{:>6} {:>6} {:>10.1} {:>10.1} {:>12.2} {:>12.2}",
                query_size,
                num_views,
                dfa_states as f64 / n,
                rewriting_states as f64 / n,
                time_min / n,
                time_nomin / n
            );
            rows.push(json!({
                "query_size": query_size,
                "num_views": num_views,
                "avg_query_dfa_states": dfa_states as f64 / n,
                "avg_rewriting_states": rewriting_states as f64 / n,
                "avg_ms_with_minimization": time_min / n,
                "avg_ms_without_minimization": time_nomin / n,
            }));
        }
    }
    json!({ "rows": rows })
}

/// E6 — determinization blow-up underlying Theorems 3.1/3.4.
fn e6_determinization() -> Value {
    println!("{:>4} {:>12} {:>12} {:>12}", "k", "NFA states", "DFA states", "2^(k+1)");
    let mut rows = Vec::new();
    for k in [2usize, 4, 6, 8, 10, 12] {
        let (_, nfa) = determinization_family(k);
        let t0 = Instant::now();
        let dfa = automata::determinize(&nfa);
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        println!("{:>4} {:>12} {:>12} {:>12}", k, nfa.num_states(), dfa.num_states(), 1usize << (k + 1));
        rows.push(json!({
            "k": k,
            "nfa_states": nfa.num_states(),
            "dfa_states": dfa.num_states(),
            "lower_bound": 1usize << (k + 1),
            "ms": elapsed,
        }));
    }
    json!({ "rows": rows })
}

/// E7 — Theorem 3.4 family: poly-size instances with exponentially long
/// shortest rewriting words, plus the doubly exponential yardstick.
///
/// The shortest-word claim is validated at the word level (membership of the
/// unique width-`2^n` tiling word and rejection of every shorter candidate);
/// materializing the full rewriting automaton is what the theorem proves
/// infeasible, and is left to `cargo test -p tiling --release -- --ignored`.
fn e7_lower_bound_family() -> Value {
    println!(
        "{:>3} {:>14} {:>18} {:>18} {:>22}",
        "n", "instance size", "shortest |word|", "word accepted?", "Thm 3.4 yardstick |w_C|"
    );
    let mut rows = Vec::new();
    for n in 1usize..=3 {
        let enc = tiling::exponential_family(n);
        let instance_size = enc.instance_size();
        let width = enc.row_width();
        // The unique single-row tiling word: s · m^(width-2) · f.
        let mut word: Vec<&str> = vec!["s"];
        word.extend(std::iter::repeat_n("m", width - 2));
        word.push("f");
        let accepted = enc.word_in_rewriting(&word);
        // No shorter word of tiling shape exists: the only shorter candidate
        // lattice point is the empty word, and prefixes are rejected.
        let prefix_rejected = !enc.word_in_rewriting(&word[..width - 1]);
        let yardstick = tiling::counter_word_length(n as u32);
        println!(
            "{:>3} {:>14} {:>18} {:>18} {:>22}",
            n,
            instance_size,
            width,
            accepted && prefix_rejected,
            yardstick
        );
        rows.push(json!({
            "n": n,
            "instance_size": instance_size,
            "shortest_rewriting_word": width,
            "expected_shortest": 1usize << n,
            "tiling_word_accepted": accepted,
            "shorter_prefix_rejected": prefix_rejected,
            "counter_yardstick_length": yardstick.to_string(),
        }));
    }
    // Structural validation of the counter word itself.
    let wc = tiling::counter_word(4);
    println!("counter word w_C for a 4-bit counter: {} blocks (= 4·2^4)", wc.len());
    json!({ "rows": rows, "counter_word_blocks_width4": wc.len() })
}

/// E8 — the EXPSPACE reduction of Theorem 3.3 validated at n = 1 (row width
/// 2): the brute-force tiling solver and the word-level rewriting membership
/// agree on every candidate word of tiling shape.
fn e8_expspace_reduction() -> Value {
    let systems = [
        ("solvable_chain", tiling::TileSystem::solvable_chain()),
        ("striped", tiling::TileSystem::striped()),
        ("unsolvable", tiling::TileSystem::unsolvable()),
    ];
    println!(
        "{:>16} {:>14} {:>22} {:>10}",
        "tile system", "tiling exists", "witness in rewriting", "agree"
    );
    let mut rows = Vec::new();
    for (name, system) in systems {
        let witness = tiling::solve(&system, 2, 6);
        let tiling_exists = witness.is_some();
        let enc = tiling::EncodedTiling::encode(&system, 1);
        // Either the solver's witness word is accepted, or (for unsolvable
        // systems) every length-2 candidate is rejected.
        let rewriting_has_word = match &witness {
            Some(tiling) => {
                let word: Vec<String> = tiling.iter().flatten().cloned().collect();
                let refs: Vec<&str> = word.iter().map(String::as_str).collect();
                enc.word_in_rewriting(&refs)
            }
            None => {
                let tiles: Vec<&str> = system.tiles.iter().map(String::as_str).collect();
                tiles
                    .iter()
                    .any(|&a| tiles.iter().any(|&b| enc.word_in_rewriting(&[a, b])))
            }
        };
        let agree = tiling_exists == rewriting_has_word;
        println!(
            "{:>16} {:>14} {:>22} {:>10}",
            name, tiling_exists, rewriting_has_word, agree
        );
        rows.push(json!({
            "system": name,
            "tiling_exists": tiling_exists,
            "rewriting_has_tiling_word": rewriting_has_word,
            "instance_size": enc.instance_size(),
            "agree": agree,
        }));
    }
    json!({ "n": 1, "rows": rows })
}

/// E9 — RPQ rewriting semantics over random databases (soundness always,
/// completeness iff exact).
fn e9_rpq_semantics() -> Value {
    println!("{:>8} {:>8} {:>10} {:>10} {:>8} {:>10}", "nodes", "edges", "direct", "via views", "sound", "complete");
    let mut rows = Vec::new();
    for &(nodes, edges) in &[(50usize, 150usize), (100, 400), (200, 800), (400, 1600)] {
        for seed in 0..3u64 {
            let w = random_rpq_workload(nodes, edges, seed);
            let rewriting = rpq::rewrite_rpq(&w.problem).expect("workload rewrites");
            let cmp = rpq::compare_on_database(&w.db, &w.problem, &rewriting);
            println!(
                "{:>8} {:>8} {:>10} {:>10} {:>8} {:>10}",
                nodes, edges, cmp.direct_size, cmp.via_views_size, cmp.sound, cmp.complete
            );
            rows.push(json!({
                "nodes": nodes,
                "edges": edges,
                "seed": seed,
                "exact": rewriting.is_exact(),
                "comparison": cmp,
            }));
        }
    }
    json!({ "rows": rows })
}

/// E10 — cost of evaluating the query directly vs evaluating the rewriting
/// over materialized views.
fn e10_view_eval() -> Value {
    println!("{:>8} {:>8} {:>14} {:>14} {:>12}", "nodes", "edges", "direct ms", "via views ms", "view tuples");
    let mut rows = Vec::new();
    for &(nodes, edges) in &[(50usize, 150usize), (100, 400), (200, 800), (400, 1600)] {
        let w = random_rpq_workload(nodes, edges, 7);
        let rewriting = rpq::rewrite_rpq(&w.problem).expect("workload rewrites");
        let t0 = Instant::now();
        let direct = rpq::answer_rpq(&w.db, &w.problem.query, &w.problem.theory);
        let direct_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let views = rpq::materialize_views(&w.db, &w.problem);
        let over_views = automata::Nfa::from_dfa(&rewriting.maximal.automaton)
            .with_alphabet(views.view_alphabet().clone());
        let via = views.eval_over_views(&over_views);
        let views_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>8} {:>8} {:>14.2} {:>14.2} {:>12}",
            nodes, edges, direct_ms, views_ms, views.total_tuples()
        );
        rows.push(json!({
            "nodes": nodes,
            "edges": edges,
            "direct_ms": direct_ms,
            "views_ms": views_ms,
            "direct_answers": direct.len(),
            "via_views_answers": via.len(),
            "view_tuples": views.total_tuples(),
        }));
    }
    json!({ "rows": rows })
}

/// E11 — exactness-check ablation: on-the-fly (Theorem 3.2) vs explicit
/// complement.
fn e11_exactness() -> Value {
    println!("{:>6} {:>6} {:>16} {:>16}", "|E0|", "k", "on-the-fly ms", "explicit ms");
    let mut rows = Vec::new();
    for &query_size in &[8usize, 12, 16, 20] {
        let cfg = RandomProblemConfig {
            alphabet_size: 3,
            query_size,
            num_views: 3,
            view_size: 5,
        };
        let mut lazy_ms = 0.0;
        let mut explicit_ms = 0.0;
        let seeds = 5u64;
        for seed in 0..seeds {
            let problem = random_problem(&cfg, seed * 101 + query_size as u64);
            let rewriting = compute_maximal_rewriting(&problem);
            let t0 = Instant::now();
            let lazy = check_exactness_with(&rewriting, &problem.views, ExactnessStrategy::OnTheFly);
            lazy_ms += t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let explicit = check_exactness_with(
                &rewriting,
                &problem.views,
                ExactnessStrategy::ExplicitComplement,
            );
            explicit_ms += t1.elapsed().as_secs_f64() * 1e3;
            assert_eq!(lazy.exact, explicit.exact, "strategies must agree");
        }
        let n = seeds as f64;
        println!("{:>6} {:>6} {:>16.3} {:>16.3}", query_size, 3, lazy_ms / n, explicit_ms / n);
        rows.push(json!({
            "query_size": query_size,
            "num_views": 3,
            "on_the_fly_ms": lazy_ms / n,
            "explicit_ms": explicit_ms / n,
        }));
    }
    json!({ "rows": rows })
}

/// E12 — partial rewritings: how many atomic views random instances need.
fn e12_partial_rewritings() -> Value {
    println!("{:>6} {:>10} {:>12} {:>16}", "seed", "exact?", "added views", "added nonelem");
    let mut rows = Vec::new();
    let mut histogram = std::collections::BTreeMap::new();
    for seed in 0..10u64 {
        let cfg = RandomProblemConfig {
            alphabet_size: 3,
            query_size: 8,
            num_views: 2,
            view_size: 3,
        };
        let base = random_problem(&cfg, seed * 13 + 1);
        // Lift the regex problem to the RPQ level with an elementary theory.
        let views: Vec<(String, rpq::Rpq)> = base
            .views
            .views()
            .map(|v| (v.symbol.clone(), rpq::Rpq::from_labels(v.definition.clone())))
            .collect();
        let theory = graphdb::Theory::elementary(base.views.sigma().clone());
        let problem = rpq::RpqRewriteProblem::new(
            rpq::Rpq::from_labels(base.query.clone()),
            views,
            theory,
        )
        .expect("lifted problem is well-formed");
        let was_exact = rpq::rewrite_rpq(&problem).map(|r| r.is_exact()).unwrap_or(false);
        let partial = rpq::find_partial_rewriting(&problem);
        let (added, nonelem) = partial
            .as_ref()
            .map(|p| (p.num_added(), p.num_added_nonelementary()))
            .unwrap_or((usize::MAX, usize::MAX));
        println!("{:>6} {:>10} {:>12} {:>16}", seed, was_exact, added, nonelem);
        *histogram.entry(added).or_insert(0usize) += 1;
        rows.push(json!({
            "seed": seed,
            "already_exact": was_exact,
            "added_atomic_views": added,
            "added_nonelementary": nonelem,
        }));
    }
    let histogram: Vec<Value> = histogram
        .into_iter()
        .map(|(added, count)| json!({ "added": added, "count": count }))
        .collect();
    json!({ "rows": rows, "histogram": histogram })
}
