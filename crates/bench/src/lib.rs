//! # bench — workloads and experiment harness
//!
//! This crate holds the shared workload generators used by the Criterion
//! benchmarks (`benches/`) and by the `experiments` binary that regenerates
//! every figure, example, and complexity-scaling experiment listed in
//! DESIGN.md / EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod workloads;

pub use workloads::{
    blowup_rewriting_problem, determinization_family, random_problem, random_rpq_workload,
    RandomProblemConfig, RpqWorkload,
};
