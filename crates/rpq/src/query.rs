//! Regular path queries over formulae (§4.1–4.2 of the paper).
//!
//! In the formula-based data model a regular path query is a regular
//! expression over the (finite) set `F` of unary formulae of the theory `T`;
//! a path answers the query when its label word *matches* a word of the
//! query's language, i.e. when `T ⊨ φ_i(a_i)` position-wise
//! (Definition 4.1/4.2).
//!
//! An [`Rpq`] couples a regular expression whose symbols are *formula names*
//! with the formulae those names denote.  The special case where every
//! formula is elementary (`λz.z = a`) recovers the first data model, in which
//! queries are written directly over the edge labels.

use std::collections::BTreeMap;
use std::fmt;

use automata::Alphabet;
use graphdb::{Formula, Theory};
use regexlang::Regex;

/// Errors raised while assembling RPQs and RPQ rewriting problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpqError {
    /// The regex mentions a formula name with no associated formula.
    UnboundFormula(String),
    /// Two views were registered under the same view symbol.
    DuplicateViewSymbol(String),
    /// The query string failed to parse.
    Parse(String),
    /// The view set is empty.
    NoViews,
}

impl fmt::Display for RpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpqError::UnboundFormula(s) => write!(f, "formula name `{s}` has no definition"),
            RpqError::DuplicateViewSymbol(s) => write!(f, "duplicate view symbol `{s}`"),
            RpqError::Parse(s) => write!(f, "parse error: {s}"),
            RpqError::NoViews => write!(f, "the view set is empty"),
        }
    }
}

impl std::error::Error for RpqError {}

/// A regular path query: a regular expression over named formulae.
#[derive(Debug, Clone)]
pub struct Rpq {
    /// The path expression; its symbols are keys of `formulas`.
    pub regex: Regex,
    /// The formula denoted by each symbol occurring in `regex`.
    pub formulas: BTreeMap<String, Formula>,
}

impl Rpq {
    /// Builds an RPQ, checking that every symbol of the expression has a
    /// formula.
    pub fn new(
        regex: Regex,
        formulas: impl IntoIterator<Item = (String, Formula)>,
    ) -> Result<Self, RpqError> {
        let formulas: BTreeMap<String, Formula> = formulas.into_iter().collect();
        for sym in regex.symbols() {
            if !formulas.contains_key(&sym) {
                return Err(RpqError::UnboundFormula(sym));
            }
        }
        Ok(Self { regex, formulas })
    }

    /// Builds an RPQ in the label-based model: every symbol `a` of the
    /// expression denotes the elementary formula `λz.z = a`.
    pub fn from_labels(regex: Regex) -> Self {
        let formulas = regex
            .symbols()
            .into_iter()
            .map(|name| {
                let formula = Formula::equals(name.clone());
                (name, formula)
            })
            .collect();
        Self { regex, formulas }
    }

    /// Parses a label-based RPQ from the paper's concrete syntax.
    pub fn parse_labels(src: &str) -> Result<Self, RpqError> {
        let regex = regexlang::parse(src).map_err(|e| RpqError::Parse(e.to_string()))?;
        Ok(Self::from_labels(regex))
    }

    /// The formula alphabet `F` of this query (one symbol per distinct
    /// formula name).
    pub fn formula_alphabet(&self) -> Alphabet {
        Alphabet::from_names(self.regex.symbols()).expect("symbol sets have no duplicates")
    }

    /// The formula denoted by a symbol, if any.
    pub fn formula(&self, name: &str) -> Option<&Formula> {
        self.formulas.get(name)
    }

    /// Grounds the query over the theory's domain: every formula symbol is
    /// replaced by the union of the constants satisfying it (`∅` when no
    /// constant does).  The result is exactly the `Q*` construction of §4.2
    /// expressed at the regular-expression level:
    /// `L(ground(Q)) = match(L(Q))`.
    pub fn ground(&self, theory: &Theory) -> Regex {
        let grounded = self.regex.substitute(&|name| {
            let formula = self
                .formulas
                .get(name)
                .unwrap_or_else(|| panic!("symbol `{name}` checked at construction"));
            Regex::union_all(
                theory
                    .satisfying_constants(formula)
                    .into_iter()
                    .map(Regex::symbol),
            )
        });
        regexlang::simplify(&grounded)
    }

    /// Syntactic size of the query expression.
    pub fn size(&self) -> usize {
        self.regex.size()
    }
}

impl fmt::Display for Rpq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.regex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regexlang::parse;

    fn travel_theory() -> Theory {
        Theory::new(
            Alphabet::from_names(["rome", "jerusalem", "paris", "restaurant"]).unwrap(),
            [
                (
                    "City".to_string(),
                    vec!["rome".to_string(), "jerusalem".to_string(), "paris".to_string()],
                ),
                (
                    "EuropeanCity".to_string(),
                    vec!["rome".to_string(), "paris".to_string()],
                ),
            ],
        )
    }

    #[test]
    fn label_based_queries_bind_elementary_formulas() {
        let q = Rpq::parse_labels("rome·restaurant*").unwrap();
        assert_eq!(q.formulas.len(), 2);
        assert_eq!(q.formula("rome"), Some(&Formula::equals("rome")));
        assert_eq!(q.formula_alphabet().len(), 2);
        assert_eq!(q.to_string(), "rome·restaurant*");
        assert_eq!(q.size(), 4);
    }

    #[test]
    fn formula_queries_require_bindings() {
        let err = Rpq::new(parse("City·restaurant").unwrap(), [
            ("City".to_string(), Formula::pred("City")),
        ])
        .unwrap_err();
        assert_eq!(err, RpqError::UnboundFormula("restaurant".to_string()));
        let ok = Rpq::new(parse("City·restaurant").unwrap(), [
            ("City".to_string(), Formula::pred("City")),
            ("restaurant".to_string(), Formula::equals("restaurant")),
        ]);
        assert!(ok.is_ok());
    }

    #[test]
    fn grounding_expands_predicates_to_constants() {
        let theory = travel_theory();
        let q = Rpq::new(parse("City·restaurant").unwrap(), [
            ("City".to_string(), Formula::pred("City")),
            ("restaurant".to_string(), Formula::equals("restaurant")),
        ])
        .unwrap();
        let grounded = q.ground(&theory);
        assert_eq!(grounded.to_string(), "(rome+jerusalem+paris)·restaurant");
    }

    #[test]
    fn grounding_label_queries_is_identity_up_to_simplification() {
        let theory = Theory::elementary(travel_theory().domain().clone());
        let q = Rpq::parse_labels("rome·restaurant*").unwrap();
        assert_eq!(q.ground(&theory).to_string(), "rome·restaurant*");
    }

    #[test]
    fn unsatisfiable_formulas_ground_to_empty() {
        let theory = travel_theory();
        let q = Rpq::new(parse("Nowhere+rome").unwrap(), [
            ("Nowhere".to_string(), Formula::pred("Nowhere")),
            ("rome".to_string(), Formula::equals("rome")),
        ])
        .unwrap();
        // Nowhere is not interpreted, so it contributes ∅ and disappears from
        // the union.
        assert_eq!(q.ground(&theory).to_string(), "rome");
    }

    #[test]
    fn parse_errors_are_reported() {
        let err = Rpq::parse_labels("a·(b").unwrap_err();
        assert!(matches!(err, RpqError::Parse(_)));
    }
}
