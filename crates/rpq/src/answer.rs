//! Answering queries and rewritings over concrete databases.
//!
//! Definition 4.3 of the paper defines a rewriting of a path query
//! semantically: for *every* database, evaluating the expansion of the
//! rewriting must return a subset of the query's answer (and exactly the
//! answer when the rewriting is exact).  This module makes both sides of the
//! definition executable:
//!
//! * [`answer_rpq`] evaluates a (possibly formula-based) query directly on a
//!   database, and
//! * [`answer_rewriting_over_views`] materializes the view extensions and
//!   evaluates the rewriting over them — the operational reading of
//!   "using only the views".
//!
//! [`compare_on_database`] packages the soundness/completeness comparison the
//! integration tests and experiment E9/E10 rely on.
//!
//! Every view-based path runs through an [`engine::QueryEngine`]: the
//! database-owning entry points (`materialize_views`, `compare_on_database`,
//! `answer_rewriting_over_views`) spin up a one-shot engine internally, and
//! the `*_in` variants take a caller-held engine so repeated calls share its
//! compile cache (each view and rewriting automaton is frozen once), its
//! revisioned view-extension cache, and its parallel evaluator.  The engine
//! may mutate between calls — both insertions (`add_edge`/`add_edges`) and
//! deletions (`remove_edge`/`remove_edges`) — and the cached view
//! extensions are repaired incrementally rather than re-materialized.
//!
//! For concurrent serving, the `*_at` variants take an
//! [`engine::EngineSnapshot`] instead: once the views are registered and a
//! snapshot published (`&mut` setup on the writer), any number of reader
//! threads answer queries and rewritings at that pinned revision with
//! `&self` — see [`snapshot_for_problem`].

use std::sync::Arc;

use engine::{EngineSnapshot, QueryEngine};
use graphdb::{eval_regex, Answer, GraphDb, MaterializedViews, Theory};
use serde::Serialize;

use crate::query::Rpq;
use crate::rewrite::{RpqRewriteProblem, RpqRewriting};

/// Evaluates a regular path query over a database under a theory: the query
/// is grounded to the domain constants and evaluated by product reachability.
///
/// The database's label domain must contain every constant the grounded query
/// mentions (it may contain more — e.g. labels no view or query talks about);
/// a missing label is reported by the underlying evaluator.
pub fn answer_rpq(db: &GraphDb, query: &Rpq, theory: &Theory) -> Answer {
    let grounded = query.ground(theory);
    eval_regex(db, &grounded)
}

/// Like [`answer_rpq`] but through an engine, so the grounded query is
/// compiled once and the answer is cached per database revision.
pub fn answer_rpq_in(engine: &mut QueryEngine, query: &Rpq, theory: &Theory) -> Arc<Answer> {
    engine.eval_regex(&query.ground(theory))
}

/// Like [`answer_rpq_in`] but against a published snapshot: callable with
/// `&self` from any reader thread, answering at the snapshot's pinned
/// revision through the engine's shared compile and answer caches.
pub fn answer_rpq_at(snapshot: &EngineSnapshot, query: &Rpq, theory: &Theory) -> Arc<Answer> {
    snapshot.eval_regex(&query.ground(theory))
}

/// Registers the (grounded) views of `problem` on `engine`, reusing cached
/// compilations and extensions for views already registered under the same
/// name and definition.
pub fn register_problem_views(engine: &mut QueryEngine, problem: &RpqRewriteProblem) {
    for (name, view) in &problem.views {
        engine.register_view(name, view.ground(&problem.theory));
    }
}

/// Materializes the views of `problem` through `engine`: definitions are
/// frozen via the engine's compile cache, extensions come from its
/// revisioned view cache (incrementally maintained across `add_edge`), and
/// evaluation runs on its thread pool.
pub fn materialize_views_in(
    engine: &mut QueryEngine,
    problem: &RpqRewriteProblem,
) -> Arc<MaterializedViews> {
    register_problem_views(engine, problem);
    engine.materialized_views()
}

/// Registers the (grounded) views of `problem` and publishes the current
/// revision's immutable snapshot: the read handle for concurrent serving.
/// Hand clones of the returned `Arc` to reader threads and keep mutating
/// the writer; each reader keeps answering at its pinned revision via
/// [`answer_rpq_at`] / [`answer_rewriting_over_views_at`] /
/// [`compare_on_database_at`].
pub fn snapshot_for_problem(
    engine: &mut QueryEngine,
    problem: &RpqRewriteProblem,
) -> Arc<EngineSnapshot> {
    register_problem_views(engine, problem);
    engine.publish_snapshot()
}

/// Materializes the (grounded) views of `problem` over `db` with a one-shot
/// engine.  Callers evaluating repeatedly should hold a [`QueryEngine`] and
/// use [`materialize_views_in`] to keep its caches warm.
pub fn materialize_views(db: &GraphDb, problem: &RpqRewriteProblem) -> MaterializedViews {
    let mut engine = QueryEngine::new(db.clone());
    let views = materialize_views_in(&mut engine, problem);
    (*views).clone()
}

/// Like [`answer_rewriting_over_views`] but through a caller-held engine:
/// the dense rewriting automaton is interned in the engine's compile cache
/// by DFA fingerprint, so repeated calls skip both the tree-NFA
/// construction and the freeze.
pub fn answer_rewriting_over_views_in(
    engine: &mut QueryEngine,
    problem: &RpqRewriteProblem,
    rewriting: &RpqRewriting,
) -> Answer {
    snapshot_for_problem(engine, problem).eval_dfa_over_views(&rewriting.maximal.automaton)
}

/// Like [`answer_rewriting_over_views`] but against a published snapshot
/// (see [`snapshot_for_problem`]): evaluates the rewriting over the view
/// extensions captured at the snapshot's revision, with `&self`.
pub fn answer_rewriting_over_views_at(
    snapshot: &EngineSnapshot,
    rewriting: &RpqRewriting,
) -> Answer {
    snapshot.eval_dfa_over_views(&rewriting.maximal.automaton)
}

/// Evaluates the rewriting over the materialized views only (never touching
/// the base edges of the database).
pub fn answer_rewriting_over_views(
    db: &GraphDb,
    problem: &RpqRewriteProblem,
    rewriting: &RpqRewriting,
) -> Answer {
    let mut engine = QueryEngine::new(db.clone());
    answer_rewriting_over_views_in(&mut engine, problem, rewriting)
}

/// Side-by-side comparison of direct evaluation and view-based evaluation on
/// one database.
#[derive(Debug, Clone, Serialize)]
pub struct AnswerComparison {
    /// `|ans(Q0, DB)|`
    pub direct_size: usize,
    /// `|ans(exp(L(R)), DB)|` computed over the materialized views.
    pub via_views_size: usize,
    /// Whether every view-based answer is a direct answer (must always hold
    /// for a rewriting — Definition 4.3).
    pub sound: bool,
    /// Whether every direct answer is recovered through the views (holds for
    /// exact rewritings by Theorem 4.1; may hold incidentally on a given
    /// database even for non-exact ones).
    pub complete: bool,
    /// Total number of materialized view tuples.
    pub view_tuples: usize,
}

/// Evaluates both sides on `db` and reports the comparison, sharing one
/// engine (hence one compile cache and one view materialization) between
/// the direct and view-based sides.
pub fn compare_on_database(
    db: &GraphDb,
    problem: &RpqRewriteProblem,
    rewriting: &RpqRewriting,
) -> AnswerComparison {
    let mut engine = QueryEngine::new(db.clone());
    compare_on_database_in(&mut engine, problem, rewriting)
}

/// Like [`compare_on_database`] but through a caller-held engine: across
/// repeated calls (per-seed experiment loops, incremental workloads) every
/// view, query, and rewriting automaton is frozen exactly once.  Both sides
/// evaluate against one published snapshot of the current revision.
pub fn compare_on_database_in(
    engine: &mut QueryEngine,
    problem: &RpqRewriteProblem,
    rewriting: &RpqRewriting,
) -> AnswerComparison {
    let snapshot = snapshot_for_problem(engine, problem);
    compare_on_database_at(&snapshot, problem, rewriting)
}

/// Like [`compare_on_database_in`] but against a published snapshot (see
/// [`snapshot_for_problem`]): both sides of the comparison are answered at
/// the snapshot's pinned revision, with `&self`, from any thread.
pub fn compare_on_database_at(
    snapshot: &EngineSnapshot,
    problem: &RpqRewriteProblem,
    rewriting: &RpqRewriting,
) -> AnswerComparison {
    let direct = answer_rpq_at(snapshot, &problem.query, &problem.theory);
    let via_views = answer_rewriting_over_views_at(snapshot, rewriting);
    let view_tuples = snapshot.materialized_views().total_tuples();
    AnswerComparison {
        direct_size: direct.len(),
        via_views_size: via_views.len(),
        sound: via_views.is_subset(&direct),
        complete: direct.is_subset(&via_views),
        view_tuples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::rewrite_rpq;
    use automata::Alphabet;
    use graphdb::{random_graph, RandomGraphConfig};

    fn chain_db() -> GraphDb {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
        db.add_edge_named("n0", "a", "n1");
        db.add_edge_named("n1", "b", "n2");
        db.add_edge_named("n2", "a", "n1");
        db.add_edge_named("n1", "c", "n1");
        db
    }

    fn figure1_problem() -> RpqRewriteProblem {
        RpqRewriteProblem::parse_labels(
            "a·(b·a+c)*",
            [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
        )
        .unwrap()
    }

    #[test]
    fn exact_rewriting_answers_match_direct_evaluation() {
        let problem = figure1_problem();
        let rewriting = rewrite_rpq(&problem).unwrap();
        assert!(rewriting.is_exact());
        let db = chain_db();
        let direct = answer_rpq(&db, &problem.query, &problem.theory);
        let via_views = answer_rewriting_over_views(&db, &problem, &rewriting);
        assert_eq!(direct, via_views);
        let cmp = compare_on_database(&db, &problem, &rewriting);
        assert!(cmp.sound && cmp.complete);
        assert_eq!(cmp.direct_size, cmp.via_views_size);
        assert!(cmp.view_tuples > 0);
    }

    #[test]
    fn non_exact_rewritings_are_sound_on_every_random_database() {
        // Definition 4.3: ans(exp(L(R)), DB) ⊆ ans(Q0, DB) for every DB.
        let problem =
            RpqRewriteProblem::parse_labels("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap();
        let rewriting = rewrite_rpq(&problem).unwrap();
        assert!(!rewriting.is_exact());
        let domain = problem.theory.domain().clone();
        for seed in 0..8 {
            let db = random_graph(
                &domain,
                &RandomGraphConfig {
                    num_nodes: 25,
                    num_edges: 80,
                },
                seed,
            );
            let cmp = compare_on_database(&db, &problem, &rewriting);
            assert!(cmp.sound, "unsound on seed {seed}");
        }
    }

    #[test]
    fn non_exact_rewriting_misses_answers_on_a_witness_database() {
        // Q0 = a·(b+c) rewritten with {a, b} misses paths ending in c.
        let problem =
            RpqRewriteProblem::parse_labels("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap();
        let rewriting = rewrite_rpq(&problem).unwrap();
        let mut db = GraphDb::new(problem.theory.domain().clone());
        db.add_edge_named("x", "a", "y");
        db.add_edge_named("y", "c", "z");
        let cmp = compare_on_database(&db, &problem, &rewriting);
        assert!(cmp.sound);
        assert!(!cmp.complete);
        assert_eq!(cmp.direct_size, 1);
        assert_eq!(cmp.via_views_size, 0);
    }

    #[test]
    fn exact_rewritings_agree_on_random_databases() {
        let problem = figure1_problem();
        let rewriting = rewrite_rpq(&problem).unwrap();
        let domain = problem.theory.domain().clone();
        for seed in 0..8 {
            let db = random_graph(
                &domain,
                &RandomGraphConfig {
                    num_nodes: 20,
                    num_edges: 70,
                },
                seed,
            );
            let cmp = compare_on_database(&db, &problem, &rewriting);
            assert!(cmp.sound && cmp.complete, "mismatch on seed {seed}");
        }
    }

    #[test]
    fn engine_reuse_shares_compilations_across_comparisons() {
        let problem = figure1_problem();
        let rewriting = rewrite_rpq(&problem).unwrap();
        let mut engine = QueryEngine::new(chain_db());
        let first = compare_on_database_in(&mut engine, &problem, &rewriting);
        let compiles_after_first = engine.stats().compile_misses;
        let second = compare_on_database_in(&mut engine, &problem, &rewriting);
        assert_eq!(first.direct_size, second.direct_size);
        assert_eq!(first.via_views_size, second.via_views_size);
        assert_eq!(
            engine.stats().compile_misses,
            compiles_after_first,
            "second comparison must reuse every frozen automaton"
        );
        assert!(engine.stats().compile_hits > 0);
        // And it matches the one-shot path.
        let one_shot = compare_on_database(engine.db(), &problem, &rewriting);
        assert_eq!(one_shot.direct_size, second.direct_size);
        assert_eq!(one_shot.via_views_size, second.via_views_size);
    }

    #[test]
    fn incremental_engine_keeps_view_based_answers_correct() {
        // Mutate through the engine: the repaired extensions must keep the
        // exact rewriting's view-based answer equal to direct evaluation.
        let problem = figure1_problem();
        let rewriting = rewrite_rpq(&problem).unwrap();
        assert!(rewriting.is_exact());
        let mut engine = QueryEngine::new(chain_db());
        register_problem_views(&mut engine, &problem);
        let _ = materialize_views_in(&mut engine, &problem);
        engine.add_edge_named("n2", "c", "n0");
        engine.add_edge_named("n0", "b", "n1");
        let direct = answer_rpq_in(&mut engine, &problem.query, &problem.theory).clone();
        let via_views = answer_rewriting_over_views_in(&mut engine, &problem, &rewriting);
        assert_eq!(*direct, via_views);
        assert!(engine.stats().view_delta_repairs > 0);
        assert_eq!(engine.stats().view_full_materializations, 3);
    }

    #[test]
    fn incremental_engine_stays_correct_under_deletion() {
        // Mutate through the engine with deletions too: the DRed-repaired
        // extensions must keep the exact rewriting's view-based answer equal
        // to direct evaluation at every revision.
        let problem = figure1_problem();
        let rewriting = rewrite_rpq(&problem).unwrap();
        assert!(rewriting.is_exact());
        let mut engine = QueryEngine::new(chain_db());
        register_problem_views(&mut engine, &problem);
        let _ = materialize_views_in(&mut engine, &problem);
        engine.add_edge_named("n2", "c", "n0");
        engine.remove_edge_named("n1", "c", "n1");
        engine.remove_edge_named("n2", "c", "n0");
        let direct = answer_rpq_in(&mut engine, &problem.query, &problem.theory).clone();
        let via_views = answer_rewriting_over_views_in(&mut engine, &problem, &rewriting);
        assert_eq!(*direct, via_views);
        assert!(engine.stats().view_deletion_repairs > 0);
        assert_eq!(engine.stats().view_full_materializations, 3, "repairs only");
    }

    #[test]
    fn pinned_snapshot_comparisons_survive_writer_deletions() {
        // A snapshot taken before a deletion keeps answering the Definition
        // 4.3 comparison at its own revision, from any thread, while the
        // writer's later snapshots see the shrunken database.
        let problem = figure1_problem();
        let rewriting = rewrite_rpq(&problem).unwrap();
        let mut engine = QueryEngine::new(chain_db());
        let before = snapshot_for_problem(&mut engine, &problem);
        let cmp_before = compare_on_database_at(&before, &problem, &rewriting);
        assert!(cmp_before.sound && cmp_before.complete);

        engine.remove_edge_named("n0", "a", "n1");
        let after = snapshot_for_problem(&mut engine, &problem);
        let cmp_after = compare_on_database_at(&after, &problem, &rewriting);
        assert!(cmp_after.sound && cmp_after.complete);
        assert!(cmp_after.direct_size < cmp_before.direct_size);

        // The pinned handle still reports exactly the pre-deletion sizes.
        let repinned = compare_on_database_at(&before, &problem, &rewriting);
        assert_eq!(repinned.direct_size, cmp_before.direct_size);
        assert_eq!(repinned.via_views_size, cmp_before.via_views_size);
    }

    #[test]
    #[should_panic(expected = "not a label")]
    fn mismatched_domains_are_rejected() {
        let problem = figure1_problem();
        let db = GraphDb::new(Alphabet::from_chars(['x']).unwrap());
        let _ = answer_rpq(&db, &problem.query, &problem.theory);
    }

    #[test]
    fn databases_may_have_extra_labels() {
        // The database exposes labels the query never mentions; evaluation
        // and view-based answering must still work (the travel examples rely
        // on this).
        let db = graphdb::travel_graph(4);
        let problem = RpqRewriteProblem::parse_labels(
            "(rome+jerusalem)·flight*·restaurant",
            [
                ("v_landmark", "rome+jerusalem"),
                ("v_hop", "flight"),
                ("v_eat", "restaurant"),
            ],
        )
        .unwrap();
        let rewriting = rewrite_rpq(&problem).unwrap();
        let cmp = compare_on_database(&db, &problem, &rewriting);
        assert!(cmp.sound && cmp.complete);
        assert!(cmp.direct_size > 0);
    }
}
