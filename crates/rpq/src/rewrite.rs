//! View-based rewriting of regular path queries (§4.2, Theorem 4.2).
//!
//! To rewrite an RPQ `Q0` in terms of views `Q = {Q1, …, Qk}` under a theory
//! `T`, the paper grounds every query to the constants of the domain: the
//! automaton `Q*` accepts `match(L(Q))`, the set of D-words matching some
//! F-word of the query.  Theorem 4.2 then shows that running the
//! regular-expression rewriting algorithm on the grounded query and views
//! yields the Σ_Q-maximal (hence maximal) rewriting of `Q0` w.r.t. `Q`.
//!
//! We perform the grounding at the expression level (see
//! [`crate::query::Rpq::ground`]) and delegate to the [`rewriter`] crate,
//! whose complexity bounds therefore carry over unchanged, exactly as the
//! paper argues.

use graphdb::Theory;
use regexlang::Regex;
use rewriter::{
    check_exactness, compute_maximal_rewriting, ExactnessReport, MaximalRewriting,
    RewriteProblem, View, ViewSet,
};

use crate::query::{Rpq, RpqError};

/// An RPQ rewriting problem: the query, the named views, and the theory.
#[derive(Debug, Clone)]
pub struct RpqRewriteProblem {
    /// The query `Q0`.
    pub query: Rpq,
    /// The views `Q1, …, Qk`, each named by a view symbol of `Σ_Q`.
    pub views: Vec<(String, Rpq)>,
    /// The underlying decidable complete theory `T` (with its finite domain).
    pub theory: Theory,
}

impl RpqRewriteProblem {
    /// Builds a problem, checking view-name uniqueness.
    pub fn new(
        query: Rpq,
        views: impl IntoIterator<Item = (String, Rpq)>,
        theory: Theory,
    ) -> Result<Self, RpqError> {
        let views: Vec<(String, Rpq)> = views.into_iter().collect();
        if views.is_empty() {
            return Err(RpqError::NoViews);
        }
        let mut seen = std::collections::BTreeSet::new();
        for (name, _) in &views {
            if !seen.insert(name.clone()) {
                return Err(RpqError::DuplicateViewSymbol(name.clone()));
            }
        }
        Ok(Self {
            query,
            views,
            theory,
        })
    }

    /// Convenience constructor for label-based problems: query and views in
    /// concrete syntax, an elementary theory over the inferred label domain.
    pub fn parse_labels(
        query: &str,
        views: impl IntoIterator<Item = (&'static str, &'static str)>,
    ) -> Result<Self, RpqError> {
        let query = Rpq::parse_labels(query)?;
        let views: Result<Vec<(String, Rpq)>, RpqError> = views
            .into_iter()
            .map(|(name, src)| Rpq::parse_labels(src).map(|v| (name.to_string(), v)))
            .collect();
        let views = views?;
        // Domain = all labels mentioned anywhere.
        let mut labels = query.regex.symbols();
        for (_, v) in &views {
            labels.extend(v.regex.symbols());
        }
        let domain = automata::Alphabet::from_names(labels).expect("BTreeSet has no duplicates");
        let theory = Theory::elementary(domain);
        Self::new(query, views, theory)
    }

    /// Grounds the problem into a regular-expression rewriting problem over
    /// the domain constants (the `Q*` construction of §4.2).
    pub fn ground(&self) -> Result<RewriteProblem, RpqError> {
        let grounded_query = self.query.ground(&self.theory);
        let grounded_views: Vec<View> = self
            .views
            .iter()
            .map(|(name, view)| View::new(name.clone(), view.ground(&self.theory)))
            .collect();
        // The base alphabet is the whole domain D (views or query may ground
        // to expressions that omit some constants; the alphabet must still be
        // D so that answers and containment are judged over all labels).
        let view_set = ViewSet::new(self.theory.domain().clone(), grounded_views)
            .map_err(|e| RpqError::Parse(e.to_string()))?;
        RewriteProblem::new(grounded_query, view_set).map_err(|e| RpqError::Parse(e.to_string()))
    }
}

/// The result of rewriting an RPQ over views.
#[derive(Debug, Clone)]
pub struct RpqRewriting {
    /// The Σ_Q-maximal rewriting (an automaton over the view symbols)
    /// computed on the grounded problem.
    pub maximal: MaximalRewriting,
    /// The rewriting as a simplified expression over the view symbols.
    pub regex: Regex,
    /// Exactness of the rewriting in the sense of Definition 4.3 /
    /// Theorem 4.1: whether `match(exp_F(L(R))) = match(L(Q0))`.
    pub exactness: ExactnessReport,
    /// The grounded query `Q0*` as an expression over the domain.
    pub grounded_query: Regex,
    /// The grounded views, in registration order.
    pub grounded_views: Vec<(String, Regex)>,
}

impl RpqRewriting {
    /// The rewriting as an expression over the view symbols.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// Whether the rewriting is empty.
    pub fn is_empty(&self) -> bool {
        self.maximal.is_empty()
    }

    /// Whether the rewriting is exact.
    pub fn is_exact(&self) -> bool {
        self.exactness.exact
    }
}

/// Computes the maximal rewriting of `Q0` w.r.t. the views and checks its
/// exactness (Theorem 4.2 plus the exactness procedure of §4.2).
pub fn rewrite_rpq(problem: &RpqRewriteProblem) -> Result<RpqRewriting, RpqError> {
    let grounded = problem.ground()?;
    let maximal = compute_maximal_rewriting(&grounded);
    let exactness = check_exactness(&maximal, &grounded.views);
    let grounded_views = grounded
        .views
        .views()
        .map(|v| (v.symbol.clone(), v.definition.clone()))
        .collect();
    let regex = maximal.regex();
    Ok(RpqRewriting {
        maximal,
        regex,
        exactness,
        grounded_query: grounded.query.clone(),
        grounded_views,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Alphabet;
    use graphdb::Formula;
    use regexlang::parse;

    #[test]
    fn label_based_rewriting_matches_the_regex_case() {
        // Example 4.1: Q0 = a·(b+c), Q = {a, b} — maximal rewriting q1·q2,
        // not exact; adding c gives the exact q1·(q2+q3).
        let problem =
            RpqRewriteProblem::parse_labels("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap();
        let rewriting = rewrite_rpq(&problem).unwrap();
        assert_eq!(rewriting.regex().to_string(), "q1·q2");
        assert!(!rewriting.is_exact());

        let problem =
            RpqRewriteProblem::parse_labels("a·(b+c)", [("q1", "a"), ("q2", "b"), ("q3", "c")])
                .unwrap();
        let rewriting = rewrite_rpq(&problem).unwrap();
        assert!(rewriting.is_exact());
        let r = rewriting.regex().to_string();
        assert!(
            r == "q1·(q2+q3)" || r == "q1·(q3+q2)",
            "unexpected rewriting {r}"
        );
    }

    #[test]
    fn theory_implications_are_honoured() {
        // §4.2's motivating example: T ⊨ ∀x. A(x) → B(x), Q0 = B, Q = {A}.
        // Ignoring the theory the rewriting would be empty; with the theory
        // the maximal rewriting is the view symbol itself.
        let domain = Alphabet::from_names(["a1", "a2", "b_extra"]).unwrap();
        let theory = Theory::new(
            domain,
            [
                ("A".to_string(), vec!["a1".to_string(), "a2".to_string()]),
                (
                    "B".to_string(),
                    vec!["a1".to_string(), "a2".to_string(), "b_extra".to_string()],
                ),
            ],
        );
        let query = Rpq::new(parse("B").unwrap(), [("B".to_string(), Formula::pred("B"))]).unwrap();
        let view = Rpq::new(parse("A").unwrap(), [("A".to_string(), Formula::pred("A"))]).unwrap();
        let problem = RpqRewriteProblem::new(query, [("vA".to_string(), view)], theory).unwrap();
        let rewriting = rewrite_rpq(&problem).unwrap();
        assert_eq!(rewriting.regex().to_string(), "vA");
        // A ⊊ B, so the rewriting is not exact (b_extra is missed).
        assert!(!rewriting.is_exact());
        assert_eq!(rewriting.grounded_query.to_string(), "a1+a2+b_extra");
    }

    #[test]
    fn figure1_as_a_path_query() {
        let problem = RpqRewriteProblem::parse_labels(
            "a·(b·a+c)*",
            [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
        )
        .unwrap();
        let rewriting = rewrite_rpq(&problem).unwrap();
        assert!(rewriting.is_exact());
        assert_eq!(rewriting.regex().to_string(), "e2*·e1·e3*");
        assert_eq!(rewriting.grounded_views.len(), 3);
    }

    #[test]
    fn problem_construction_validates_views() {
        let err =
            RpqRewriteProblem::parse_labels("a", [("v", "a"), ("v", "b")]).unwrap_err();
        assert!(matches!(err, RpqError::DuplicateViewSymbol(_)));
        let err = RpqRewriteProblem::parse_labels("a", []).unwrap_err();
        assert_eq!(err, RpqError::NoViews);
    }

    #[test]
    fn predicate_views_can_cover_multiple_labels() {
        // Query: any City edge followed by restaurant; view 1: EuropeanCity
        // edges, view 2: restaurant edges.  The rewriting exists but is not
        // exact because non-European cities are missed.
        let domain =
            Alphabet::from_names(["rome", "jerusalem", "paris", "restaurant"]).unwrap();
        let theory = Theory::new(
            domain,
            [
                (
                    "City".to_string(),
                    vec!["rome".to_string(), "jerusalem".to_string(), "paris".to_string()],
                ),
                (
                    "EuropeanCity".to_string(),
                    vec!["rome".to_string(), "paris".to_string()],
                ),
            ],
        );
        let query = Rpq::new(
            parse("City·restaurant").unwrap(),
            [
                ("City".to_string(), Formula::pred("City")),
                ("restaurant".to_string(), Formula::equals("restaurant")),
            ],
        )
        .unwrap();
        let v_euro = Rpq::new(
            parse("EuropeanCity").unwrap(),
            [("EuropeanCity".to_string(), Formula::pred("EuropeanCity"))],
        )
        .unwrap();
        let v_rest = Rpq::parse_labels("restaurant").unwrap();
        let problem = RpqRewriteProblem::new(
            query,
            [("vE".to_string(), v_euro), ("vR".to_string(), v_rest)],
            theory,
        )
        .unwrap();
        let rewriting = rewrite_rpq(&problem).unwrap();
        assert_eq!(rewriting.regex().to_string(), "vE·vR");
        assert!(!rewriting.is_exact());
        // The counterexample must go through the non-European city.
        let cex = rewriting.exactness.counterexample.clone().unwrap();
        assert!(cex.contains(&"jerusalem".to_string()), "{cex:?}");
    }
}
