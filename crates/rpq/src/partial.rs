//! Partial rewritings (§4.3 of the paper).
//!
//! When the maximal rewriting of `Q0` w.r.t. the available views `Q` is not
//! exact, the paper proposes extending `Q` with *atomic* views — views of the
//! form `λz.P(z)` for a predicate `P` of the theory — including the
//! *elementary* ones `λz.z = a`.  An exact rewriting of `Q0` w.r.t. the
//! extended set `Q+` (with `Q+ ≠ Q`) is called a partial rewriting of `Q0`
//! w.r.t. `Q`.  Choosing the set of all elementary views always succeeds, so
//! a partial rewriting always exists; the interesting question is finding
//! *minimal* extensions, and §4.3 spells out preference criteria 1–4 for
//! choosing among candidates.  Both the exhaustive minimal search and the
//! preference order are implemented here.

use std::cmp::Ordering;

use graphdb::Formula;
use regexlang::parse;

use crate::query::{Rpq, RpqError};
use crate::rewrite::{rewrite_rpq, RpqRewriteProblem, RpqRewriting};

/// A candidate atomic view that can be added to the view set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomicView {
    /// The elementary view `λz.z = a` for a domain constant `a`.
    Elementary(String),
    /// The (non-elementary) atomic view `λz.P(z)` for a theory predicate `P`.
    Predicate(String),
}

impl AtomicView {
    /// The view symbol under which the candidate is registered when added.
    pub fn symbol(&self) -> String {
        match self {
            AtomicView::Elementary(a) => format!("const_{a}"),
            AtomicView::Predicate(p) => format!("pred_{p}"),
        }
    }

    /// Whether the view is elementary.
    pub fn is_elementary(&self) -> bool {
        matches!(self, AtomicView::Elementary(_))
    }

    fn to_rpq(&self) -> Rpq {
        match self {
            AtomicView::Elementary(a) => Rpq::from_labels(regexlang::Regex::symbol(a)),
            AtomicView::Predicate(p) => Rpq::new(
                parse(p).expect("predicate names are identifiers"),
                [(p.clone(), Formula::pred(p))],
            )
            .expect("single bound symbol"),
        }
    }
}

/// A partial rewriting: the extension that was added and the (exact)
/// rewriting over the extended view set.
#[derive(Debug, Clone)]
pub struct PartialRewriting {
    /// The atomic views added to the original view set (`P'` in the paper).
    pub added: Vec<AtomicView>,
    /// The extended problem `Q+`.
    pub extended_problem: RpqRewriteProblem,
    /// The rewriting of `Q0` w.r.t. `Q+` (exact by construction when produced
    /// by [`find_partial_rewriting`]).
    pub rewriting: RpqRewriting,
}

impl PartialRewriting {
    /// Number of added atomic views.
    pub fn num_added(&self) -> usize {
        self.added.len()
    }

    /// Number of added *non-elementary* atomic views.
    pub fn num_added_nonelementary(&self) -> usize {
        self.added.iter().filter(|v| !v.is_elementary()).count()
    }

    /// Number of distinct view symbols actually used by the rewriting
    /// expression (criterion 4 of §4.3).
    pub fn num_views_used(&self) -> usize {
        self.rewriting.regex().symbols().len()
    }
}

/// All candidate atomic views of a problem: one elementary view per domain
/// constant and one predicate view per declared theory predicate.
pub fn candidate_atomic_views(problem: &RpqRewriteProblem) -> Vec<AtomicView> {
    let mut out: Vec<AtomicView> = problem
        .theory
        .predicate_names()
        .map(|p| AtomicView::Predicate(p.to_string()))
        .collect();
    out.extend(
        problem
            .theory
            .domain()
            .names()
            .map(|c| AtomicView::Elementary(c.to_string())),
    );
    out
}

/// Extends the problem with the given atomic views (fails if a generated view
/// symbol collides with an existing one).
pub fn extend_problem(
    problem: &RpqRewriteProblem,
    added: &[AtomicView],
) -> Result<RpqRewriteProblem, RpqError> {
    let mut views = problem.views.clone();
    for view in added {
        views.push((view.symbol(), view.to_rpq()));
    }
    RpqRewriteProblem::new(problem.query.clone(), views, problem.theory.clone())
}

/// Finds a partial rewriting with a minimum number of added atomic views,
/// breaking ties in favour of fewer non-elementary views (criteria 2 and 3 of
/// §4.3).  Returns `None` only if even adding *all* candidates fails (which
/// can happen when the query needs constants that no view or predicate can
/// produce — in the paper's setting, where all elementary views are
/// available, this does not occur).
///
/// The search enumerates candidate subsets by increasing size, so its cost is
/// exponential in the number of candidates; domains in this workspace are
/// small (the paper treats the domain size as a constant).
pub fn find_partial_rewriting(problem: &RpqRewriteProblem) -> Option<PartialRewriting> {
    // Fast path: already exact with no extension.
    if let Ok(rewriting) = rewrite_rpq(problem) {
        if rewriting.is_exact() {
            return Some(PartialRewriting {
                added: Vec::new(),
                extended_problem: problem.clone(),
                rewriting,
            });
        }
    }
    let candidates = candidate_atomic_views(problem);
    for size in 1..=candidates.len() {
        let mut best_at_size: Option<PartialRewriting> = None;
        for subset in combinations(&candidates, size) {
            let Ok(extended) = extend_problem(problem, &subset) else { continue };
            let Ok(rewriting) = rewrite_rpq(&extended) else { continue };
            if !rewriting.is_exact() {
                continue;
            }
            let candidate = PartialRewriting {
                added: subset,
                extended_problem: extended,
                rewriting,
            };
            let better = match &best_at_size {
                None => true,
                Some(current) => {
                    candidate.num_added_nonelementary() < current.num_added_nonelementary()
                        || (candidate.num_added_nonelementary()
                            == current.num_added_nonelementary()
                            && candidate.num_views_used() < current.num_views_used())
                }
            };
            if better {
                best_at_size = Some(candidate);
            }
        }
        if best_at_size.is_some() {
            return best_at_size;
        }
    }
    None
}

/// Preference order of §4.3 between two partial rewritings of the *same*
/// problem: returns `Greater` when `a` is preferable to `b`, `Less` when `b`
/// is preferable to `a`, `Equal` when the criteria cannot separate them.
pub fn compare_preference(a: &PartialRewriting, b: &PartialRewriting) -> Ordering {
    // Criterion 1: strictly larger expanded language wins.
    let a_lang = expansion_nfa(a);
    let b_lang = expansion_nfa(b);
    let a_in_b = automata::nfa_subset_of_nfa(&a_lang, &b_lang).holds();
    let b_in_a = automata::nfa_subset_of_nfa(&b_lang, &a_lang).holds();
    match (a_in_b, b_in_a) {
        (true, false) => return Ordering::Less,
        (false, true) => return Ordering::Greater,
        _ => {}
    }
    // Criteria 2–4 only apply when the languages coincide; for incomparable
    // languages the paper's order leaves the pair unordered, which we report
    // as `Equal`.
    if !(a_in_b && b_in_a) {
        return Ordering::Equal;
    }
    // Criterion 2: fewer additional atomic views.
    match a.num_added().cmp(&b.num_added()) {
        Ordering::Less => return Ordering::Greater,
        Ordering::Greater => return Ordering::Less,
        Ordering::Equal => {}
    }
    // Criterion 3: fewer additional non-elementary views.
    match a
        .num_added_nonelementary()
        .cmp(&b.num_added_nonelementary())
    {
        Ordering::Less => return Ordering::Greater,
        Ordering::Greater => return Ordering::Less,
        Ordering::Equal => {}
    }
    // Criterion 4: fewer views used overall.
    match a.num_views_used().cmp(&b.num_views_used()) {
        Ordering::Less => Ordering::Greater,
        Ordering::Greater => Ordering::Less,
        Ordering::Equal => Ordering::Equal,
    }
}

/// The expansion of the rewriting over the domain alphabet (the language
/// `match(exp_F(L(R)))` used by criterion 1).
fn expansion_nfa(partial: &PartialRewriting) -> automata::Nfa {
    let grounded = partial
        .extended_problem
        .ground()
        .expect("extended problem grounds");
    rewriter::expand_dfa(&partial.rewriting.maximal.automaton, &grounded.views)
}

/// Enumerates all `size`-element subsets of `items` (small inputs only).
fn combinations<T: Clone>(items: &[T], size: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut indices: Vec<usize> = (0..size).collect();
    if size == 0 {
        return vec![Vec::new()];
    }
    if size > items.len() {
        return out;
    }
    loop {
        out.push(indices.iter().map(|&i| items[i].clone()).collect());
        // Advance the index vector.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if indices[i] != i + items.len() - size {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        indices[i] += 1;
        for j in i + 1..size {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example41_partial_rewriting_adds_exactly_c() {
        // Example 4.1: Q0 = a·(b+c), Q = {a, b}.  The maximal rewriting
        // q1·q2 is not exact; adding the elementary view c yields the exact
        // q1·(q2+q3).
        let problem =
            RpqRewriteProblem::parse_labels("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap();
        let partial = find_partial_rewriting(&problem).expect("partial rewriting exists");
        assert_eq!(partial.num_added(), 1);
        assert_eq!(partial.added[0], AtomicView::Elementary("c".to_string()));
        assert!(partial.rewriting.is_exact());
        let r = partial.rewriting.regex().to_string();
        assert!(r.contains("const_c"), "rewriting {r} should use the added view");
    }

    #[test]
    fn already_exact_problems_need_no_extension() {
        let problem = RpqRewriteProblem::parse_labels(
            "a·(b·a+c)*",
            [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
        )
        .unwrap();
        let partial = find_partial_rewriting(&problem).unwrap();
        assert_eq!(partial.num_added(), 0);
        assert!(partial.rewriting.is_exact());
    }

    #[test]
    fn all_elementary_views_always_suffice() {
        // Even with a useless view set a partial rewriting exists (by adding
        // elementary views for the needed constants).
        let problem = RpqRewriteProblem::parse_labels("a·b", [("v", "c")]).unwrap();
        let partial = find_partial_rewriting(&problem).unwrap();
        assert!(partial.rewriting.is_exact());
        assert_eq!(partial.num_added(), 2);
        assert!(partial.added.iter().all(AtomicView::is_elementary));
    }

    #[test]
    fn predicate_views_are_preferred_when_they_cover_more_cheaply() {
        // Query (x+y)·z with no useful views: adding the predicate XY (= {x,y})
        // plus the constant z is one option of size 2; adding constants x, y,
        // z is size 3 — the search must find a size-2 solution.
        let domain = automata::Alphabet::from_names(["x", "y", "z"]).unwrap();
        let theory = graphdb::Theory::new(
            domain,
            [("XY".to_string(), vec!["x".to_string(), "y".to_string()])],
        );
        let query = Rpq::parse_labels("(x+y)·z").unwrap();
        let useless = Rpq::parse_labels("z·z").unwrap();
        let problem =
            RpqRewriteProblem::new(query, [("u".to_string(), useless)], theory).unwrap();
        let partial = find_partial_rewriting(&problem).unwrap();
        assert!(partial.rewriting.is_exact());
        assert_eq!(partial.num_added(), 2);
        assert_eq!(partial.num_added_nonelementary(), 1);
        assert!(partial
            .added
            .contains(&AtomicView::Predicate("XY".to_string())));
    }

    #[test]
    fn preference_criteria_order_candidates() {
        // Build two partial rewritings of the same (already exact) problem:
        // one with no extension and one with a gratuitous elementary view.
        let problem = RpqRewriteProblem::parse_labels(
            "a·(b·a+c)*",
            [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
        )
        .unwrap();
        let minimal = find_partial_rewriting(&problem).unwrap();
        let padded_problem =
            extend_problem(&problem, &[AtomicView::Elementary("a".to_string())]).unwrap();
        let padded = PartialRewriting {
            added: vec![AtomicView::Elementary("a".to_string())],
            rewriting: rewrite_rpq(&padded_problem).unwrap(),
            extended_problem: padded_problem,
        };
        // Both are exact, languages coincide (both expand to L(Q0)), so
        // criterion 2 favours the one that added fewer views.
        assert_eq!(compare_preference(&minimal, &padded), Ordering::Greater);
        assert_eq!(compare_preference(&padded, &minimal), Ordering::Less);
        assert_eq!(compare_preference(&minimal, &minimal), Ordering::Equal);
    }

    #[test]
    fn exact_rewritings_are_preferred_over_nonexact_ones() {
        // Criterion 1: a strictly larger expanded language wins.
        let problem =
            RpqRewriteProblem::parse_labels("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap();
        let not_exact = PartialRewriting {
            added: Vec::new(),
            rewriting: rewrite_rpq(&problem).unwrap(),
            extended_problem: problem.clone(),
        };
        let exact = find_partial_rewriting(&problem).unwrap();
        assert_eq!(compare_preference(&exact, &not_exact), Ordering::Greater);
        assert_eq!(compare_preference(&not_exact, &exact), Ordering::Less);
    }

    #[test]
    fn combinations_enumerate_subsets() {
        let items = vec![1, 2, 3, 4];
        assert_eq!(combinations(&items, 0), vec![Vec::<i32>::new()]);
        assert_eq!(combinations(&items, 1).len(), 4);
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 4).len(), 1);
        assert!(combinations(&items, 5).is_empty());
    }
}
