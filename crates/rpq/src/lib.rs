//! # rpq — view-based rewriting of regular path queries
//!
//! Section 4 of the reproduced paper (Calvanese, De Giacomo, Lenzerini,
//! Vardi, PODS'99 / JCSS 2002) lifts the regular-expression rewriting of
//! Section 2 to *regular path queries* over semi-structured databases:
//!
//! * an [`Rpq`] is a regular expression over unary formulae of a decidable
//!   complete theory `T` (label-based queries are the special case of
//!   elementary formulae `λz.z = a`),
//! * [`rewrite_rpq`] grounds the query and views to the domain constants
//!   (the `Q*` construction) and computes the Σ_Q-maximal rewriting plus its
//!   exactness, exactly as Theorem 4.2 prescribes,
//! * [`answer_rpq`] / [`answer_rewriting_over_views`] evaluate queries and
//!   rewritings over concrete [`graphdb::GraphDb`]s, making Definition 4.3
//!   executable, and
//! * [`find_partial_rewriting`] implements the partial rewritings of §4.3
//!   (extending the view set with atomic/elementary views until exactness)
//!   together with the preference criteria 1–4.
//!
//! ```
//! use rpq::{RpqRewriteProblem, rewrite_rpq};
//!
//! // Example 4.1 of the paper.
//! let problem = RpqRewriteProblem::parse_labels(
//!     "a·(b+c)",
//!     [("q1", "a"), ("q2", "b"), ("q3", "c")],
//! ).unwrap();
//! let rewriting = rewrite_rpq(&problem).unwrap();
//! assert!(rewriting.is_exact());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod answer;
pub mod partial;
pub mod query;
pub mod rewrite;

pub use answer::{
    answer_rewriting_over_views, answer_rewriting_over_views_at, answer_rewriting_over_views_in,
    answer_rpq, answer_rpq_at, answer_rpq_in, compare_on_database, compare_on_database_at,
    compare_on_database_in, materialize_views, materialize_views_in, register_problem_views,
    snapshot_for_problem, AnswerComparison,
};
pub use partial::{
    candidate_atomic_views, compare_preference, extend_problem, find_partial_rewriting,
    AtomicView, PartialRewriting,
};
pub use query::{Rpq, RpqError};
pub use rewrite::{rewrite_rpq, RpqRewriteProblem, RpqRewriting};
