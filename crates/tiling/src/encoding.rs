//! The EXPSPACE reduction of Theorem 3.3: from a bounded tiling problem to
//! the existence of a nonempty rewriting.
//!
//! Given a tile system `T` and a number `n` (in unary), the reduction builds
//! a query `E0` and views `E` (all of size polynomial in `|T|` and `n`) such
//! that a `2^n × k` `C_ES`-tiling exists iff the maximal rewriting of `E0`
//! w.r.t. `E` contains a word describing such a tiling.
//!
//! The encoding follows the paper exactly:
//!
//! * `Σ = Δ ∪ {0, 1, $}` and `Σ_E = Δ`, with `re(t) = $·(0+1)^{3n+1}·t`;
//! * an expansion of a `Δ`-word is a sequence of *blocks* `$ b₀…b₃ₙ t`; the
//!   first `n` bits are the block's column `position`, the next `n` its
//!   `carry`, the next `n` its `next` value, and bit `3n` is the `highlight`;
//! * `E0 = E_bad + E_good`: `E_bad` catches every expansion whose
//!   position-counter bookkeeping or highlighting is malformed (conditions
//!   (1)–(7) of the paper), and `E_good` accepts the well-formed expansions
//!   exactly when the highlighted blocks respect the adjacency relations and
//!   the corner tiles are `t_S`/`t_F`.
//!
//! **Reproduction note.**  Read literally, `E_bad` also swallows every
//! expansion of a `Δ`-word whose length is not a positive multiple of `2^n`
//! (such words admit no well-formed expansion at all — e.g. a single block
//! violates condition (1) or (2) no matter how its bits are chosen), so those
//! degenerate words always enter the maximal rewriting.  The theorem's
//! biconditional therefore holds on the intended lattice of word lengths:
//! a `Δ`-word of length a positive multiple of `2^n` belongs to the maximal
//! rewriting iff it describes a `C_ES`-tiling.  [`EncodedTiling::has_tiling_word`]
//! restricts the emptiness test accordingly (by intersecting the rewriting
//! with a `2^n`-periodic length filter), which is how experiment E8 validates
//! the reduction end to end.

use automata::{intersect_dfa, Alphabet, Dfa};
use regexlang::Regex;
use rewriter::{
    compute_maximal_rewriting_with, MaximalRewriting, RewriteProblem, RewriterOptions, View,
    ViewSet,
};

use crate::tiles::TileSystem;

/// The output of the reduction: a rewriting problem plus the parameters
/// needed to interpret its rewriting as tilings.
#[derive(Debug, Clone)]
pub struct EncodedTiling {
    /// The rewriting problem (`E0`, `E`) produced by the reduction.
    pub problem: RewriteProblem,
    /// The tile system the instance was built from.
    pub system: TileSystem,
    /// The parameter `n`; rows have width `2^n`.
    pub n: usize,
}

/// Regex for a fixed bit.
fn bit(b: bool) -> Regex {
    Regex::symbol(if b { "1" } else { "0" })
}

/// Regex for an arbitrary bit `(0+1)`.
fn any_bit() -> Regex {
    Regex::symbol("0").or(Regex::symbol("1"))
}

/// `(0+1)^k`
fn bits(k: usize) -> Regex {
    Regex::concat_all((0..k).map(|_| any_bit()))
}

/// `b^k` for a fixed bit.
fn fixed_bits(b: bool, k: usize) -> Regex {
    Regex::concat_all((0..k).map(|_| bit(b)))
}

/// The union of all tile symbols.
fn any_tile(system: &TileSystem) -> Regex {
    Regex::union_all(system.tiles.iter().map(Regex::symbol))
}

/// A block with the given bit pattern and tile expression:
/// `$ · <bit pattern of length 3n+1> · <tile>`.
fn block(bit_pattern: Regex, tile: Regex) -> Regex {
    Regex::symbol("$").then(bit_pattern).then(tile)
}

/// `B` — an arbitrary block.
fn any_block(system: &TileSystem, n: usize) -> Regex {
    block(bits(3 * n + 1), any_tile(system))
}

/// A block whose highlight bit is fixed; bits before the highlight arbitrary.
fn block_highlight(n: usize, highlight: bool, tile: Regex) -> Regex {
    block(bits(3 * n).then(bit(highlight)), tile)
}

impl EncodedTiling {
    /// Runs the reduction of Theorem 3.3 for the given tile system and `n`.
    pub fn encode(system: &TileSystem, n: usize) -> EncodedTiling {
        assert!(n >= 1, "the reduction needs n ≥ 1 (row width 2^n ≥ 2)");
        let e0 = build_e0(system, n);
        let sigma = sigma_alphabet(system);
        let views: Vec<View> = system
            .tiles
            .iter()
            .map(|t| {
                View::new(
                    t.clone(),
                    block(bits(3 * n + 1), Regex::symbol(t)),
                )
            })
            .collect();
        let view_set = ViewSet::new(sigma, views).expect("tile names are distinct");
        let problem = RewriteProblem::new(e0, view_set).expect("E0 uses only Σ symbols");
        EncodedTiling {
            problem,
            system: system.clone(),
            n,
        }
    }

    /// Row width `2^n`.
    pub fn row_width(&self) -> usize {
        1 << self.n
    }

    /// Combined syntactic size of `E0` and the views (the reduction's output
    /// size — polynomial in `|T|` and `n`, which experiment E8 reports).
    pub fn instance_size(&self) -> usize {
        self.problem.query.size() + self.problem.views.total_size()
    }

    /// Runs the rewriting construction on the encoded instance.  The
    /// reduction's automata are large (that is the point of the lower bound),
    /// so the cheaper Glushkov front-end is used and the optional
    /// minimization preprocessing is skipped.
    pub fn maximal_rewriting(&self) -> MaximalRewriting {
        let options = RewriterOptions {
            minimize_query_dfa: false,
            use_glushkov: true,
            per_pair_reachability: false,
        };
        compute_maximal_rewriting_with(&self.problem, &options)
    }

    /// Computes the maximal rewriting and checks whether it contains a word
    /// whose length is a positive multiple of `2^n` — i.e. whether some
    /// candidate tiling word survives.  By Theorem 3.3 (see the reproduction
    /// note in the module docs) this holds iff a `C_ES`-tiling exists.
    pub fn has_tiling_word(&self) -> bool {
        let rewriting = self.maximal_rewriting();
        let filtered = self.restrict_to_tiling_lengths(&rewriting.automaton);
        !filtered.is_empty_language()
    }

    /// Extracts a shortest tiling word (a sequence of tile names) from the
    /// maximal rewriting, if any.
    pub fn shortest_tiling_word(&self) -> Option<Vec<String>> {
        let rewriting = self.maximal_rewriting();
        let filtered = self.restrict_to_tiling_lengths(&rewriting.automaton);
        let word = filtered.shortest_word()?;
        Some(
            word.iter()
                .map(|&s| filtered.alphabet().name(s).to_string())
                .collect(),
        )
    }

    /// Whether a specific `Δ`-word is in the maximal rewriting, i.e. whether
    /// every expansion of the word lands in `L(E0)`.  This is the word-level
    /// core of the reduction ("`w` describes a `T`-tiling iff
    /// `exp_Σ(w) ⊆ L(E0)`") and is cheaper to check than the full rewriting.
    pub fn word_in_rewriting(&self, tiles: &[&str]) -> bool {
        use automata::dfa_subset_of_nfa;
        let views = &self.problem.views;
        let sigma_e = views.sigma_e();
        let word: Option<Vec<automata::Symbol>> =
            tiles.iter().map(|t| sigma_e.symbol(t)).collect();
        let Some(word) = word else { return false };
        let expansion = rewriter::expand_word(&word, views);
        // Glushkov keeps the query automaton ε-free and small, which matters:
        // E0 here has thousands of AST nodes.
        let query_nfa = regexlang::glushkov(&self.problem.query, views.sigma())
            .expect("E0 uses only Σ symbols");
        dfa_subset_of_nfa(&automata::determinize(&expansion), &query_nfa).holds()
    }

    /// Interprets a `Δ`-word as a row-major tiling of width `2^n`.
    pub fn word_to_tiling(&self, tiles: &[String]) -> Option<crate::solver::Tiling> {
        let width = self.row_width();
        if tiles.is_empty() || !tiles.len().is_multiple_of(width) {
            return None;
        }
        Some(tiles.chunks(width).map(|row| row.to_vec()).collect())
    }

    /// Intersects a rewriting automaton over `Σ_E = Δ` with the filter
    /// "length is a positive multiple of `2^n`".
    fn restrict_to_tiling_lengths(&self, rewriting: &Dfa) -> Dfa {
        let width = self.row_width();
        let alphabet = rewriting.alphabet().clone();
        // A cyclic length counter: states 0..width, where state i means
        // "length ≡ i (mod width)"; accepting at 0 after at least one symbol.
        let mut filter = Dfa::new(alphabet.clone());
        // State 0 already exists (initial, non-accepting = length 0).
        for _ in 1..=width {
            filter.add_state(false);
        }
        filter.set_final(width, true); // state `width` = "positive multiple"
        for sym in alphabet.symbols() {
            filter.set_transition(0, sym, 1 % width.max(1));
            if width == 1 {
                filter.set_transition(0, sym, width);
            }
        }
        // General transitions: from residue i (1..width-1) advance; from the
        // accepting state `width` (residue 0, positive length) the next
        // symbol moves to residue 1.
        for state in 1..=width {
            let residue = state % width;
            let next_residue = (residue + 1) % width;
            let target = if next_residue == 0 { width } else { next_residue };
            for sym in alphabet.symbols() {
                filter.set_transition(state, sym, target);
            }
        }
        // Re-do state 0 transitions cleanly (first symbol): residue becomes 1,
        // or directly the accepting state when width == 1.
        for sym in alphabet.symbols() {
            let target = if width == 1 { width } else { 1 };
            filter.set_transition(0, sym, target);
        }
        intersect_dfa(rewriting, &filter)
    }
}

/// The base alphabet `Σ = {0, 1, $} ∪ Δ`.
fn sigma_alphabet(system: &TileSystem) -> Alphabet {
    let mut names: Vec<String> = vec!["0".to_string(), "1".to_string(), "$".to_string()];
    names.extend(system.tiles.iter().cloned());
    Alphabet::from_names(names).expect("tile names are distinct from 0/1/$")
}

/// Builds `E0 = E_bad + E_good`.
fn build_e0(system: &TileSystem, n: usize) -> Regex {
    let mut parts = bad_conditions(system, n);
    parts.extend(good_conditions(system, n));
    regexlang::simplify(&Regex::union_all(parts))
}

/// The `E_bad` summands: conditions (1)–(7) of the paper.
fn bad_conditions(system: &TileSystem, n: usize) -> Vec<Regex> {
    let b = || any_block(system, n);
    let b_star = || b().star();
    let tile = || any_tile(system);
    let mut out = Vec::new();

    // (1) position(w0, i) = 1 for some i: the first block's position field
    // contains a 1.
    for i in 0..n {
        out.push(
            block(bits(i).then(bit(true)).then(bits(3 * n - i)), tile()).then(b_star()),
        );
    }
    // (2) position(wa, i) = 0 for some i: the last block's position field
    // contains a 0.
    for i in 0..n {
        out.push(
            b_star().then(block(bits(i).then(bit(false)).then(bits(3 * n - i)), tile())),
        );
    }
    // (3) carry(wj, 0) = 0 for some j.
    out.push(
        b_star()
            .then(block(bits(n).then(bit(false)).then(bits(2 * n)), tile()))
            .then(b_star()),
    );
    // (4) carry(wj, i) ≠ carry(wj, i−1) ∧ position(wj, i−1), for 1 ≤ i < n.
    for i in 1..n {
        for p in [false, true] {
            for c in [false, true] {
                let c_bad = !(c && p);
                let pattern = bits(i - 1)
                    .then(bit(p))
                    .then(bits(n - i))
                    .then(bits(i - 1))
                    .then(bit(c))
                    .then(bit(c_bad))
                    .then(bits(n - 1 - i))
                    .then(bits(n + 1));
                out.push(b_star().then(block(pattern, tile())).then(b_star()));
            }
        }
    }
    // (5) next(wj, i) ≠ position(wj, i) xor carry(wj, i).
    for i in 0..n {
        for p in [false, true] {
            for c in [false, true] {
                let x_bad = !(p ^ c);
                let pattern = bits(i)
                    .then(bit(p))
                    .then(bits(n - 1 - i))
                    .then(bits(i))
                    .then(bit(c))
                    .then(bits(n - 1 - i))
                    .then(bits(i))
                    .then(bit(x_bad))
                    .then(bits(n - 1 - i))
                    .then(bits(1));
                out.push(b_star().then(block(pattern, tile())).then(b_star()));
            }
        }
    }
    // (6) position(wj, i) ≠ next(w_{j−1}, i): consecutive blocks disagree.
    for i in 0..n {
        for bval in [false, true] {
            let first = block(
                bits(2 * n)
                    .then(bits(i))
                    .then(bit(bval))
                    .then(bits(n - 1 - i))
                    .then(bits(1)),
                tile(),
            );
            let second = block(
                bits(i)
                    .then(bit(!bval))
                    .then(bits(n - 1 - i))
                    .then(bits(2 * n))
                    .then(bits(1)),
                tile(),
            );
            out.push(b_star().then(first).then(second).then(b_star()));
        }
    }
    // (7) highlight conditions.
    let b0 = || block_highlight(n, false, tile());
    let h1 = || block_highlight(n, true, tile());
    // (7-i) no highlight bit is 1 (at least one block, all highlights 0).
    out.push(b0().then(b0().star()));
    // (7-ii) exactly one highlight, located at a block whose position is 1^n.
    out.push(
        b0().star()
            .then(block(
                fixed_bits(true, n).then(bits(2 * n)).then(bit(true)),
                tile(),
            ))
            .then(b0().star()),
    );
    // (7-iii) at least three highlights.
    out.push(
        b_star()
            .then(h1())
            .then(b_star())
            .then(h1())
            .then(b_star())
            .then(h1())
            .then(b_star()),
    );
    // (7-iv) two highlights with at least two position-0^n blocks strictly
    // between them.
    let zero_pos_block = || block(fixed_bits(false, n).then(bits(2 * n + 1)), tile());
    out.push(
        b_star()
            .then(h1())
            .then(b_star())
            .then(zero_pos_block())
            .then(b_star())
            .then(zero_pos_block())
            .then(b_star())
            .then(h1())
            .then(b_star()),
    );
    // (7-v) two highlights at blocks whose positions differ in some bit.
    for i in 0..n {
        for bval in [false, true] {
            let first = block(
                bits(i)
                    .then(bit(bval))
                    .then(bits(3 * n - 1 - i))
                    .then(bit(true)),
                tile(),
            );
            let second = block(
                bits(i)
                    .then(bit(!bval))
                    .then(bits(3 * n - 1 - i))
                    .then(bit(true)),
                tile(),
            );
            out.push(
                b_star()
                    .then(first)
                    .then(b_star())
                    .then(second)
                    .then(b_star()),
            );
        }
    }
    out
}

/// The `E_good` summands: well-formed expansions whose highlighted blocks
/// respect the adjacency relations and whose corner tiles are `t_S` / `t_F`.
fn good_conditions(system: &TileSystem, n: usize) -> Vec<Regex> {
    let tile = || any_tile(system);
    let b0 = || block_highlight(n, false, tile());
    let start_block = || block_highlight(n, false, Regex::symbol(&system.start));
    let finish_block = || block_highlight(n, false, Regex::symbol(&system.finish));
    let mut out = Vec::new();

    // Horizontal pairs: the highlighted block and the block immediately to
    // its right.  `first_is_start` / `second_is_finish` select the boundary
    // variants (the paper notes these cases separately).
    let h_pair = |t1: &str, t2: &str| {
        block_highlight(n, true, Regex::symbol(t1))
            .then(block_highlight(n, false, Regex::symbol(t2)))
    };
    for (t1, t2) in &system.horizontal {
        // Pair strictly inside the word.
        out.push(
            start_block()
                .then(b0().star())
                .then(h_pair(t1, t2))
                .then(b0().star())
                .then(finish_block()),
        );
        // Pair at the start (then t1 must be the start tile).
        if t1 == &system.start {
            out.push(h_pair(t1, t2).then(b0().star()).then(finish_block()));
        }
        // Pair at the end (then t2 must be the finish tile).
        if t2 == &system.finish {
            out.push(start_block().then(b0().star()).then(h_pair(t1, t2)));
        }
        // Pair is the whole word.
        if t1 == &system.start && t2 == &system.finish {
            out.push(h_pair(t1, t2));
        }
    }

    // Vertical pairs: two highlighted blocks exactly one row apart (the bad
    // conditions guarantee the spacing), with non-highlighted blocks between.
    let v_pair = |t1: &str, t2: &str| {
        block_highlight(n, true, Regex::symbol(t1))
            .then(b0().star())
            .then(block_highlight(n, true, Regex::symbol(t2)))
    };
    for (t1, t2) in &system.vertical {
        out.push(
            start_block()
                .then(b0().star())
                .then(v_pair(t1, t2))
                .then(b0().star())
                .then(finish_block()),
        );
        if t1 == &system.start {
            out.push(v_pair(t1, t2).then(b0().star()).then(finish_block()));
        }
        if t2 == &system.finish {
            out.push(start_block().then(b0().star()).then(v_pair(t1, t2)));
        }
        if t1 == &system.start && t2 == &system.finish {
            out.push(v_pair(t1, t2));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{check_tiling, solve};

    /// Encoded instance for the solvable chain system at n = 1 (row width 2).
    fn chain_encoded() -> EncodedTiling {
        EncodedTiling::encode(&TileSystem::solvable_chain(), 1)
    }

    #[test]
    fn instance_is_polynomial_in_n() {
        let e1 = EncodedTiling::encode(&TileSystem::solvable_chain(), 1);
        let e2 = EncodedTiling::encode(&TileSystem::solvable_chain(), 2);
        let e3 = EncodedTiling::encode(&TileSystem::solvable_chain(), 3);
        assert!(e1.instance_size() < e2.instance_size());
        assert!(e2.instance_size() < e3.instance_size());
        // Roughly quadratic growth in n — far below the 2^n row width.
        assert!(e3.instance_size() < 40 * e1.instance_size());
        assert_eq!(e1.row_width(), 2);
        assert_eq!(e3.row_width(), 8);
    }

    #[test]
    fn word_level_biconditional_on_chain_system() {
        // The core of Theorem 3.3 at the word level: a Δ-word of length a
        // positive multiple of 2^n is in the rewriting iff it describes a
        // tiling.
        let enc = chain_encoded();
        // Valid single-row tiling of width 2: s·f.
        assert!(enc.word_in_rewriting(&["s", "f"]));
        // Valid two-row tiling: (s,m) is not valid because row must end with
        // f?  No: only the TOP-RIGHT tile must be f.  Rows: [s,m] then [s,f]
        // stacked — check V: (s,s) ∈ V, (m,f) ∈ V ✓, H: (s,m) ✓, (s,f) ✓.
        assert!(enc.word_in_rewriting(&["s", "m", "s", "f"]));
        // Invalid: wrong corner tiles.
        assert!(!enc.word_in_rewriting(&["m", "f"]));
        assert!(!enc.word_in_rewriting(&["s", "m"]));
        // Invalid: broken horizontal adjacency (f cannot be followed by s in
        // a row … but [f,s] as a *row* breaks the corner condition anyway;
        // use [s,f,f,s]: row2 = [f,s] has H-pair (f,s) ∉ H).
        assert!(!enc.word_in_rewriting(&["s", "f", "f", "s"]));
        // Invalid: broken vertical adjacency: rows [s,f] then [m,f]:
        // V needs (s,m) ✓ and (f,f) ✓ — that is valid; instead break with
        // rows [s,m] then [f,f]: V needs (s,f) ∉ V.
        assert!(!enc.word_in_rewriting(&["s", "m", "f", "f"]));
    }

    #[test]
    fn degenerate_lengths_are_reported_by_word_membership() {
        // Reproduction note: words whose length is not a multiple of 2^n have
        // no well-formed expansion, so they slip into the rewriting; the
        // tiling interpretation therefore filters them out.
        let enc = chain_encoded();
        assert!(enc.word_in_rewriting(&["s"]));
        assert_eq!(enc.word_to_tiling(&["s".to_string()]), None);
        assert!(enc
            .word_to_tiling(&["s".to_string(), "f".to_string()])
            .is_some());
    }

    #[test]
    fn unsolvable_system_words_never_encode_tilings() {
        let enc = EncodedTiling::encode(&TileSystem::unsolvable(), 1);
        assert!(!enc.word_in_rewriting(&["s", "f"]));
        assert!(!enc.word_in_rewriting(&["s", "m", "m", "f"]));
        // And indeed the solver agrees there is no tiling.
        assert!(solve(&TileSystem::unsolvable(), 2, 4).is_none());
    }

    #[test]
    #[ignore = "runs the full rewriting construction on a §3.2 instance; the automata are intentionally huge (that is the lower bound).  Run with `cargo test -p tiling --release -- --ignored` when you have time."]
    fn rewriting_words_decode_to_valid_tilings() {
        let enc = chain_encoded();
        let system = TileSystem::solvable_chain();
        let word = enc.shortest_tiling_word().expect("chain system is solvable");
        let tiling = enc.word_to_tiling(&word).expect("length is a multiple of 2");
        assert!(check_tiling(&system, enc.row_width(), &tiling));
        // The solver independently confirms solvability and the reduction's
        // full emptiness test agrees.
        assert!(solve(&system, 2, 4).is_some());
        assert!(enc.has_tiling_word());
    }

    #[test]
    #[ignore = "runs the full rewriting construction on a §3.2 instance; the automata are intentionally huge (that is the lower bound).  Run with `cargo test -p tiling --release -- --ignored` when you have time."]
    fn unsolvable_system_yields_no_tiling_word() {
        let enc = EncodedTiling::encode(&TileSystem::unsolvable(), 1);
        assert!(!enc.has_tiling_word());
        assert_eq!(enc.shortest_tiling_word(), None);
    }

    #[test]
    #[ignore = "runs the full rewriting construction on a §3.2 instance; the automata are intentionally huge (that is the lower bound).  Run with `cargo test -p tiling --release -- --ignored` when you have time."]
    fn striped_system_round_trips() {
        let system = TileSystem::striped();
        let enc = EncodedTiling::encode(&system, 1);
        assert!(enc.has_tiling_word());
        let word = enc.shortest_tiling_word().unwrap();
        let tiling = enc.word_to_tiling(&word).unwrap();
        assert!(check_tiling(&system, 2, &tiling));
    }
}
