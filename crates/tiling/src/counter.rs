//! The size lower bound of Theorem 3.4: poly-size inputs whose shortest
//! nonempty rewriting is exponentially (and, composed, doubly exponentially)
//! long.
//!
//! Theorem 3.4 encodes a `2^n`-bit counter with eight view symbols
//! `b_{pcx}`; the only word in the maximal rewriting is the counter-evolution
//! word `w_C` of length `2^n · 2^{2^n}`.  The construction reuses the block
//! machinery of Theorem 3.3 (the same `$·(0+1)^{3n+1}·e` views and the same
//! bad/highlight conditions), with the eight symbols playing the role of tile
//! types whose adjacency relations encode the counter semantics.
//!
//! Materializing the doubly exponential rewriting is only feasible for the
//! smallest parameters, so this module exposes the lower bound at two levels:
//!
//! * [`exponential_family`] instantiates the Theorem 3.3 encoder with a
//!   single-row tile system, giving a poly(`n`)-size instance whose shortest
//!   rewriting word has length exactly `2^n` — the first exponential level,
//!   measured end-to-end by experiment E7; and
//! * [`counter_word`]/[`counter_word_length`] compute the paper's yardstick
//!   `w_C` (the full `2^n`-bit counter evolution) so tests and the experiment
//!   harness can report the doubly exponential growth the full construction
//!   forces, without materializing automata of that size.

use crate::encoding::EncodedTiling;
use crate::tiles::TileSystem;

/// A tile system whose `C_ES`-tilings of width `2^n` are exactly the single
/// rows `s, m, …, m, f`: the shortest (indeed every) rewriting word of the
/// encoded instance has length exactly `2^n`.
pub fn single_row_system() -> TileSystem {
    TileSystem::new(
        ["s", "m", "f"],
        [("s", "m"), ("m", "m"), ("m", "f"), ("s", "f")],
        // No vertical pairs: only one-row tilings are possible.
        [],
        "s",
        "f",
    )
}

/// The Theorem 3.4-style family at the first exponential level: an instance
/// of size polynomial in `n` whose shortest nonempty (tiling-shaped) rewriting
/// word has length exactly `2^n`.
pub fn exponential_family(n: usize) -> EncodedTiling {
    EncodedTiling::encode(&single_row_system(), n)
}

/// Length of the paper's yardstick word `w_C`: the `2^n`-bit counter runs
/// through `2^{2^n}` configurations of `2^n` blocks each.
pub fn counter_word_length(n: u32) -> u128 {
    let bits: u32 = 1u32 << n;
    let configs: u128 = 1u128 << bits;
    (bits as u128) * configs
}

/// One block of the counter-evolution word: the position bit `p`, the carry
/// bit `c` into this position, and the next value `x = p ⊕ c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterBlock {
    /// Current value of this bit of the counter.
    pub position: bool,
    /// Carry into this bit when incrementing the configuration.
    pub carry: bool,
    /// Value of this bit in the next configuration.
    pub next: bool,
}

impl CounterBlock {
    /// The symbol name `b_pcx` the paper uses for this block.
    pub fn symbol(&self) -> String {
        format!(
            "b{}{}{}",
            u8::from(self.position),
            u8::from(self.carry),
            u8::from(self.next)
        )
    }
}

/// The counter-evolution word `w_C` for a `width`-bit counter: for every
/// configuration `j = 0 … 2^width − 1` and every bit position `i` (least
/// significant first), the block records the bit, the carry of the increment
/// `j → j+1`, and the resulting bit of `j+1`.
///
/// `width` is `2^n` in the paper's parameterization; it is exposed directly
/// so tests can validate the structure on small widths without materializing
/// the doubly exponential case.
pub fn counter_word(width: u32) -> Vec<CounterBlock> {
    assert!((1..=20).contains(&width), "width {width} out of supported range");
    let configs: u64 = 1u64 << width;
    let mut out = Vec::with_capacity((width as usize) * configs as usize);
    for j in 0..configs {
        let mut carry = true; // incrementing adds 1 at the least significant bit
        for i in 0..width {
            let p = (j >> i) & 1 == 1;
            let c = carry;
            let x = p ^ c;
            carry = p && c;
            out.push(CounterBlock {
                position: p,
                carry: c,
                next: x,
            });
        }
    }
    out
}

/// Expected length of the shortest rewriting word of [`exponential_family`].
pub fn expected_shortest_rewriting_length(n: u32) -> usize {
    1usize << n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_word_has_the_papers_length() {
        // |w_C| = 2^n · 2^(2^n)
        assert_eq!(counter_word_length(1), 2 * 4);
        assert_eq!(counter_word_length(2), 4 * 16);
        assert_eq!(counter_word_length(3), 8 * 256);
        assert_eq!(counter_word(2).len() as u128, counter_word_length(1));
        assert_eq!(counter_word(4).len() as u128, counter_word_length(2));
    }

    #[test]
    fn counter_word_encodes_successive_increments() {
        let width = 4u32;
        let word = counter_word(width);
        let configs = 1u64 << width;
        for j in 0..configs {
            let blocks = &word[(j as usize * width as usize)..((j + 1) as usize * width as usize)];
            // The position bits spell out j (LSB first).
            let mut value = 0u64;
            for (i, b) in blocks.iter().enumerate() {
                if b.position {
                    value |= 1 << i;
                }
            }
            assert_eq!(value, j, "configuration {j} mis-encoded");
            // The next bits spell out j+1 (mod 2^width).
            let mut next_value = 0u64;
            for (i, b) in blocks.iter().enumerate() {
                if b.next {
                    next_value |= 1 << i;
                }
                // Per-block consistency: x = p ⊕ c.
                assert_eq!(b.next, b.position ^ b.carry);
            }
            assert_eq!(next_value, (j + 1) % configs);
            // Carry chain: c_0 = 1, c_i = p_{i-1} ∧ c_{i-1}.
            assert!(blocks[0].carry);
            for i in 1..width as usize {
                assert_eq!(blocks[i].carry, blocks[i - 1].position && blocks[i - 1].carry);
            }
        }
    }

    #[test]
    fn block_symbols_follow_the_papers_naming() {
        let b = CounterBlock {
            position: false,
            carry: true,
            next: true,
        };
        assert_eq!(b.symbol(), "b011");
        // Exactly 8 distinct symbols appear across a large enough word.
        let names: std::collections::BTreeSet<String> =
            counter_word(6).iter().map(CounterBlock::symbol).collect();
        assert!(names.len() <= 8);
        assert!(names.contains("b011"));
    }

    #[test]
    #[ignore = "runs the full rewriting construction on a §3.2 instance; the automata are intentionally huge (that is the lower bound).  Run with `cargo test -p tiling --release -- --ignored` when you have time."]
    fn exponential_family_has_poly_size_but_exponential_rewriting() {
        // Instance size grows polynomially …
        let sizes: Vec<usize> = (1..=3)
            .map(|n| exponential_family(n).instance_size())
            .collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
        assert!(sizes[2] < 40 * sizes[0]);
        // … while the shortest rewriting word doubles with every step of n
        // (checked end-to-end for n = 1 here; the bench pushes further).
        let enc = exponential_family(1);
        let word = enc.shortest_tiling_word().expect("single-row tiling exists");
        assert_eq!(word.len(), expected_shortest_rewriting_length(1));
    }

    #[test]
    fn single_row_system_admits_only_one_row() {
        let system = single_row_system();
        assert!(crate::solver::solve(&system, 4, 1).is_some());
        // Two rows are impossible (V is empty), so the solver bounded to more
        // rows still returns the single-row witness.
        let tiling = crate::solver::solve(&system, 4, 5).unwrap();
        assert_eq!(tiling.len(), 1);
    }
}
