//! Tile systems (§3.2 of the paper).
//!
//! The lower bounds of the paper are proved by reductions from bounded tiling
//! problems: a *tiling system* is a finite set of tile types `Δ` with
//! horizontal and vertical adjacency relations `H, V ⊆ Δ × Δ`, and the
//! `C_ES` variant asks whether a `2^n × k` region (for some `k`) can be tiled
//! so that the bottom-left tile is `t_S` and the top-right tile is `t_F`.

use std::collections::BTreeSet;

/// A tiling system `T = (Δ, H, V, t_S, t_F)` for the `C_ES` bounded tiling
/// problem of Theorem 3.3.
#[derive(Debug, Clone)]
pub struct TileSystem {
    /// The tile types Δ (their names double as alphabet symbols in the
    /// reduction).
    pub tiles: Vec<String>,
    /// Horizontal adjacency: `(left, right)` pairs allowed next to each other
    /// within a row.
    pub horizontal: BTreeSet<(String, String)>,
    /// Vertical adjacency: `(below, above)` pairs allowed on top of each
    /// other.
    pub vertical: BTreeSet<(String, String)>,
    /// The tile required at position `(0, 0)` (bottom-left).
    pub start: String,
    /// The tile required at position `(2^n − 1, k − 1)` (top-right).
    pub finish: String,
}

impl TileSystem {
    /// Builds a tile system, normalizing the relation representations.
    pub fn new(
        tiles: impl IntoIterator<Item = &'static str>,
        horizontal: impl IntoIterator<Item = (&'static str, &'static str)>,
        vertical: impl IntoIterator<Item = (&'static str, &'static str)>,
        start: &str,
        finish: &str,
    ) -> Self {
        let tiles: Vec<String> = tiles.into_iter().map(str::to_string).collect();
        assert!(!tiles.is_empty(), "a tile system needs at least one tile");
        let check = |t: &str| {
            assert!(
                tiles.iter().any(|x| x == t),
                "tile `{t}` is not declared in Δ"
            )
        };
        let horizontal: BTreeSet<(String, String)> = horizontal
            .into_iter()
            .map(|(a, b)| {
                check(a);
                check(b);
                (a.to_string(), b.to_string())
            })
            .collect();
        let vertical: BTreeSet<(String, String)> = vertical
            .into_iter()
            .map(|(a, b)| {
                check(a);
                check(b);
                (a.to_string(), b.to_string())
            })
            .collect();
        check(start);
        check(finish);
        Self {
            tiles,
            horizontal,
            vertical,
            start: start.to_string(),
            finish: finish.to_string(),
        }
    }

    /// Whether `(left, right)` respects the horizontal relation.
    pub fn h_ok(&self, left: &str, right: &str) -> bool {
        self.horizontal
            .contains(&(left.to_string(), right.to_string()))
    }

    /// Whether `(below, above)` respects the vertical relation.
    pub fn v_ok(&self, below: &str, above: &str) -> bool {
        self.vertical
            .contains(&(below.to_string(), above.to_string()))
    }

    /// Number of tile types.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// A solvable chain system: rows must read `s, m, …, m, f` and rows may
    /// be stacked freely.  A `2^n × k` tiling exists for every width ≥ 2 and
    /// every `k ≥ 1`, so the reduction of Theorem 3.3 must produce a
    /// *nonempty* rewriting for it.
    pub fn solvable_chain() -> TileSystem {
        TileSystem::new(
            ["s", "m", "f"],
            [("s", "m"), ("m", "m"), ("m", "f"), ("s", "f")],
            [
                ("s", "s"),
                ("m", "m"),
                ("f", "f"),
                ("s", "m"),
                ("m", "s"),
                ("m", "f"),
                ("f", "m"),
            ],
            "s",
            "f",
        )
    }

    /// An unsolvable system: the start tile admits no right neighbour and no
    /// tile above it, so no region of width ≥ 2 can be tiled.  The reduction
    /// must produce an *empty* rewriting (on the intended row-width lattice).
    pub fn unsolvable() -> TileSystem {
        TileSystem::new(
            ["s", "m", "f"],
            [("m", "m"), ("m", "f"), ("f", "m")],
            [("m", "m"), ("f", "f"), ("m", "f")],
            "s",
            "f",
        )
    }

    /// A system whose only valid rows alternate two tiles, forcing every
    /// second column to differ — used to exercise the vertical relation in
    /// tests (the left border column is uniform, so the reduction's
    /// two-rows-apart corner case is harmless, as in the paper's Turing
    /// machine encodings).
    pub fn striped() -> TileSystem {
        TileSystem::new(
            ["s", "w", "b", "f"],
            [("s", "b"), ("b", "w"), ("w", "b"), ("b", "f"), ("s", "f"), ("w", "f")],
            [
                ("s", "s"),
                ("w", "w"),
                ("b", "b"),
                ("f", "f"),
                ("s", "w"),
                ("w", "s"),
                ("b", "f"),
                ("f", "b"),
                ("s", "b"),
                ("b", "s"),
                ("w", "f"),
                ("f", "w"),
            ],
            "s",
            "f",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_are_queryable() {
        let t = TileSystem::solvable_chain();
        assert_eq!(t.num_tiles(), 3);
        assert!(t.h_ok("s", "m"));
        assert!(t.h_ok("s", "f"));
        assert!(!t.h_ok("f", "s"));
        assert!(t.v_ok("s", "s"));
        assert!(!t.v_ok("s", "f"));
        assert_eq!(t.start, "s");
        assert_eq!(t.finish, "f");
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_tiles_are_rejected() {
        TileSystem::new(["a"], [("a", "b")], [], "a", "a");
    }

    #[test]
    fn builtin_systems_have_expected_shape() {
        let u = TileSystem::unsolvable();
        assert!(!u.horizontal.iter().any(|(l, _)| l == "s"));
        let s = TileSystem::striped();
        assert!(s.h_ok("s", "b"));
        assert!(s.h_ok("b", "w"));
        assert!(!s.h_ok("w", "w"));
    }
}
