//! # tiling — the lower-bound constructions of §3.2
//!
//! The complexity lower bounds of the reproduced paper (EXPSPACE-hardness of
//! nonemptiness of the maximal rewriting, Theorem 3.3; doubly exponential
//! rewriting sizes, Theorem 3.4; 2EXPSPACE-hardness of exact-rewriting
//! existence, Theorem 3.5) are proved by reductions from bounded tiling
//! problems.  This crate makes those reductions executable:
//!
//! * [`TileSystem`] and a brute-force [`solve`]r for the bounded `C_ES`
//!   tiling problem,
//! * [`EncodedTiling::encode`] — the Theorem 3.3 reduction producing a
//!   rewriting problem of size polynomial in `|T|` and `n` whose rewriting
//!   contains a width-`2^n` tiling word iff a tiling exists, and
//! * the [`counter`] module — the Theorem 3.4 size lower bound: the
//!   counter-evolution yardstick `w_C` and the feasible first-exponential
//!   family measured by experiment E7.
//!
//! ```
//! use tiling::{EncodedTiling, TileSystem};
//!
//! let encoded = EncodedTiling::encode(&TileSystem::solvable_chain(), 1);
//! // `s·f` describes a valid 2×1 tiling, so it is in the maximal rewriting.
//! assert!(encoded.word_in_rewriting(&["s", "f"]));
//! assert!(!encoded.word_in_rewriting(&["m", "f"]));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod counter;
pub mod encoding;
pub mod solver;
pub mod tiles;

pub use counter::{
    counter_word, counter_word_length, exponential_family, expected_shortest_rewriting_length,
    single_row_system, CounterBlock,
};
pub use encoding::EncodedTiling;
pub use solver::{check_tiling, solve, Tiling};
pub use tiles::TileSystem;
