//! A brute-force bounded tiling solver, used to cross-check the reductions of
//! §3.2 on small instances: the reduction claims "tiling exists ⟺ nonempty
//! rewriting", and this solver decides the left-hand side independently.

use std::collections::BTreeSet;

use crate::tiles::TileSystem;

/// A tiling of a `width × k` region, stored row-major from the bottom row up.
pub type Tiling = Vec<Vec<String>>;

/// Enumerates all rows of the given width that satisfy the horizontal
/// relation (and optional constraints on the first/last tile of the row).
fn valid_rows(
    system: &TileSystem,
    width: usize,
    first: Option<&str>,
    last: Option<&str>,
) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = vec![Vec::new()];
    for col in 0..width {
        let mut next = Vec::new();
        for row in &rows {
            for tile in &system.tiles {
                if col == 0 {
                    if let Some(f) = first {
                        if tile != f {
                            continue;
                        }
                    }
                } else if !system.h_ok(row.last().unwrap(), tile) {
                    continue;
                }
                if col == width - 1 {
                    if let Some(l) = last {
                        if tile != l {
                            continue;
                        }
                    }
                }
                let mut extended = row.clone();
                extended.push(tile.clone());
                next.push(extended);
            }
        }
        rows = next;
    }
    rows
}

/// Whether one row may sit directly below another according to `V`.
fn rows_stack(system: &TileSystem, below: &[String], above: &[String]) -> bool {
    below
        .iter()
        .zip(above)
        .all(|(b, a)| system.v_ok(b, a))
}

/// Searches for a `C_ES` tiling of a `width × k` region with `1 ≤ k ≤ max_rows`:
/// bottom-left tile `t_S`, top-right tile `t_F`.  Returns a witness tiling if
/// one exists.
pub fn solve(system: &TileSystem, width: usize, max_rows: usize) -> Option<Tiling> {
    assert!(width >= 1, "region width must be positive");
    // Row 0 must start with t_S; the final row must end with t_F.  Build the
    // search over whole rows (the alphabet of rows is small for the systems
    // used in tests).
    let bottom_rows = valid_rows(system, width, Some(&system.start), None);
    let any_rows = valid_rows(system, width, None, None);

    // BFS over (current top row) with depth = number of rows used.
    for start_row in &bottom_rows {
        if start_row.last() == Some(&system.finish) {
            return Some(vec![start_row.clone()]);
        }
    }
    let mut frontier: Vec<Tiling> = bottom_rows.into_iter().map(|r| vec![r]).collect();
    for _depth in 2..=max_rows {
        let mut next_frontier: Vec<Tiling> = Vec::new();
        let mut seen_tops: BTreeSet<Vec<String>> = BTreeSet::new();
        for partial in &frontier {
            let top = partial.last().unwrap();
            for row in &any_rows {
                if !rows_stack(system, top, row) {
                    continue;
                }
                if row.last() == Some(&system.finish) {
                    let mut done = partial.clone();
                    done.push(row.clone());
                    return Some(done);
                }
                if seen_tops.insert(row.clone()) {
                    let mut extended = partial.clone();
                    extended.push(row.clone());
                    next_frontier.push(extended);
                }
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    None
}

/// Checks that a tiling is valid for the `C_ES` conditions (used to validate
/// witnesses returned by [`solve`] and tilings decoded from rewriting words).
pub fn check_tiling(system: &TileSystem, width: usize, tiling: &Tiling) -> bool {
    if tiling.is_empty() || tiling.iter().any(|row| row.len() != width) {
        return false;
    }
    if tiling[0][0] != system.start {
        return false;
    }
    if tiling.last().unwrap()[width - 1] != system.finish {
        return false;
    }
    for row in tiling {
        for pair in row.windows(2) {
            if !system.h_ok(&pair[0], &pair[1]) {
                return false;
            }
        }
    }
    for rows in tiling.windows(2) {
        if !rows_stack(system, &rows[0], &rows[1]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solvable_chain_has_single_row_solutions() {
        let system = TileSystem::solvable_chain();
        for width in [2, 3, 4, 8] {
            let tiling = solve(&system, width, 4).expect("chain system is solvable");
            assert!(check_tiling(&system, width, &tiling));
        }
    }

    #[test]
    fn unsolvable_system_has_no_solution() {
        let system = TileSystem::unsolvable();
        for width in [2, 3, 4] {
            assert!(solve(&system, width, 5).is_none());
        }
    }

    #[test]
    fn striped_system_solvable_for_even_columns() {
        let system = TileSystem::striped();
        // Width 2: row `s, f`?  H contains (s, f) — yes, single row works.
        let tiling = solve(&system, 2, 3).expect("striped is solvable at width 2");
        assert!(check_tiling(&system, 2, &tiling));
    }

    #[test]
    fn check_tiling_rejects_malformed_regions() {
        let system = TileSystem::solvable_chain();
        assert!(!check_tiling(&system, 2, &vec![]));
        assert!(!check_tiling(
            &system,
            2,
            &vec![vec!["m".to_string(), "f".to_string()]]
        ));
        assert!(!check_tiling(
            &system,
            3,
            &vec![vec!["s".to_string(), "f".to_string()]]
        ));
        // Valid single row.
        assert!(check_tiling(
            &system,
            2,
            &vec![vec!["s".to_string(), "f".to_string()]]
        ));
        // Broken vertical relation.
        assert!(!check_tiling(
            &system,
            2,
            &vec![
                vec!["s".to_string(), "m".to_string()],
                vec!["f".to_string(), "f".to_string()],
            ]
        ));
    }

    #[test]
    fn solver_respects_row_bound() {
        // Force a system that needs at least 2 rows: the finish tile can only
        // appear above a `w`, never in the bottom row next to `s`.
        let system = TileSystem::new(
            ["s", "w", "f"],
            [("s", "w"), ("w", "w"), ("w", "f"), ("s", "f")],
            [("s", "s"), ("w", "f"), ("s", "w"), ("w", "w"), ("f", "f")],
            "s",
            "f",
        );
        // Width 2, 1 row: row = s,(w|f): s,f is allowed horizontally, so a
        // one-row tiling exists; make the check honest by verifying the
        // solver finds it within the bound.
        assert!(solve(&system, 2, 1).is_some());
    }
}
