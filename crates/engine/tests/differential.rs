//! Differential suite pinning the engine's fast paths to the reference
//! implementations:
//!
//! * **parallel vs sequential**: `eval_csr_parallel` (forced onto multiple
//!   workers regardless of the host's core count) must be answer-identical
//!   to `eval_csr` on randomized (database, query) cases;
//! * **incremental vs from-scratch**: after each randomized edge insertion,
//!   every cached view extension repaired by delta product-BFS must equal a
//!   full re-materialization on the updated database, and ad-hoc engine
//!   answers must equal direct `graphdb` evaluation.
//!
//! Together the loops below exercise well over 200 randomized
//! (db, query, edge-insertion) cases; counts are asserted at the end of
//! each test so the coverage cannot silently erode.

use automata::{Alphabet, DenseNfa};
use engine::{eval_csr_parallel, EngineConfig, QueryEngine};
use graphdb::{eval_csr, random_graph, GraphDb, RandomGraphConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use regexlang::{random_regex, RandomRegexConfig, Regex};

fn abc() -> Alphabet {
    Alphabet::from_chars(['a', 'b', 'c']).unwrap()
}

fn random_query(domain: &Alphabet, seed: u64) -> Regex {
    random_regex(
        domain,
        &RandomRegexConfig {
            target_size: 9,
            ..Default::default()
        },
        seed,
    )
}

fn compile(db: &GraphDb, query: &Regex) -> DenseNfa {
    let nfa = regexlang::thompson(query, db.domain()).expect("query over the domain");
    DenseNfa::from_nfa(&nfa)
}

#[test]
fn parallel_eval_matches_sequential_on_random_cases() {
    let domain = abc();
    let mut cases = 0usize;
    for seed in 0..50u64 {
        let nodes = 20 + (seed as usize % 5) * 10;
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: nodes,
                num_edges: nodes * 3,
            },
            seed,
        );
        let csr = db.csr_out();
        for qseed in 0..2u64 {
            let query = random_query(&domain, seed * 101 + qseed);
            let dense = compile(&db, &query);
            let sequential = eval_csr(&csr, &dense);
            for threads in [2, 4] {
                let parallel = eval_csr_parallel(&csr, &dense, threads);
                assert_eq!(
                    sequential, parallel,
                    "seed {seed} query {query} threads {threads}"
                );
                cases += 1;
            }
        }
    }
    assert!(cases >= 200, "only {cases} parallel cases ran");
}

#[test]
fn incremental_maintenance_matches_full_rematerialization() {
    let domain = abc();
    let mut cases = 0usize;
    for seed in 0..70u64 {
        let nodes = 12 + (seed as usize % 4) * 6;
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: nodes,
                num_edges: nodes * 2,
            },
            seed ^ 0xbeef,
        );
        // Force the pool even on small graphs/1-core hosts so the parallel
        // materialization path is the one under differential test too.
        let mut engine = QueryEngine::with_config(
            db,
            EngineConfig {
                threads: 3,
                parallel_threshold: 0,
                ..EngineConfig::default()
            },
        );
        let view_a = random_query(&domain, seed * 7 + 1);
        let view_b = random_query(&domain, seed * 7 + 2);
        engine.register_view("va", view_a.clone());
        engine.register_view("vb", view_b.clone());
        engine.view_extension("va");
        engine.view_extension("vb");

        let mut rng = StdRng::seed_from_u64(seed * 31 + 5);
        for _ in 0..3 {
            let from = rng.gen_range(0..nodes);
            let to = rng.gen_range(0..nodes);
            let label = automata::Symbol(rng.gen_range(0..domain.len()) as u32);
            engine.add_edge(from, label, to);

            for (name, def) in [("va", &view_a), ("vb", &view_b)] {
                let repaired = engine.view_extension(name).unwrap().clone();
                let fresh = eval_csr(&engine.db().csr_out(), &compile(engine.db(), def));
                assert_eq!(
                    repaired, fresh,
                    "seed {seed} view {name} ({def}) after +({from},{label:?},{to})"
                );
                cases += 1;
            }
        }
        // Every extension came from one materialization + repairs only, and
        // the repairs ran on the worker pool (threads forced to 3 above).
        let stats = engine.stats();
        assert_eq!(stats.view_full_materializations, 2, "seed {seed}");
        assert_eq!(stats.view_delta_repairs, 6, "seed {seed}");
        assert_eq!(stats.parallel_repairs, 3, "seed {seed}");
    }
    assert!(cases >= 200, "only {cases} incremental cases ran");
}

#[test]
fn parallel_delta_repair_matches_sequential_repair() {
    // Two engines over identical databases and views, one repairing on the
    // pool and one sequentially: after every insertion each cached extension
    // must coincide (and with from-scratch evaluation).
    let domain = abc();
    let mut cases = 0usize;
    for seed in 0..40u64 {
        let nodes = 15 + (seed as usize % 4) * 5;
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: nodes,
                num_edges: nodes * 2,
            },
            seed ^ 0xfeed,
        );
        let mk_engine = |threads: usize| {
            QueryEngine::with_config(
                db.clone(),
                EngineConfig {
                    threads,
                    parallel_threshold: 0,
                    ..EngineConfig::default()
                },
            )
        };
        let mut sequential = mk_engine(1);
        let mut parallel = mk_engine(4);
        let views: Vec<(String, Regex)> = (0..3)
            .map(|i| (format!("v{i}"), random_query(&domain, seed * 13 + i)))
            .collect();
        for engine in [&mut sequential, &mut parallel] {
            for (name, def) in &views {
                engine.register_view(name, def.clone());
                engine.view_extension(name);
            }
        }

        let mut rng = StdRng::seed_from_u64(seed * 17 + 3);
        for _ in 0..3 {
            let from = rng.gen_range(0..nodes);
            let to = rng.gen_range(0..nodes);
            let label = automata::Symbol(rng.gen_range(0..domain.len()) as u32);
            sequential.add_edge(from, label, to);
            parallel.add_edge(from, label, to);
            for (name, def) in &views {
                let seq = sequential.view_extension(name).unwrap().clone();
                let par = parallel.view_extension(name).unwrap().clone();
                assert_eq!(seq, par, "seed {seed} view {name} ({def})");
                cases += 1;
            }
        }
        // The paths under test really diverged: one pooled, one sequential.
        assert_eq!(sequential.stats().parallel_repairs, 0, "seed {seed}");
        assert_eq!(parallel.stats().parallel_repairs, 3, "seed {seed}");
        assert_eq!(
            sequential.stats().view_delta_repairs,
            parallel.stats().view_delta_repairs,
            "seed {seed}"
        );
    }
    assert!(cases >= 200, "only {cases} repair cases ran");
}

#[test]
fn engine_ad_hoc_answers_match_direct_evaluation_across_mutations() {
    let domain = abc();
    let mut cases = 0usize;
    for seed in 0..25u64 {
        let nodes = 15 + (seed as usize % 3) * 5;
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: nodes,
                num_edges: nodes * 2,
            },
            seed ^ 0xfeed,
        );
        let mut engine = QueryEngine::new(db);
        let query = random_query(&domain, seed * 13 + 3);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..2 {
            let answer = engine.eval_regex(&query);
            let direct = graphdb::eval_regex(engine.db(), &query);
            assert_eq!(*answer, direct, "seed {seed} query {query}");
            cases += 1;
            let from = rng.gen_range(0..nodes);
            let to = rng.gen_range(0..nodes);
            let label = automata::Symbol(rng.gen_range(0..domain.len()) as u32);
            engine.add_edge(from, label, to);
        }
    }
    assert!(cases >= 50, "only {cases} ad-hoc cases ran");
}

#[test]
fn batch_insertion_matches_single_insertions() {
    let domain = abc();
    for seed in 0..10u64 {
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: 20,
                num_edges: 40,
            },
            seed ^ 0x5a5a,
        );
        let view = random_query(&domain, seed + 77);
        let mut rng = StdRng::seed_from_u64(seed * 3 + 1);
        let batch: Vec<_> = (0..4)
            .map(|_| {
                (
                    rng.gen_range(0..20),
                    automata::Symbol(rng.gen_range(0..domain.len()) as u32),
                    rng.gen_range(0..20),
                )
            })
            .collect();

        let mut batched = QueryEngine::new(db.clone());
        batched.register_view("v", view.clone());
        batched.view_extension("v");
        batched.add_edges(&batch);

        let mut stepped = QueryEngine::new(db);
        stepped.register_view("v", view.clone());
        stepped.view_extension("v");
        for &(f, l, t) in &batch {
            stepped.add_edge(f, l, t);
        }

        let via_batch = batched.view_extension("v").unwrap().clone();
        let via_steps = stepped.view_extension("v").unwrap().clone();
        assert_eq!(via_batch, via_steps, "seed {seed} view {view}");
        assert_eq!(batched.revision(), 1);
        assert_eq!(stepped.revision(), 4);
        let fresh = eval_csr(
            &stepped.db().csr_out(),
            &compile(stepped.db(), &view),
        );
        assert_eq!(via_batch, fresh, "seed {seed}");
    }
}
