//! Budget, error-path, and snapshot-retention suite: the engine half of
//! the serving-layer hardening.  The load-bearing invariants:
//!
//! * an *unlimited* budget is answer-identical to the unbudgeted API
//!   (sequential and forced-parallel),
//! * a tripped budget surfaces as the matching [`EngineError`] with a
//!   partial-work count — and never poisons the answer cache,
//! * a tripped budget during mutation repair degrades (drops the cached
//!   extension) without ever corrupting answers,
//! * `snapshot_keep_last` retains exactly the last K published snapshots,
//! * every `try_*` constructor/mutation rejects bad input atomically.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use automata::Alphabet;
use engine::{EngineConfig, EngineError, QueryBudget, QueryEngine};
use graphdb::GraphDb;

fn abc() -> Alphabet {
    Alphabet::from_chars(['a', 'b', 'c']).unwrap()
}

/// An `a`-chain with a `b`-cycle closing it: rich enough that `a*` has a
/// quadratic extension while staying fast to evaluate unbudgeted.
fn chain_db(n: usize) -> GraphDb {
    let mut db = GraphDb::new(abc());
    for i in 0..n {
        db.add_edge_named(&format!("v{i}"), "a", &format!("v{}", i + 1));
    }
    db.add_edge_named(&format!("v{n}"), "b", "v0");
    db
}

fn forced_parallel() -> EngineConfig {
    EngineConfig { threads: 4, parallel_threshold: 0, ..EngineConfig::default() }
}

// ---------------------------------------------------------------------------
// Differential: unlimited budgets change nothing

#[test]
fn unlimited_budget_is_answer_identical_sequential_and_parallel() {
    let queries = ["a*", "a·(b·a)?", "b+a·a", "ε", "∅", "(a+b)*"];
    for config in [EngineConfig::default(), forced_parallel()] {
        let mut budgeted = QueryEngine::with_config(chain_db(150), config.clone());
        let mut plain = QueryEngine::with_config(chain_db(150), config);
        for q in queries {
            let via_budget = budgeted.eval_str_budgeted(q, &QueryBudget::unlimited()).unwrap();
            let via_try = budgeted.try_eval_str(q).unwrap();
            let unbudgeted = plain.eval_str(q);
            assert_eq!(*via_budget, *unbudgeted, "{q}");
            assert_eq!(*via_try, *unbudgeted, "{q}");
        }
        // Unlimited budgets take the check-free fast path: no interrupts.
        assert_eq!(budgeted.stats().budget_interrupted_evals, 0);
    }
}

// ---------------------------------------------------------------------------
// Tripping each limit

#[test]
fn expired_deadline_reports_deadline_exceeded() {
    let mut engine = QueryEngine::with_config(chain_db(400), forced_parallel());
    let budget = QueryBudget::with_timeout(Duration::from_millis(0));
    let err = engine.eval_str_budgeted("a*", &budget).unwrap_err();
    assert!(matches!(err, EngineError::DeadlineExceeded { .. }), "{err}");
    assert_eq!(err.code(), "deadline_exceeded");
    assert!(err.is_budget_interrupt());
    assert!(engine.stats().budget_interrupted_evals >= 1);
}

#[test]
fn visit_cap_reports_visit_budget_exceeded_with_partial_work() {
    let mut engine = QueryEngine::new(chain_db(400));
    let budget = QueryBudget::unlimited().max_visited(10);
    match engine.eval_str_budgeted("a*", &budget).unwrap_err() {
        EngineError::VisitBudgetExceeded { visited } => {
            assert!(visited > 0, "partial-work count must be reported");
        }
        other => panic!("expected VisitBudgetExceeded, got {other}"),
    }
}

#[test]
fn cancellation_flag_reports_cancelled() {
    let flag = Arc::new(AtomicBool::new(true)); // pre-cancelled
    let mut engine = QueryEngine::with_config(chain_db(400), forced_parallel());
    let budget = QueryBudget::unlimited().cancelled_by(flag);
    let err = engine.eval_str_budgeted("a*", &budget).unwrap_err();
    assert!(matches!(err, EngineError::Cancelled { .. }), "{err}");
    assert_eq!(err.code(), "cancelled");
}

// ---------------------------------------------------------------------------
// Cache consistency after interrupts

#[test]
fn interrupted_answers_are_never_cached() {
    for config in [EngineConfig::default(), forced_parallel()] {
        let mut engine = QueryEngine::with_config(chain_db(200), config.clone());
        let tight = QueryBudget::unlimited().max_visited(5);
        for _ in 0..3 {
            engine.eval_str_budgeted("a*", &tight).unwrap_err();
        }
        // The partial sweeps left nothing behind: the next evaluation is a
        // cache miss whose answer equals a fresh engine's.
        let healed = engine.try_eval_str("a*").unwrap();
        let mut fresh = QueryEngine::with_config(chain_db(200), config);
        assert_eq!(*healed, *fresh.eval_str("a*"));
        let stats = engine.stats();
        assert_eq!(stats.answer_hits, 0, "no interrupted answer may be served from cache");
        // A repeat of the healed query *is* now a hit — budgets don't
        // disable caching, they only keep partial answers out.
        let again = engine.eval_str_budgeted("a*", &tight).unwrap();
        assert_eq!(*again, *healed);
        assert_eq!(engine.stats().answer_hits, 1);
    }
}

// ---------------------------------------------------------------------------
// Budgeted mutations degrade instead of failing

#[test]
fn tripped_repair_budget_drops_extensions_but_stays_correct() {
    let mut engine = QueryEngine::with_config(chain_db(200), forced_parallel());
    engine.register_view("star", regexlang::parse("a*").unwrap());
    assert!(engine.view_extension("star").is_some());

    // The mutation itself must apply even though its repair budget is
    // hopeless (the insertion repair polls the deadline per delta edge);
    // the cached extension is dropped rather than left stale.
    let expired = QueryBudget::with_timeout(Duration::from_millis(0));
    engine
        .try_add_edges_named_budgeted(&[("v0", "c", "v5"), ("v200", "a", "w0")], &expired)
        .unwrap();
    assert!(engine.stats().repair_budget_drops >= 1, "drop must be counted");

    // Re-materialization is exact: differential against a fresh engine
    // over the same final graph.
    let repaired = engine.view_extension("star").unwrap().clone();
    let mut fresh = QueryEngine::new(chain_db(200));
    fresh.try_add_edges_named(&[("v0", "c", "v5"), ("v200", "a", "w0")]).unwrap();
    assert_eq!(repaired, *fresh.eval_str("a*"));

    // Deletion path: same degradation contract.
    engine.try_remove_edges_named(&[("v0", "a", "v1")]).unwrap();
    let drops_before = engine.stats().repair_budget_drops;
    engine
        .try_add_edges_named_budgeted(&[("v0", "a", "v1")], &QueryBudget::unlimited())
        .unwrap();
    // Unlimited budgets never drop.
    assert_eq!(engine.stats().repair_budget_drops, drops_before);
}

#[test]
fn budgeted_deletion_repair_degrades_and_heals() {
    let mut engine = QueryEngine::with_config(chain_db(150), forced_parallel());
    engine.register_view("star", regexlang::parse("a*").unwrap());
    engine.view_extension("star");

    let expired = QueryBudget::with_timeout(Duration::from_millis(0));
    engine.try_remove_edges_budgeted(
        &[(0, automata::Symbol(0), 1)], // v0 -a-> v1
        &expired,
    ).unwrap();
    assert!(engine.stats().repair_budget_drops >= 1);

    let healed = engine.view_extension("star").unwrap().clone();
    let mut fresh = QueryEngine::new(chain_db(150));
    fresh.remove_edge(0, automata::Symbol(0), 1);
    assert_eq!(healed, *fresh.eval_str("a*"));
}

// ---------------------------------------------------------------------------
// Snapshot retention

#[test]
fn keep_last_k_retains_a_sliding_window() {
    let config = EngineConfig { snapshot_keep_last: 3, ..EngineConfig::default() };
    let mut engine = QueryEngine::with_config(GraphDb::new(abc()), config);
    for i in 0..6 {
        let from = format!("x{i}");
        let to = format!("x{}", i + 1);
        engine.try_add_edges_named(&[(from.as_str(), "a", to.as_str())]).unwrap();
        engine.publish_snapshot();
    }
    let retained: Vec<u64> = engine.retained_snapshots().map(|s| s.revision()).collect();
    assert_eq!(retained, vec![4, 5, 6], "oldest-first window of the last 3 revisions");
    let stats = engine.stats();
    assert_eq!(stats.snapshot_retained, 6);
    assert_eq!(stats.snapshot_dropped, 3);
}

#[test]
fn zero_keep_last_retains_nothing() {
    let mut engine = QueryEngine::new(GraphDb::new(abc()));
    engine.add_edge_named("p", "a", "q");
    engine.publish_snapshot();
    assert_eq!(engine.retained_snapshots().count(), 0);
    assert_eq!(engine.stats().snapshot_retained, 0);
}

// ---------------------------------------------------------------------------
// Strict configuration validation

#[test]
fn try_with_config_rejects_each_degenerate_knob() {
    for (knob, config) in [
        ("threads", EngineConfig { threads: 0, ..EngineConfig::default() }),
        (
            "answer_cache_capacity",
            EngineConfig { threads: 1, answer_cache_capacity: 0, ..EngineConfig::default() },
        ),
    ] {
        let err = QueryEngine::try_with_config(GraphDb::new(abc()), config).unwrap_err();
        assert_eq!(err.code(), "invalid_config", "{knob}");
        assert!(err.to_string().contains(knob), "{knob} must be named in: {err}");
    }
    // The serving preset and plain defaults-with-threads both pass.
    assert!(QueryEngine::try_with_config(GraphDb::new(abc()), EngineConfig::serving()).is_ok());
    // The permissive constructor still honors the documented degenerate
    // semantics (threads: 0 = auto) for tests and embedded use.
    let _ = QueryEngine::with_config(GraphDb::new(abc()), EngineConfig::default());
}

// ---------------------------------------------------------------------------
// try_* mutation and query error paths

#[test]
fn try_eval_str_surfaces_parse_and_label_errors() {
    let mut engine = QueryEngine::new(chain_db(5));
    let parse_err = engine.try_eval_str("a·(b").unwrap_err();
    assert_eq!(parse_err.code(), "parse_error");
    let label_err = engine.try_eval_str("z*").unwrap_err();
    assert_eq!(label_err.code(), "unknown_label");
    assert!(label_err.to_string().contains("`z`"), "{label_err}");
}

#[test]
fn bad_batches_are_rejected_atomically() {
    let mut engine = QueryEngine::new(chain_db(5));
    let before = engine.revision();

    // Insertion: second triple has an unknown label — nothing applies,
    // including the would-be-new node of the first triple.
    let err = engine.try_add_edges_named(&[("new", "a", "v0"), ("v1", "z", "v2")]).unwrap_err();
    assert_eq!(err.code(), "unknown_label");
    assert_eq!(engine.revision(), before);
    assert_eq!(engine.try_eval_str("a·a").unwrap().len(), 4);

    // Removal: more occurrences requested than present — nothing applies.
    let err = engine
        .try_remove_edges_named(&[("v0", "a", "v1"), ("v0", "a", "v1")])
        .unwrap_err();
    match &err {
        EngineError::EdgeNotPresent { requested, present, .. } => {
            assert_eq!((*requested, *present), (2, 1));
        }
        other => panic!("expected EdgeNotPresent, got {other}"),
    }
    assert_eq!(engine.revision(), before);

    // Unknown node name on removal.
    let err = engine.try_remove_edges_named(&[("nobody", "a", "v1")]).unwrap_err();
    assert_eq!(err.code(), "unknown_node");
    assert_eq!(engine.revision(), before);
}
