//! Answer-cache compaction when a long-pinned revision retires from the
//! retention window.
//!
//! Stale answers are normally evicted lazily (on lookup, or preferentially
//! under capacity pressure).  A reader pinned at an old revision defeats
//! both paths: nobody looks its fingerprints up again and the cache may
//! never reach capacity — its entries would squat in the shared map until
//! process exit.  Once the retention window's oldest revision advances
//! past the pinned revision, the writer compacts those entries out on
//! `publish_snapshot()`; the pinned reader stays fully serviceable (it
//! recomputes instead of hitting cache).

use automata::Alphabet;
use engine::{EngineConfig, QueryEngine};
use graphdb::GraphDb;

fn abc() -> Alphabet {
    Alphabet::from_chars(['a', 'b']).unwrap()
}

fn seeded_engine(keep_last: usize) -> QueryEngine {
    let mut db = GraphDb::new(abc());
    db.add_edge_named("n0", "a", "n1");
    db.add_edge_named("n1", "b", "n2");
    QueryEngine::with_config(
        db,
        EngineConfig {
            snapshot_keep_last: keep_last,
            ..EngineConfig::default()
        },
    )
}

/// The writer compacts retired-revision answers exactly when the window's
/// oldest revision moves past them, and the pinned reader still answers
/// correctly (differentially against a from-scratch evaluation) afterward.
#[test]
fn retired_pinned_answers_are_compacted_on_publish() {
    let mut engine = seeded_engine(2);

    // Revision 0: a pinned reader caches an answer.
    let pinned = engine.publish_snapshot();
    let pinned_answer = (*pinned.eval_str("a·b*")).clone();
    assert_eq!(engine.answer_cache_len(), 1);

    // One mutation: window is {0, 1} — revision 0 is still retained, so
    // publishing must NOT compact the pinned entry.
    engine.add_edge_named("n2", "a", "n0");
    engine.publish_snapshot();
    assert_eq!(engine.stats().answer_compactions, 0);
    assert_eq!(engine.answer_cache_len(), 1);

    // Second mutation: window advances to {1, 2}; revision 0 retires and
    // its cached answer is compacted away on publish.
    engine.add_edge_named("n0", "b", "n2");
    engine.publish_snapshot();
    assert_eq!(engine.stats().answer_compactions, 1);
    assert_eq!(engine.answer_cache_len(), 0);

    // The pinned reader is unaffected semantically: same revision, same
    // answer — recomputed rather than served from cache.
    assert_eq!(pinned.revision(), 0);
    assert_eq!(*pinned.eval_str("a·b*"), pinned_answer);

    // Its recomputed answer re-enters the cache tagged with revision 0 and
    // is swept again by the next window advance.
    assert_eq!(engine.answer_cache_len(), 1);
    engine.add_edge_named("n1", "a", "n2");
    engine.publish_snapshot();
    assert_eq!(engine.stats().answer_compactions, 2);
}

/// Current-revision answers survive compaction: only entries older than
/// the window's oldest retained revision are swept.
#[test]
fn live_answers_survive_compaction() {
    let mut engine = seeded_engine(1);

    engine.publish_snapshot().eval_str("a");
    engine.add_edge_named("n2", "a", "n0");
    let now = engine.publish_snapshot();
    // keep_last = 1: revision 0 retired immediately; its entry is gone.
    assert_eq!(engine.stats().answer_compactions, 1);

    now.eval_str("a");
    now.eval_str("b");
    assert_eq!(engine.answer_cache_len(), 2);
    // Re-publishing at the same revision does not advance the window and
    // must leave the live entries alone.
    engine.publish_snapshot();
    assert_eq!(engine.answer_cache_len(), 2);
    assert_eq!(engine.stats().answer_compactions, 1);
}

/// With retention disabled (`snapshot_keep_last = 0`) the engine pins no
/// snapshots and never compacts — lazy lookup-time eviction remains the
/// only stale-answer path.
#[test]
fn no_retention_window_means_no_compaction() {
    let mut engine = seeded_engine(0);
    engine.publish_snapshot().eval_str("a·b*");
    for _ in 0..3 {
        engine.add_edge_named("n2", "a", "n0");
        engine.publish_snapshot();
    }
    assert_eq!(engine.stats().answer_compactions, 0);
    assert_eq!(engine.answer_cache_len(), 1);
}
