//! Telemetry suite: span tracing through the snapshot explain surface and
//! the engine latency histograms.  The load-bearing invariants:
//!
//! * a traced evaluation is answer-identical to the untraced call and its
//!   top-level spans are non-overlapping, so their sum never exceeds the
//!   trace's wall time,
//! * cache hits trace as `parse`/`cache_lookup` without re-running compile
//!   or the product-BFS,
//! * `EngineConfig { telemetry: false, .. }` leaves every histogram empty
//!   while explicit per-query tracing keeps working,
//! * publish/eval/repair histograms fill in as the engine does that work,
//!   and the pinned-snapshot-age gauges mirror `snapshot_keep_last`.

use automata::Alphabet;
use engine::{EngineConfig, Phase, QueryBudget, QueryEngine, TraceContext};
use graphdb::GraphDb;

fn abc() -> Alphabet {
    Alphabet::from_chars(['a', 'b', 'c']).unwrap()
}

fn chain_db(n: usize) -> GraphDb {
    let mut db = GraphDb::new(abc());
    for i in 0..n {
        db.add_edge_named(&format!("v{i}"), "a", &format!("v{}", i + 1));
    }
    db.add_edge_named(&format!("v{n}"), "b", "v0");
    db
}

fn forced_parallel() -> EngineConfig {
    EngineConfig { threads: 4, parallel_threshold: 0, ..EngineConfig::default() }
}

fn phases(trace: &TraceContext, top_level_only: bool) -> Vec<Phase> {
    trace
        .spans()
        .iter()
        .filter(|s| !top_level_only || s.worker.is_none())
        .map(|s| s.phase)
        .collect()
}

#[test]
fn traced_eval_is_answer_identical_with_nonoverlapping_top_level_spans() {
    let mut engine = QueryEngine::with_config(chain_db(300), forced_parallel());
    let snapshot = engine.publish_snapshot();

    // Trace the cold run (the warm one would be a cache hit with no sweep).
    let trace = TraceContext::new(7);
    let traced = snapshot.eval_str_traced("a*·b?", &QueryBudget::unlimited(), &trace).unwrap();
    let untraced = snapshot.eval_str_budgeted("a*·b?", &QueryBudget::unlimited()).unwrap();
    assert_eq!(*traced, *untraced);
    assert_eq!(trace.trace_id(), 7);

    let top = phases(&trace, true);
    for phase in [Phase::Parse, Phase::CacheLookup, Phase::Compile, Phase::ProductBfs, Phase::ChunkMerge] {
        assert!(top.contains(&phase), "missing {phase:?} in {top:?}");
    }
    // Forced-parallel run: per-worker detail spans ride along.
    let detail: Vec<Phase> = phases(&trace, false);
    assert!(detail.contains(&Phase::ChunkAcquire), "{detail:?}");

    // Top-level spans partition the pipeline: their sum is bounded by the
    // whole trace's wall time (worker spans overlap and are excluded).
    assert!(trace.top_level_sum_us() <= trace.total_us().max(1));
    assert_eq!(trace.dropped(), 0);
}

#[test]
fn cache_hit_traces_lookup_without_reevaluation() {
    let mut engine = QueryEngine::with_config(chain_db(50), EngineConfig::default());
    let snapshot = engine.publish_snapshot();
    let warm = snapshot.eval_str_budgeted("a·a", &QueryBudget::unlimited()).unwrap();

    let trace = TraceContext::new(1);
    let hit = snapshot.eval_str_traced("a·a", &QueryBudget::unlimited(), &trace).unwrap();
    assert_eq!(*hit, *warm);

    let top = phases(&trace, true);
    assert!(top.contains(&Phase::Parse), "{top:?}");
    assert!(top.contains(&Phase::CacheLookup), "{top:?}");
    assert!(!top.contains(&Phase::Compile), "cache hit must not recompile: {top:?}");
    assert!(!top.contains(&Phase::ProductBfs), "cache hit must not re-sweep: {top:?}");
}

#[test]
fn disabling_telemetry_silences_histograms_but_not_tracing() {
    let config = EngineConfig { telemetry: false, ..forced_parallel() };
    let mut engine = QueryEngine::with_config(chain_db(300), config);
    let snapshot = engine.publish_snapshot();

    let trace = TraceContext::new(2);
    snapshot.eval_str_traced("a*", &QueryBudget::unlimited(), &trace).unwrap();
    snapshot.eval_str_budgeted("a·b", &QueryBudget::unlimited()).unwrap();

    assert!(!snapshot.telemetry().enabled());
    for (name, histogram) in snapshot.telemetry().histograms() {
        assert!(histogram.is_empty(), "{name} recorded despite telemetry: false");
    }
    // Tracing is an explicit per-query opt-in and still works.
    assert!(!trace.spans().is_empty());
    assert!(trace.spans().iter().any(|s| s.phase == Phase::ProductBfs));
}

#[test]
fn histograms_and_snapshot_ages_fill_in_with_work() {
    let mut engine = QueryEngine::with_config(chain_db(300), forced_parallel());
    let snapshot = engine.publish_snapshot();
    snapshot.eval_str_budgeted("a*", &QueryBudget::unlimited()).unwrap();
    snapshot.eval_str_budgeted("a*", &QueryBudget::unlimited()).unwrap(); // cache hit
    {
        let telemetry = snapshot.telemetry();
        assert_eq!(telemetry.eval().count(), 2, "both evals (hit and miss) time end-to-end");
        assert_eq!(telemetry.compile().count(), 1, "only the miss compiles");
        assert_eq!(telemetry.product_bfs().count(), 1, "only the miss sweeps");
    }
    drop(snapshot);

    // A mutation over a materialized view exercises the repair path;
    // republishing records another publish.
    engine.register_view("star", regexlang::parse("a*").unwrap());
    assert!(engine.view_extension("star").is_some());
    engine.add_edge_named("v0", "c", "v1");
    let snapshot = engine.publish_snapshot();

    let telemetry = snapshot.telemetry();
    assert!(telemetry.repair().count() >= 1, "mutation repair must be timed");
    assert_eq!(telemetry.snapshot_publish().count(), 2);

    let ages = telemetry.snapshot_ages();
    assert!(!ages.is_empty());
    assert!(telemetry.oldest_snapshot_age_s() >= 0.0);
    assert!(snapshot.age().as_secs() < 60, "published_at is per-snapshot");

    // Percentiles come from real recordings: p99 is bounded by the max.
    assert!(telemetry.eval().percentile(0.99) >= telemetry.eval().percentile(0.50));
    assert!(telemetry.eval().percentile(0.99) <= telemetry.eval().max_us().max(1));
}
