//! Differential suite pinning the engine's non-monotone maintenance — DRed
//! edge deletion — to from-scratch re-materialization:
//!
//! * **interleaved insert/delete vs from-scratch**: after every mutation of
//!   a randomized insert/delete schedule, every cached view extension
//!   (repaired by delta product-BFS on insertion, DRed over-deletion +
//!   re-derivation on deletion) must equal a full re-materialization on the
//!   mutated database, and ad-hoc engine answers must equal direct
//!   `graphdb` evaluation;
//! * **pinned snapshots under active deletion**: a snapshot published
//!   before a deletion keeps serving exactly its revision's answers — view
//!   extensions and ad-hoc queries — while the writer over-deletes and
//!   re-derives, including from concurrent reader threads;
//! * **support counts**: deleting one copy of a duplicated edge must skip
//!   the DRed pass entirely (and still be answer-exact).
//!
//! The interleaving loop alone exercises well over 200 randomized
//! (db, views, mutation) cases; counts are asserted at the end of each test
//! so the coverage cannot silently erode.

use automata::{Alphabet, DenseNfa, Symbol};
use engine::{EngineConfig, QueryEngine};
use graphdb::{eval_csr, random_graph, Answer, Edge, GraphDb, RandomGraphConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use regexlang::{random_regex, RandomRegexConfig, Regex};

fn abc() -> Alphabet {
    Alphabet::from_chars(['a', 'b', 'c']).unwrap()
}

fn random_query(domain: &Alphabet, seed: u64) -> Regex {
    random_regex(
        domain,
        &RandomRegexConfig {
            target_size: 9,
            ..Default::default()
        },
        seed,
    )
}

fn compile(db: &GraphDb, query: &Regex) -> DenseNfa {
    let nfa = regexlang::thompson(query, db.domain()).expect("query over the domain");
    DenseNfa::from_nfa(&nfa)
}

/// A random mutation against the engine's current database: an insertion of
/// a random edge, or a deletion of a random *existing* edge (falling back to
/// insertion when the graph ran dry).  Biased toward deletion so schedules
/// genuinely shrink graphs instead of only ever growing them.
fn random_mutation(engine: &QueryEngine, rng: &mut StdRng) -> (bool, (usize, Symbol, usize)) {
    let num_nodes = engine.db().num_nodes();
    let domain_len = engine.db().domain().len();
    let delete = engine.db().num_edges() > 0 && rng.gen_range(0..10) < 6;
    if delete {
        let edges: Vec<Edge> = engine.db().edges().collect();
        let e = edges[rng.gen_range(0..edges.len())];
        (true, (e.from, e.label, e.to))
    } else {
        (
            false,
            (
                rng.gen_range(0..num_nodes),
                Symbol(rng.gen_range(0..domain_len) as u32),
                rng.gen_range(0..num_nodes),
            ),
        )
    }
}

#[test]
fn interleaved_insertions_and_deletions_match_full_rematerialization() {
    let domain = abc();
    let mut cases = 0usize;
    let mut deletions_seen = 0usize;
    for seed in 0..60u64 {
        let nodes = 12 + (seed as usize % 4) * 6;
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: nodes,
                num_edges: nodes * 2,
            },
            seed ^ 0xdead,
        );
        // Force the pool even on small graphs/1-core hosts so the parallel
        // DRed path is the one under differential test too.
        let mut engine = QueryEngine::with_config(
            db,
            EngineConfig {
                threads: 3,
                parallel_threshold: 0,
                ..EngineConfig::default()
            },
        );
        let view_a = random_query(&domain, seed * 11 + 1);
        let view_b = random_query(&domain, seed * 11 + 2);
        engine.register_view("va", view_a.clone());
        engine.register_view("vb", view_b.clone());
        engine.view_extension("va");
        engine.view_extension("vb");

        let mut rng = StdRng::seed_from_u64(seed * 29 + 7);
        for step in 0..4 {
            let (delete, (from, label, to)) = random_mutation(&engine, &mut rng);
            if delete {
                engine.remove_edge(from, label, to);
                deletions_seen += 1;
            } else {
                engine.add_edge(from, label, to);
            }

            for (name, def) in [("va", &view_a), ("vb", &view_b)] {
                let repaired = engine.view_extension(name).unwrap().clone();
                let fresh = eval_csr(&engine.db().csr_out(), &compile(engine.db(), def));
                assert_eq!(
                    repaired, fresh,
                    "seed {seed} step {step} view {name} ({def}) after \
                     {}({from},{label:?},{to})",
                    if delete { "del" } else { "add" }
                );
                cases += 1;
            }
        }
        // Extensions never re-materialized: every answer above came from the
        // one initial materialization plus incremental repairs.
        assert_eq!(engine.stats().view_full_materializations, 2, "seed {seed}");
    }
    assert!(cases >= 200, "only {cases} interleaved cases ran");
    assert!(
        deletions_seen >= 60,
        "only {deletions_seen} deletions in the schedules"
    );
}

#[test]
fn ad_hoc_answers_track_deletions_across_revisions() {
    let domain = abc();
    let mut cases = 0usize;
    for seed in 0..25u64 {
        let nodes = 15 + (seed as usize % 3) * 5;
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: nodes,
                num_edges: nodes * 2,
            },
            seed ^ 0xabcd,
        );
        let mut engine = QueryEngine::new(db);
        let query = random_query(&domain, seed * 13 + 3);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        for _ in 0..3 {
            let answer = engine.eval_regex(&query);
            let direct = graphdb::eval_regex(engine.db(), &query);
            assert_eq!(*answer, direct, "seed {seed} query {query}");
            cases += 1;
            let (delete, (from, label, to)) = random_mutation(&engine, &mut rng);
            if delete {
                engine.remove_edge(from, label, to);
            } else {
                engine.add_edge(from, label, to);
            }
        }
    }
    assert!(cases >= 75, "only {cases} ad-hoc cases ran");
}

#[test]
fn batch_deletion_matches_stepped_deletion() {
    let domain = abc();
    for seed in 0..10u64 {
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: 20,
                num_edges: 60,
            },
            seed ^ 0x7777,
        );
        let view = random_query(&domain, seed + 55);
        let mut rng = StdRng::seed_from_u64(seed * 5 + 2);
        // Four distinct existing edges (distinct triples, so the stepped
        // engine never double-removes a single copy).
        let mut batch: Vec<(usize, Symbol, usize)> = Vec::new();
        let edges: Vec<Edge> = db.edges().collect();
        while batch.len() < 4 {
            let e = edges[rng.gen_range(0..edges.len())];
            let triple = (e.from, e.label, e.to);
            if !batch.contains(&triple) {
                batch.push(triple);
            }
        }

        let mut batched = QueryEngine::new(db.clone());
        batched.register_view("v", view.clone());
        batched.view_extension("v");
        batched.remove_edges(&batch);

        let mut stepped = QueryEngine::new(db);
        stepped.register_view("v", view.clone());
        stepped.view_extension("v");
        for &(f, l, t) in &batch {
            stepped.remove_edge(f, l, t);
        }

        let via_batch = batched.view_extension("v").unwrap().clone();
        let via_steps = stepped.view_extension("v").unwrap().clone();
        assert_eq!(via_batch, via_steps, "seed {seed} view {view}");
        assert_eq!(batched.revision(), 1);
        assert_eq!(stepped.revision(), 4);
        let fresh = eval_csr(&stepped.db().csr_out(), &compile(stepped.db(), &view));
        assert_eq!(via_batch, fresh, "seed {seed}");
    }
}

#[test]
fn support_counts_skip_dred_on_random_multigraphs() {
    let domain = abc();
    for seed in 0..10u64 {
        let mut db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: 15,
                num_edges: 30,
            },
            seed ^ 0x1357,
        );
        // Duplicate three random edges, then delete one copy of each: the
        // support count proves the answers cannot change.
        let mut rng = StdRng::seed_from_u64(seed * 3 + 9);
        let mut doubled: Vec<(usize, Symbol, usize)> = Vec::new();
        let edges: Vec<Edge> = db.edges().collect();
        for _ in 0..3 {
            let e = edges[rng.gen_range(0..edges.len())];
            db.add_edge(e.from, e.label, e.to);
            doubled.push((e.from, e.label, e.to));
        }
        let mut engine = QueryEngine::new(db);
        let view = random_query(&domain, seed + 21);
        engine.register_view("v", view.clone());
        let before = engine.view_extension("v").unwrap().clone();

        engine.remove_edges(&doubled);
        let after = engine.view_extension("v").unwrap().clone();
        assert_eq!(after, before, "seed {seed} view {view}");
        let fresh = eval_csr(&engine.db().csr_out(), &compile(engine.db(), &view));
        assert_eq!(after, fresh, "seed {seed}");
        let stats = engine.stats();
        assert_eq!(stats.view_deletion_repairs, 0, "seed {seed}: DRed must not run");
        assert!(stats.deletion_support_skips >= 3, "seed {seed}");
    }
}

#[test]
fn pinned_snapshots_keep_exact_answers_under_active_deletion() {
    let domain = abc();
    for seed in 0..8u64 {
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: 18,
                num_edges: 54,
            },
            seed ^ 0x2468,
        );
        let view = random_query(&domain, seed + 31);
        let query = random_query(&domain, seed + 32);
        let mut engine = QueryEngine::new(db);
        engine.register_view("v", view.clone());

        // Publish a snapshot at every revision of a deletion-heavy schedule,
        // recording the expected (extension, ad-hoc answer) per revision.
        let mut rng = StdRng::seed_from_u64(seed * 41 + 3);
        let mut pinned: Vec<(std::sync::Arc<engine::EngineSnapshot>, Answer, Answer)> = Vec::new();
        for _ in 0..5 {
            let snapshot = engine.publish_snapshot();
            let ext = snapshot.view_extension("v").unwrap().clone();
            let adhoc = (*snapshot.eval_regex(&query)).clone();
            pinned.push((snapshot, ext, adhoc));
            let (delete, (from, label, to)) = random_mutation(&engine, &mut rng);
            if delete {
                engine.remove_edge(from, label, to);
            } else {
                engine.add_edge(from, label, to);
            }
        }
        assert!(engine.stats().view_deletion_repairs > 0, "seed {seed}: schedule never deleted");

        // Every pinned snapshot still answers exactly as at publish time —
        // checked from concurrent reader threads while the handles outlive
        // further writer deletions.
        std::thread::scope(|scope| {
            let query = &query;
            for (snapshot, ext, adhoc) in &pinned {
                scope.spawn(move || {
                    assert_eq!(snapshot.view_extension("v").unwrap(), ext);
                    assert_eq!(*snapshot.eval_regex(query), *adhoc);
                });
            }
        });
        // And revisions are strictly increasing along the schedule.
        for (older, newer) in pinned.iter().zip(pinned.iter().skip(1)) {
            assert!(older.0.revision() < newer.0.revision());
        }
    }
}
