//! Concurrency stress suite for the writer/snapshot split: N reader
//! threads evaluate a mixed query workload against published snapshots
//! while the writer streams edge insertions — and every reader's answers
//! must be *exactly* the answers at its snapshot's revision, pinned by a
//! differential replay on a sequential engine.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use automata::Alphabet;
use engine::{EngineConfig, EngineSnapshot, QueryEngine};
use graphdb::{random_graph, Answer, GraphDb, RandomGraphConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use regexlang::{random_regex, RandomRegexConfig, Regex};

const READERS: usize = 4;

fn abc() -> Alphabet {
    Alphabet::from_chars(['a', 'b', 'c']).unwrap()
}

fn mixed_queries(domain: &Alphabet, seed: u64) -> Vec<Regex> {
    (0..6)
        .map(|i| {
            random_regex(
                domain,
                &RandomRegexConfig {
                    target_size: 8,
                    ..Default::default()
                },
                seed * 131 + i,
            )
        })
        .collect()
}

fn edge_batches(domain: &Alphabet, nodes: usize, batches: usize, seed: u64) -> Vec<Vec<(usize, automata::Symbol, usize)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|_| {
            (0..3)
                .map(|_| {
                    (
                        rng.gen_range(0..nodes),
                        automata::Symbol(rng.gen_range(0..domain.len()) as u32),
                        rng.gen_range(0..nodes),
                    )
                })
                .collect()
        })
        .collect()
}

/// The handle type really is shareable: `Arc<EngineSnapshot>` crosses
/// threads, and so does a `&EngineSnapshot` borrowed into a scope.
#[test]
fn engine_snapshot_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineSnapshot>();
    assert_send_sync::<Arc<EngineSnapshot>>();
}

/// The acceptance test of the split: ≥ 4 reader threads evaluate a mixed
/// regex workload against whatever snapshots have been published so far,
/// *while* the writer thread keeps inserting edge batches and publishing
/// new revisions.  Expected answers per (revision, query) come from a
/// sequential replay on an independent engine; any reader observing a
/// torn/mixed-revision answer fails the differential comparison.
#[test]
fn concurrent_readers_match_sequential_replay_at_every_revision() {
    let domain = abc();
    let db = random_graph(
        &domain,
        &RandomGraphConfig {
            num_nodes: 40,
            num_edges: 120,
        },
        0xc0ffee,
    );
    let queries = mixed_queries(&domain, 7);
    let batches = edge_batches(&domain, db.num_nodes(), 6, 0xfeed);

    // Sequential replay: expected[r][q] = answer of query q at revision r.
    let mut expected: Vec<Vec<Answer>> = Vec::new();
    {
        let mut replay = QueryEngine::with_config(
            db.clone(),
            EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
        );
        replay.register_view("va", regexlang::parse("a·b*").unwrap());
        for batch in &batches {
            expected.push(queries.iter().map(|q| (*replay.eval_regex(q)).clone()).collect());
            replay.add_edges(batch);
        }
        expected.push(queries.iter().map(|q| (*replay.eval_regex(q)).clone()).collect());
    }

    // Concurrent run: the writer streams the same batches and publishes a
    // snapshot per revision; readers hammer the published snapshots.
    let mut engine = QueryEngine::new(db);
    engine.register_view("va", regexlang::parse("a·b*").unwrap());
    let published: Mutex<Vec<Arc<EngineSnapshot>>> = Mutex::new(vec![engine.publish_snapshot()]);
    let writer_done = AtomicBool::new(false);
    let checks = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let published = &published;
        let writer_done = &writer_done;
        let checks = &checks;
        let queries = &queries;
        let expected = &expected;
        let batches = &batches;

        scope.spawn(move || {
            for batch in batches {
                engine.add_edges(batch);
                published
                    .lock()
                    .expect("snapshot list poisoned")
                    .push(engine.publish_snapshot());
            }
            writer_done.store(true, Ordering::Release);
        });

        for reader in 0..READERS {
            scope.spawn(move || {
                let mut rounds = 0usize;
                loop {
                    let done = writer_done.load(Ordering::Acquire);
                    let snapshots: Vec<Arc<EngineSnapshot>> =
                        published.lock().expect("snapshot list poisoned").clone();
                    for snapshot in &snapshots {
                        let revision = snapshot.revision() as usize;
                        // Rotate the workload per reader so different
                        // readers hit different (snapshot, query) pairs at
                        // the same moment.
                        for (i, _) in queries.iter().enumerate() {
                            let q = &queries[(i + reader) % queries.len()];
                            let got = snapshot.eval_regex(q);
                            let want =
                                &expected[revision][(i + reader) % queries.len()];
                            assert_eq!(
                                &*got, want,
                                "reader {reader} diverged at revision {revision} on {q}"
                            );
                            checks.fetch_add(1, Ordering::Relaxed);
                        }
                        // The captured view extension is the revision's, too.
                        let ext = snapshot.view_extension("va").expect("registered");
                        assert_eq!(
                            ext.len(),
                            snapshot.eval_str("a·b*").len(),
                            "reader {reader}: stale or torn view extension at {revision}"
                        );
                    }
                    rounds += 1;
                    // Keep reading while the writer is alive, then do one
                    // final pass over the complete snapshot history.
                    if done && snapshots.len() == batches.len() + 1 {
                        break;
                    }
                    assert!(rounds < 1_000_000, "reader {reader} spun without progress");
                }
            });
        }
    });

    let snapshots = published.into_inner().expect("snapshot list poisoned");
    assert_eq!(snapshots.len(), batches.len() + 1, "one snapshot per revision");
    // Every revision was differentially checked by every reader at least
    // once (the final full pass guarantees it even on a slow machine).
    assert!(
        checks.load(Ordering::Relaxed) >= READERS * snapshots.len() * queries.len(),
        "only {} differential checks ran",
        checks.load(Ordering::Relaxed)
    );
}

/// Snapshots are immutable: a reader holding an old handle keeps getting
/// the old revision's answers even after the writer has repaired its view
/// extensions (copy-on-write) many times over.
#[test]
fn pinned_snapshot_answers_survive_many_writer_repairs() {
    let domain = abc();
    let mut db = GraphDb::new(domain.clone());
    db.add_edge_named("n0", "a", "n1");
    db.add_edge_named("n1", "b", "n2");
    let mut engine = QueryEngine::new(db);
    engine.register_view("v", regexlang::parse("a·b*").unwrap());
    engine.view_extension("v");

    let snapshot = engine.publish_snapshot();
    let pinned_eval = (*snapshot.eval_str("a·b*")).clone();
    let pinned_ext = snapshot.view_extension("v").unwrap().clone();

    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..10 {
        let from = rng.gen_range(0..3);
        let to = rng.gen_range(0..3);
        engine.add_edge(from, automata::Symbol(rng.gen_range(0..domain.len()) as u32), to);
    }
    // Writer moved on 10 revisions; the pinned handle did not.
    assert_eq!(engine.revision(), 10);
    assert_eq!(snapshot.revision(), 0);
    assert_eq!(*snapshot.eval_str("a·b*"), pinned_eval);
    assert_eq!(*snapshot.view_extension("v").unwrap(), pinned_ext);
    // And the writer's current snapshot sees the repaired state.
    let now = engine.publish_snapshot();
    assert_eq!(
        *now.view_extension("v").unwrap(),
        graphdb::eval_str(engine.db(), "a·b*")
    );
    assert!(now.view_extension("v").unwrap().len() >= pinned_ext.len());
}

/// Concurrent readers of one snapshot share the answer cache: the first
/// evaluation of each distinct query is a miss, every other thread's
/// lookup is a hit, and hits return the *same* `Arc` allocation.
#[test]
fn readers_share_answer_cache_hits_without_blocking() {
    let domain = abc();
    let db = random_graph(
        &domain,
        &RandomGraphConfig {
            num_nodes: 30,
            num_edges: 90,
        },
        42,
    );
    let mut engine = QueryEngine::new(db);
    let snapshot = engine.publish_snapshot();
    let queries = mixed_queries(&domain, 3);

    let answers: Vec<Vec<Arc<Answer>>> = std::thread::scope(|scope| {
        (0..READERS)
            .map(|_| {
                let snapshot = snapshot.clone();
                let queries = &queries;
                scope.spawn(move || {
                    queries.iter().map(|q| snapshot.eval_regex(q)).collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|w| w.join().expect("reader panicked"))
            .collect()
    });
    for worker in &answers[1..] {
        for (a, b) in answers[0].iter().zip(worker) {
            assert!(Arc::ptr_eq(a, b), "readers must converge on one cached answer");
        }
    }
    let stats = engine.stats();
    assert_eq!(
        stats.answer_hits + stats.answer_misses,
        (READERS * queries.len()) as u64
    );
    assert!(
        stats.answer_misses >= queries.len() as u64,
        "each distinct query evaluated at least once"
    );
}
