//! Differential suite for the interactive read path — the single-pair
//! bidirectional evaluator, the single-source/top-k evaluator, and the
//! point-query cache behind them:
//!
//! * **point lookups vs full materialization**: across randomized
//!   (db, query, mutation) schedules, every `eval_pair_str` verdict and
//!   every `eval_from_str` target list must equal the corresponding slice
//!   of a from-scratch `eval_csr` materialization;
//! * **pinned revisions**: snapshots pinned before mutations keep serving
//!   exactly their revision's interactive answers;
//! * **observable caching**: point-cache hits/misses and answer-cache
//!   extension hits are visible through `EngineStats`, and budget
//!   interrupts or limit truncation never cache a partial answer;
//! * **early exit**: interactive calls never run the full materializer
//!   (`sequential_evals`/`parallel_evals` stay flat while
//!   `pair_evals`/`from_evals` advance);
//! * **deletion gap**: a point-cached drain from before an edge deletion
//!   is never served to a newer snapshot, and retired entries are
//!   compacted out on publish once the retention window advances.
//!
//! The mutation loop alone exercises well over 200 randomized cases;
//! counts are asserted at the end so the coverage cannot silently erode.

use automata::{Alphabet, DenseNfa, Symbol};
use engine::{EngineConfig, QueryBudget, QueryEngine};
use graphdb::{eval_csr, random_graph, Answer, Edge, GraphDb, NodeId, RandomGraphConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const QUERIES: &[&str] = &["a", "a·b", "c*", "(a+b)*·c", "a·(b+c)*", "a+b·c?"];

fn abc() -> Alphabet {
    Alphabet::from_chars(['a', 'b', 'c']).unwrap()
}

fn compile(query: &str, domain: &Alphabet) -> DenseNfa {
    let expr = regexlang::parse(query).expect("query parses");
    let nfa = regexlang::thompson(&expr, domain).expect("query over the domain");
    DenseNfa::from_nfa(&nfa)
}

/// The sorted target list the full oracle answer assigns to `source`.
fn oracle_targets(oracle: &Answer, source: NodeId) -> Vec<NodeId> {
    oracle
        .iter()
        .filter(|&&(s, _)| s == source)
        .map(|&(_, t)| t)
        .collect()
}

/// A random mutation against the engine's current database: an insertion of
/// a random edge, or a deletion of a random *existing* edge (falling back to
/// insertion when the graph ran dry).  Biased toward deletion so schedules
/// genuinely shrink graphs instead of only ever growing them.
fn random_mutation(engine: &QueryEngine, rng: &mut StdRng) -> (bool, (usize, Symbol, usize)) {
    let num_nodes = engine.db().num_nodes();
    let domain_len = engine.db().domain().len();
    let delete = engine.db().num_edges() > 0 && rng.gen_range(0..10) < 5;
    if delete {
        let edges: Vec<Edge> = engine.db().edges().collect();
        let e = edges[rng.gen_range(0..edges.len())];
        (true, (e.from, e.label, e.to))
    } else {
        (
            false,
            (
                rng.gen_range(0..num_nodes),
                Symbol(rng.gen_range(0..domain_len) as u32),
                rng.gen_range(0..num_nodes),
            ),
        )
    }
}

#[test]
fn interactive_answers_match_full_materialization_across_mutations() {
    let domain = abc();
    let mut cases = 0usize;
    for seed in 0..8u64 {
        let nodes = 10 + (seed as usize % 3) * 4;
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: nodes,
                num_edges: nodes * 2,
            },
            seed ^ 0x9e37,
        );
        let mut engine = QueryEngine::new(db);
        let mut rng = StdRng::seed_from_u64(seed * 23 + 11);
        for step in 0..3 {
            let snapshot = engine.publish_snapshot();
            let csr = engine.db().csr_out();
            for query in QUERIES {
                let oracle = eval_csr(&csr, &compile(query, &domain));
                for s in 0..nodes {
                    // Pair probes first: a cached single-source drain for
                    // `s` would otherwise turn them into binary searches.
                    for t in 0..nodes {
                        assert_eq!(
                            snapshot.eval_pair_str(query, s, t),
                            oracle.contains(&(s, t)),
                            "seed {seed} step {step} query {query} pair ({s},{t})"
                        );
                    }
                    let reach = snapshot.eval_from_str(query, s, None);
                    assert!(reach.complete, "unlimited sweeps drain");
                    assert_eq!(
                        reach.targets,
                        oracle_targets(&oracle, s),
                        "seed {seed} step {step} query {query} source {s}"
                    );
                    cases += 1;
                }
            }
            let (delete, (from, label, to)) = random_mutation(&engine, &mut rng);
            if delete {
                engine.remove_edge(from, label, to);
            } else {
                engine.add_edge(from, label, to);
            }
        }
    }
    assert!(cases >= 200, "only {cases} interactive cases ran");
}

#[test]
fn pinned_snapshots_serve_their_revisions_interactive_answers() {
    let domain = abc();
    for seed in 0..6u64 {
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: 12,
                num_edges: 30,
            },
            seed ^ 0x51de,
        );
        let mut engine = QueryEngine::new(db);
        let mut rng = StdRng::seed_from_u64(seed * 37 + 5);

        // Pin a snapshot (and its from-scratch oracle) at every revision of
        // a mutation schedule.
        let queries = ["(a+b)*·c", "a·(b+c)*"];
        let mut pinned: Vec<(std::sync::Arc<engine::EngineSnapshot>, Vec<Answer>)> = Vec::new();
        for _ in 0..4 {
            let snapshot = engine.publish_snapshot();
            let csr = engine.db().csr_out();
            let oracles = queries
                .iter()
                .map(|q| eval_csr(&csr, &compile(q, &domain)))
                .collect();
            pinned.push((snapshot, oracles));
            let (delete, (from, label, to)) = random_mutation(&engine, &mut rng);
            if delete {
                engine.remove_edge(from, label, to);
            } else {
                engine.add_edge(from, label, to);
            }
        }

        // Every pinned snapshot still answers point lookups exactly as at
        // publish time — checked from concurrent reader threads while the
        // writer's database has long since diverged.
        std::thread::scope(|scope| {
            for (snapshot, oracles) in &pinned {
                scope.spawn(move || {
                    for (query, oracle) in queries.iter().zip(oracles) {
                        for s in 0..12 {
                            for t in 0..12 {
                                assert_eq!(
                                    snapshot.eval_pair_str(query, s, t),
                                    oracle.contains(&(s, t)),
                                    "seed {seed} rev {} query {query} pair ({s},{t})",
                                    snapshot.revision()
                                );
                            }
                            assert_eq!(
                                snapshot.eval_from_str(query, s, None).targets,
                                oracle_targets(oracle, s),
                                "seed {seed} rev {} query {query} source {s}",
                                snapshot.revision()
                            );
                        }
                    }
                });
            }
        });
        for (older, newer) in pinned.iter().zip(pinned.iter().skip(1)) {
            assert!(older.0.revision() < newer.0.revision());
        }
    }
}

#[test]
fn point_cache_hits_misses_and_extension_hits_are_observable() {
    let domain = abc();
    let db = random_graph(
        &domain,
        &RandomGraphConfig {
            num_nodes: 20,
            num_edges: 60,
        },
        7,
    );
    let mut engine = QueryEngine::new(db);
    let snapshot = engine.publish_snapshot();
    let query = "(a+b)*·c";

    // First single-source sweep: a fresh search that populates the cache.
    let before = engine.stats();
    let first = snapshot.eval_from_str(query, 0, None);
    assert!(first.complete);
    let after_fresh = engine.stats();
    assert_eq!(after_fresh.from_evals, before.from_evals + 1);
    assert_eq!(after_fresh.point_hits, before.point_hits);
    assert!(after_fresh.point_misses > before.point_misses);

    // Second identical sweep: served from the point cache, no fresh search.
    let second = snapshot.eval_from_str(query, 0, None);
    assert_eq!(second.targets, first.targets);
    assert!(second.complete);
    let after_hit = engine.stats();
    assert_eq!(after_hit.from_evals, after_fresh.from_evals);
    assert_eq!(after_hit.point_hits, after_fresh.point_hits + 1);

    // A top-k replay of the cached drain: `limit == |targets|` still knows
    // the set is complete, anything smaller reports truncation.
    if first.targets.len() > 1 {
        let exact = snapshot.eval_from_str(query, 0, Some(first.targets.len()));
        assert!(exact.complete);
        assert_eq!(exact.targets, first.targets);
        let truncated = snapshot.eval_from_str(query, 0, Some(1));
        assert!(!truncated.complete);
        assert_eq!(truncated.targets, first.targets[..1]);
    }

    // Pair lookups against the cached source become binary searches: no
    // bidirectional search runs.
    let before_pair = engine.stats();
    let connected = snapshot.eval_pair_str(query, 0, 3);
    assert_eq!(connected, first.targets.contains(&3));
    let after_pair = engine.stats();
    assert_eq!(after_pair.pair_evals, before_pair.pair_evals);
    assert_eq!(after_pair.point_hits, before_pair.point_hits + 1);

    // An uncached source pays for a fresh bidirectional search.
    snapshot.eval_pair_str(query, 1, 3);
    assert_eq!(engine.stats().pair_evals, after_pair.pair_evals + 1);

    // Once the *full* extension is materialized into the answer cache, point
    // lookups are served from it without touching the point cache.
    let full = snapshot.eval_str(query);
    let before_ext = engine.stats();
    let connected = snapshot.eval_pair_str(query, 2, 3);
    assert_eq!(connected, full.contains(&(2, 3)));
    let reach = snapshot.eval_from_str(query, 2, None);
    assert_eq!(reach.targets, oracle_targets(&full, 2));
    let after_ext = engine.stats();
    assert_eq!(after_ext.point_extension_hits, before_ext.point_extension_hits + 2);
    assert_eq!(after_ext.pair_evals, before_ext.pair_evals);
    assert_eq!(after_ext.from_evals, before_ext.from_evals);
}

#[test]
fn budget_interrupts_never_cache_partial_answers() {
    // Budget checks run every SWEEP_CHECK_INTERVAL (4096) pops, so the graph
    // must force more pops than one interval before draining: a 6000-edge
    // `a`-chain under `a*`.
    let domain = abc();
    let a = domain.symbol("a").expect("a in domain");
    let mut db = GraphDb::new(domain);
    let mut prev = db.add_node();
    for _ in 0..6000 {
        let next = db.add_node();
        db.add_edge(prev, a, next);
        prev = next;
    }
    let last = prev;
    let mut engine = QueryEngine::new(db);
    let snapshot = engine.publish_snapshot();
    let tight = QueryBudget::unlimited().max_visited(1);

    // Interrupted single-source sweep: the error surfaces and nothing is
    // cached — the retry below must run a fresh search, not hit the cache.
    let err = snapshot
        .eval_from_str_budgeted("a*", 0, None, &tight)
        .unwrap_err();
    assert!(err.is_budget_interrupt(), "got {err}");
    let before = engine.stats();
    assert!(before.budget_interrupted_evals >= 1);
    let full = snapshot.eval_from_str("a*", 0, None);
    let after = engine.stats();
    assert_eq!(after.from_evals, before.from_evals + 1, "retry searched afresh");
    assert_eq!(after.point_hits, before.point_hits, "no partial entry was served");
    assert!(full.complete);
    assert_eq!(full.targets, (0..=last).collect::<Vec<_>>());

    // Interrupted bidirectional search: same contract for pair verdicts.
    // Source 1 is not point-cached (only source 0's drain is resident), so
    // the budgeted call really searches instead of binary-searching a hit.
    let err = snapshot
        .eval_pair_str_budgeted("a*", 1, last, &tight)
        .unwrap_err();
    assert!(err.is_budget_interrupt(), "got {err}");
    assert!(snapshot.eval_pair_str("a*", 1, last));

    // Limit truncation is equally partial: a top-k sweep must not poison
    // the cache for the later unlimited sweep.
    let truncated = snapshot.eval_from_str("a·a*", 0, Some(5));
    assert!(!truncated.complete);
    assert_eq!(truncated.targets.len(), 5);
    let before = engine.stats();
    let full = snapshot.eval_from_str("a·a*", 0, None);
    let after = engine.stats();
    assert_eq!(after.from_evals, before.from_evals + 1, "truncated sweep was not cached");
    assert_eq!(after.point_hits, before.point_hits);
    assert!(full.complete);
    assert_eq!(full.targets, (1..=last).collect::<Vec<_>>());
}

#[test]
fn interactive_calls_never_run_the_full_materializer() {
    let domain = abc();
    let db = random_graph(
        &domain,
        &RandomGraphConfig {
            num_nodes: 30,
            num_edges: 90,
        },
        3,
    );
    let mut engine = QueryEngine::new(db);
    let snapshot = engine.publish_snapshot();
    for query in QUERIES {
        for s in 0..5 {
            snapshot.eval_pair_str(query, s, 29 - s);
            snapshot.eval_from_str(query, s, Some(3));
        }
    }
    let stats = engine.stats();
    assert!(stats.pair_evals > 0, "pair lookups ran fresh searches");
    assert!(stats.from_evals > 0, "source sweeps ran fresh searches");
    assert_eq!(stats.sequential_evals, 0, "no full materialization ran");
    assert_eq!(stats.parallel_evals, 0, "no full materialization ran");

    // The counters really are live: one ad-hoc full evaluation moves them.
    snapshot.eval_str("(a+b+c)*");
    let stats = engine.stats();
    assert!(stats.sequential_evals + stats.parallel_evals >= 1);
}

#[test]
fn forced_thread_configs_serve_identical_interactive_answers() {
    let domain = abc();
    let db = random_graph(
        &domain,
        &RandomGraphConfig {
            num_nodes: 16,
            num_edges: 48,
        },
        11,
    );
    let mk_engine = |threads: usize| {
        QueryEngine::with_config(
            db.clone(),
            EngineConfig {
                threads,
                parallel_threshold: 0,
                ..EngineConfig::default()
            },
        )
    };
    let mut sequential = mk_engine(1);
    let mut pooled = mk_engine(4);
    let seq_snap = sequential.publish_snapshot();
    let pool_snap = pooled.publish_snapshot();
    let csr = sequential.db().csr_out();
    for query in QUERIES {
        let oracle = eval_csr(&csr, &compile(query, &domain));
        for s in 0..16 {
            for t in 0..16 {
                let expected = oracle.contains(&(s, t));
                assert_eq!(seq_snap.eval_pair_str(query, s, t), expected);
                assert_eq!(pool_snap.eval_pair_str(query, s, t), expected);
            }
            let expected = oracle_targets(&oracle, s);
            assert_eq!(seq_snap.eval_from_str(query, s, None).targets, expected);
            assert_eq!(pool_snap.eval_from_str(query, s, None).targets, expected);
        }
    }
}

/// Regression test for the deletion gap: a complete single-source drain
/// cached before an edge deletion must never be served to a snapshot
/// published after it, while the pinned old-revision reader keeps hitting
/// its exact-revision entry; once the retention window advances past the
/// retired revision, `publish_snapshot` compacts the squatting entries out.
#[test]
fn deleted_edges_invalidate_point_cached_drains() {
    let domain = abc();
    let a = domain.symbol("a").expect("a in domain");
    let mut db = GraphDb::new(domain);
    let n0 = db.add_node();
    let n1 = db.add_node();
    let n2 = db.add_node();
    db.add_edge(n0, a, n1);
    db.add_edge(n1, a, n2);
    let mut engine = QueryEngine::with_config(
        db,
        EngineConfig {
            snapshot_keep_last: 2,
            ..EngineConfig::default()
        },
    );

    // Revision 0: cache the complete drain {0, 1, 2}.
    let old = engine.publish_snapshot();
    let before_deletion = old.eval_from_str("a*", n0, None);
    assert_eq!(before_deletion.targets, vec![n0, n1, n2]);
    assert!(before_deletion.complete);

    // Delete the chain's second hop and publish the shrunk revision.
    engine.remove_edge(n1, a, n2);
    let new = engine.publish_snapshot();

    // The pinned reader still hits its exact-revision entry...
    let stats = engine.stats();
    let replay = old.eval_from_str("a*", n0, None);
    assert_eq!(replay.targets, vec![n0, n1, n2]);
    let after_replay = engine.stats();
    assert_eq!(after_replay.point_hits, stats.point_hits + 1);
    assert_eq!(after_replay.from_evals, stats.from_evals);

    // ...while the new snapshot must miss it and search afresh: serving the
    // stale drain would resurrect the deleted path 0 ⇝ 2.
    let shrunk = new.eval_from_str("a*", n0, None);
    assert_eq!(shrunk.targets, vec![n0, n1]);
    assert!(shrunk.complete);
    let after_fresh = engine.stats();
    assert_eq!(after_fresh.from_evals, after_replay.from_evals + 1);
    assert_eq!(after_fresh.point_hits, after_replay.point_hits);
    assert!(after_fresh.point_misses > after_replay.point_misses);
    assert!(!new.eval_pair_str("a*", n0, n2), "deleted path must not connect");

    // The old reader's entry was displaced by the newer drain; it recomputes
    // (correctly) instead of clobbering the newer list.
    let recomputed = old.eval_from_str("a*", n0, None);
    assert_eq!(recomputed.targets, vec![n0, n1, n2]);
    assert_eq!(engine.stats().from_evals, after_fresh.from_evals + 1);

    // Two more mutations retire revisions 0 and 1; publishing then compacts
    // their squatting point-cache entries.
    assert_eq!(engine.stats().point_compactions, 0);
    engine.add_edge(n2, a, n0);
    engine.publish_snapshot();
    engine.add_edge(n2, a, n1);
    engine.publish_snapshot();
    assert!(
        engine.stats().point_compactions >= 1,
        "window advance must sweep retired point entries"
    );
}
