//! Per-query resource budgets for the serving layer.
//!
//! A [`QueryBudget`] is the engine-level face of [`graphdb::SweepBudget`]: it
//! carries a wall-clock deadline, a visited-pair cap, and a cooperative
//! cancel flag, and is threaded from a request handler down through the
//! parallel evaluator and the incremental repair jobs.  Budgets are checked
//! cooperatively every [`graphdb::SWEEP_CHECK_INTERVAL`] product pops, so an
//! unlimited budget costs nothing on the hot path (the evaluator picks the
//! check-free code path) and a tripped budget is honored within microseconds.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphdb::SweepBudget;

/// Resource limits for one engine operation (query evaluation or the repair
/// phase of a mutation).
///
/// The default budget is unlimited.  Limits compose; the first one hit wins
/// and maps to the matching [`crate::EngineError`] variant.
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    /// Wall-clock deadline; maps to [`crate::EngineError::DeadlineExceeded`].
    pub deadline: Option<Instant>,
    /// Cap on product `(node, state)` pairs visited across all worker
    /// threads; maps to [`crate::EngineError::VisitBudgetExceeded`].
    pub max_visited: Option<u64>,
    /// Cooperative cancel flag (set it from another thread, e.g. when the
    /// requesting client disconnects); maps to
    /// [`crate::EngineError::Cancelled`].
    pub cancel: Option<Arc<AtomicBool>>,
}

impl QueryBudget {
    /// A budget with no limits.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self {
            deadline: Some(Instant::now() + timeout),
            ..Self::default()
        }
    }

    /// Adds a visited-pair cap to this budget.
    pub fn max_visited(mut self, cap: u64) -> Self {
        self.max_visited = Some(cap);
        self
    }

    /// Attaches a cancel flag to this budget.
    pub fn cancelled_by(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Whether no limit is set — callers use this to take the un-budgeted
    /// fast path, which compiles all checks out of the BFS loop.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_visited.is_none() && self.cancel.is_none()
    }

    /// The graphdb-level budget this one lowers to.
    pub(crate) fn to_sweep(&self) -> SweepBudget {
        SweepBudget {
            deadline: self.deadline,
            max_visited: self.max_visited,
            cancel: self.cancel.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose_and_lower_to_sweep() {
        assert!(QueryBudget::unlimited().is_unlimited());
        let flag = Arc::new(AtomicBool::new(false));
        let budget = QueryBudget::with_timeout(Duration::from_secs(5))
            .max_visited(1_000)
            .cancelled_by(Arc::clone(&flag));
        assert!(!budget.is_unlimited());
        let sweep = budget.to_sweep();
        assert!(sweep.deadline.is_some());
        assert_eq!(sweep.max_visited, Some(1_000));
        assert!(sweep.cancel.is_some());
    }
}
