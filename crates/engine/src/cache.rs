//! The automaton compile cache.
//!
//! Freezing a query into a [`DenseNfa`] — grounding the regex to an NFA,
//! precomputing ε-closures, laying out CSR successor tables — is pure
//! per-query work that the one-shot library paths repeat on every call:
//! `rpq::materialize_views` froze each view per database, and every
//! `compare_on_database` froze the same rewriting automaton again.  The
//! cache interns frozen automata by [`Fingerprint`] so each distinct query
//! is compiled exactly once per engine, no matter how many revisions or
//! evaluation paths touch it.

use std::rc::Rc;

use automata::dense::FxHashMap;
use automata::{Alphabet, DenseDfa, DenseNfa, Dfa, Nfa};
use regexlang::Regex;

use crate::fingerprint::{fingerprint_dfa, fingerprint_nfa, fingerprint_regex, Fingerprint};

/// An interning cache of frozen [`DenseNfa`]s keyed by query fingerprint.
#[derive(Debug, Default)]
pub struct CompileCache {
    map: FxHashMap<Fingerprint, Rc<DenseNfa>>,
    hits: u64,
    misses: u64,
}

impl CompileCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles (or reuses) a regex over `domain`.
    ///
    /// # Panics
    /// Panics if the regex mentions a symbol outside `domain`, mirroring the
    /// label-oriented message of `graphdb`'s evaluators.
    pub fn compile_regex(&mut self, domain: &Alphabet, regex: &Regex) -> Rc<DenseNfa> {
        let fp = fingerprint_regex(domain, regex);
        if let Some(dense) = self.map.get(&fp) {
            self.hits += 1;
            return dense.clone();
        }
        self.misses += 1;
        let nfa = regexlang::thompson(regex, domain).unwrap_or_else(|unknown| {
            panic!(
                "query mentions `{}` which is not a label of the database domain",
                unknown.name
            )
        });
        let dense = Rc::new(DenseNfa::from_nfa(&nfa));
        self.map.insert(fp, dense.clone());
        dense
    }

    /// Freezes (or reuses) a deterministic automaton re-labeled over
    /// `target` — the path a maximal-rewriting automaton takes into
    /// Σ_E-evaluation.  Keyed by [`fingerprint_dfa`], so repeated
    /// evaluations of the same rewriting skip the dense construction
    /// entirely (no per-call tree NFA is built, frozen, or hashed).
    ///
    /// # Panics
    /// Panics when `target` is incompatible with the DFA's alphabet.
    pub fn compile_dfa(&mut self, target: &Alphabet, dfa: &Dfa) -> Rc<DenseNfa> {
        // Checked before the lookup: the fingerprint hashes `target` plus the
        // transition structure, so a hit must enforce compatibility too.
        dfa.alphabet()
            .check_compatible(target)
            .expect("re-labeling over an incompatible alphabet");
        let fp = fingerprint_dfa(target, dfa);
        if let Some(dense) = self.map.get(&fp) {
            self.hits += 1;
            return dense.clone();
        }
        self.misses += 1;
        let dense = Rc::new(
            DenseNfa::from_dense_dfa(&DenseDfa::from_dfa(dfa)).with_alphabet(target.clone()),
        );
        self.map.insert(fp, dense.clone());
        dense
    }

    /// Freezes (or reuses) an automaton-form query.
    pub fn compile_nfa(&mut self, nfa: &Nfa) -> Rc<DenseNfa> {
        let fp = fingerprint_nfa(nfa);
        if let Some(dense) = self.map.get(&fp) {
            self.hits += 1;
            return dense.clone();
        }
        self.misses += 1;
        let dense = Rc::new(DenseNfa::from_nfa(nfa));
        self.map.insert(fp, dense.clone());
        dense
    }

    /// Number of distinct compiled automata currently interned.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses (i.e. actual compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_compilation_is_interned() {
        let domain = Alphabet::from_chars(['a', 'b']).unwrap();
        let mut cache = CompileCache::new();
        let r = regexlang::parse("a·b*").unwrap();
        let d1 = cache.compile_regex(&domain, &r);
        let d2 = cache.compile_regex(&domain, &regexlang::parse("a·b*").unwrap());
        assert!(Rc::ptr_eq(&d1, &d2));
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn nfa_and_regex_entries_coexist() {
        let domain = Alphabet::from_chars(['a']).unwrap();
        let mut cache = CompileCache::new();
        let r = regexlang::parse("a*").unwrap();
        let dense_from_regex = cache.compile_regex(&domain, &r);
        let nfa = regexlang::thompson(&r, &domain).unwrap();
        let dense_from_nfa = cache.compile_nfa(&nfa);
        assert_eq!(cache.len(), 2); // different canonical forms, both cached
        let w = domain.word(&["a", "a"]).unwrap();
        assert_eq!(dense_from_regex.accepts(&w), dense_from_nfa.accepts(&w));
        assert!(Rc::ptr_eq(&dense_from_nfa, &cache.compile_nfa(&nfa)));
    }

    #[test]
    fn dfa_compilation_is_interned_by_structure_and_target() {
        let domain = Alphabet::from_names(["v1", "v2"]).unwrap();
        let mut cache = CompileCache::new();
        let dfa = automata::determinize(
            &regexlang::thompson(&regexlang::parse("v1·v2*").unwrap(), &domain).unwrap(),
        );
        let d1 = cache.compile_dfa(&domain, &dfa);
        let d2 = cache.compile_dfa(&domain, &dfa);
        assert!(Rc::ptr_eq(&d1, &d2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(d1.alphabet().is_compatible(&domain));
    }

    #[test]
    #[should_panic(expected = "incompatible alphabet")]
    fn compile_dfa_rejects_incompatible_alphabets_even_on_hits() {
        let domain = Alphabet::from_chars(['a']).unwrap();
        let mut cache = CompileCache::new();
        cache.compile_dfa(&domain, &automata::Dfa::universal(domain.clone()));
        // Same transition structure over a different alphabet: must panic
        // (and in particular must not be served from the cache).
        let other = Alphabet::from_chars(['x']).unwrap();
        cache.compile_dfa(&domain, &automata::Dfa::universal(other));
    }

    #[test]
    #[should_panic(expected = "not a label")]
    fn unknown_symbols_panic_like_the_evaluators() {
        let domain = Alphabet::from_chars(['a']).unwrap();
        CompileCache::new().compile_regex(&domain, &regexlang::parse("zz").unwrap());
    }
}
