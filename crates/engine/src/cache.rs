//! The automaton compile cache.
//!
//! Freezing a query into a [`DenseNfa`] — grounding the regex to an NFA,
//! precomputing ε-closures, laying out CSR successor tables — is pure
//! per-query work that the one-shot library paths repeat on every call:
//! `rpq::materialize_views` froze each view per database, and every
//! `compare_on_database` froze the same rewriting automaton again.  The
//! cache interns frozen automata by [`Fingerprint`] so each distinct query
//! is compiled exactly once per engine, no matter how many revisions or
//! evaluation paths touch it.
//!
//! The cache is **concurrent**: entries live behind sharded [`RwLock`]s
//! (shard chosen by fingerprint bits), so readers evaluating against
//! different [`crate::EngineSnapshot`]s hit the cache in parallel without
//! contending on one lock, and a compilation in one shard never blocks
//! lookups in another.  Hit/miss counters are atomics.  All methods take
//! `&self`; writer and snapshots share one cache through an `Arc`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use automata::dense::FxHashMap;
use automata::{Alphabet, DenseDfa, DenseNfa, Dfa, Nfa};
use regexlang::Regex;

use crate::error::EngineError;
use crate::fingerprint::{fingerprint_dfa, fingerprint_nfa, fingerprint_regex, Fingerprint};

/// Number of independently locked shards (a power of two; shard selection
/// uses the fingerprint's low bits, which FxHash mixes well).
const SHARDS: usize = 16;

/// A concurrent interning cache of frozen [`DenseNfa`]s keyed by query
/// fingerprint.  `Send + Sync`; shared between the engine writer and every
/// published snapshot.
#[derive(Debug)]
pub struct CompileCache {
    shards: Vec<RwLock<FxHashMap<Fingerprint, Arc<DenseNfa>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache {
            shards: (0..SHARDS).map(|_| RwLock::new(FxHashMap::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl CompileCache {
    // ordering: Relaxed throughout this impl — hit/miss tallies are
    // monotone statistics; the compiled automata themselves are published
    // through the shard RwLocks, never through these counters.

    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn shard(&self, fp: Fingerprint) -> &RwLock<FxHashMap<Fingerprint, Arc<DenseNfa>>> {
        &self.shards[(fp as usize) & (SHARDS - 1)]
    }

    /// Looks up `fp`, or compiles it with `build` and interns the result.
    /// Concurrent misses on the same fingerprint may both compile; the first
    /// insertion wins and the loser adopts it, so interning stays pointer-
    /// stable (`Arc::ptr_eq` holds across repeated compilations).
    fn get_or_insert(&self, fp: Fingerprint, build: impl FnOnce() -> DenseNfa) -> Arc<DenseNfa> {
        if let Some(dense) = self.shard(fp).read().expect("compile shard poisoned").get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return dense.clone();
        }
        // Compile outside any lock: freezing can be expensive and must not
        // block readers of the same shard.
        let dense = Arc::new(build());
        let mut shard = self.shard(fp).write().expect("compile shard poisoned");
        if let Some(existing) = shard.get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return existing.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard.insert(fp, dense.clone());
        dense
    }

    /// Compiles (or reuses) a regex over `domain`.
    ///
    /// # Panics
    /// Panics if the regex mentions a symbol outside `domain`, mirroring the
    /// label-oriented message of `graphdb`'s evaluators.
    pub fn compile_regex(&self, domain: &Alphabet, regex: &Regex) -> Arc<DenseNfa> {
        self.try_compile_regex(domain, regex)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`CompileCache::compile_regex`]: an out-of-domain
    /// symbol surfaces as [`EngineError::UnknownLabel`] instead of a panic.
    /// The cache hit path short-circuits before any grounding, so known-good
    /// queries never pay the validation again.
    pub fn try_compile_regex(
        &self,
        domain: &Alphabet,
        regex: &Regex,
    ) -> Result<Arc<DenseNfa>, EngineError> {
        let fp = fingerprint_regex(domain, regex);
        // A poisoned shard still holds a coherent map (inserts mutate it
        // only in complete steps under the guard); recover rather than
        // letting one panicked compiler thread wedge every query.  The
        // guard is a statement temporary: it is released before the miss
        // path re-enters the shard through `get_or_insert`.
        if let Some(dense) = self
            .shard(fp)
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&fp)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(dense.clone());
        }
        let nfa = regexlang::thompson(regex, domain).map_err(|unknown| {
            EngineError::UnknownLabel { label: unknown.name }
        })?;
        Ok(self.get_or_insert(fp, || DenseNfa::from_nfa(&nfa)))
    }

    /// Freezes (or reuses) a deterministic automaton re-labeled over
    /// `target` — the path a maximal-rewriting automaton takes into
    /// Σ_E-evaluation.  Keyed by [`fingerprint_dfa`], so repeated
    /// evaluations of the same rewriting skip the dense construction
    /// entirely (no per-call tree NFA is built, frozen, or hashed).
    ///
    /// # Panics
    /// Panics when `target` is incompatible with the DFA's alphabet.
    pub fn compile_dfa(&self, target: &Alphabet, dfa: &Dfa) -> Arc<DenseNfa> {
        self.try_compile_dfa(target, dfa)
            .unwrap_or_else(|e| panic!("re-labeling over an {e}"))
    }

    /// Fallible variant of [`CompileCache::compile_dfa`]: an incompatible
    /// `target` alphabet surfaces as [`EngineError::IncompatibleAlphabet`].
    pub fn try_compile_dfa(
        &self,
        target: &Alphabet,
        dfa: &Dfa,
    ) -> Result<Arc<DenseNfa>, EngineError> {
        // Checked before the lookup: the fingerprint hashes `target` plus the
        // transition structure, so a hit must enforce compatibility too.
        dfa.alphabet()
            .check_compatible(target)
            .map_err(|e| EngineError::IncompatibleAlphabet { message: e.to_string() })?;
        let fp = fingerprint_dfa(target, dfa);
        Ok(self.get_or_insert(fp, || {
            DenseNfa::from_dense_dfa(&DenseDfa::from_dfa(dfa)).with_alphabet(target.clone())
        }))
    }

    /// Freezes (or reuses) an automaton-form query.
    pub fn compile_nfa(&self, nfa: &Nfa) -> Arc<DenseNfa> {
        let fp = fingerprint_nfa(nfa);
        self.get_or_insert(fp, || DenseNfa::from_nfa(nfa))
    }

    /// Number of distinct compiled automata currently interned.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("compile shard poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (i.e. actual compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_compilation_is_interned() {
        let domain = Alphabet::from_chars(['a', 'b']).unwrap();
        let cache = CompileCache::new();
        let r = regexlang::parse("a·b*").unwrap();
        let d1 = cache.compile_regex(&domain, &r);
        let d2 = cache.compile_regex(&domain, &regexlang::parse("a·b*").unwrap());
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn nfa_and_regex_entries_coexist() {
        let domain = Alphabet::from_chars(['a']).unwrap();
        let cache = CompileCache::new();
        let r = regexlang::parse("a*").unwrap();
        let dense_from_regex = cache.compile_regex(&domain, &r);
        let nfa = regexlang::thompson(&r, &domain).unwrap();
        let dense_from_nfa = cache.compile_nfa(&nfa);
        assert_eq!(cache.len(), 2); // different canonical forms, both cached
        let w = domain.word(&["a", "a"]).unwrap();
        assert_eq!(dense_from_regex.accepts(&w), dense_from_nfa.accepts(&w));
        assert!(Arc::ptr_eq(&dense_from_nfa, &cache.compile_nfa(&nfa)));
    }

    #[test]
    fn dfa_compilation_is_interned_by_structure_and_target() {
        let domain = Alphabet::from_names(["v1", "v2"]).unwrap();
        let cache = CompileCache::new();
        let dfa = automata::determinize(
            &regexlang::thompson(&regexlang::parse("v1·v2*").unwrap(), &domain).unwrap(),
        );
        let d1 = cache.compile_dfa(&domain, &dfa);
        let d2 = cache.compile_dfa(&domain, &dfa);
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(d1.alphabet().is_compatible(&domain));
    }

    #[test]
    #[should_panic(expected = "incompatible alphabet")]
    fn compile_dfa_rejects_incompatible_alphabets_even_on_hits() {
        let domain = Alphabet::from_chars(['a']).unwrap();
        let cache = CompileCache::new();
        cache.compile_dfa(&domain, &automata::Dfa::universal(domain.clone()));
        // Same transition structure over a different alphabet: must panic
        // (and in particular must not be served from the cache).
        let other = Alphabet::from_chars(['x']).unwrap();
        cache.compile_dfa(&domain, &automata::Dfa::universal(other));
    }

    #[test]
    #[should_panic(expected = "not a label")]
    fn unknown_symbols_panic_like_the_evaluators() {
        let domain = Alphabet::from_chars(['a']).unwrap();
        CompileCache::new().compile_regex(&domain, &regexlang::parse("zz").unwrap());
    }

    #[test]
    fn concurrent_compilations_intern_to_one_automaton() {
        let domain = Alphabet::from_chars(['a', 'b', 'c']).unwrap();
        let cache = CompileCache::new();
        let queries: Vec<Regex> = (0..8)
            .map(|i| regexlang::parse(&format!("a{}", "·b".repeat(i))).unwrap())
            .collect();
        let compiled: Vec<Vec<Arc<DenseNfa>>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        queries
                            .iter()
                            .map(|q| cache.compile_regex(&domain, q))
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|w| w.join().expect("compiler thread panicked"))
                .collect()
        });
        // All threads ended up with the same interned allocations.
        assert_eq!(cache.len(), queries.len());
        for worker in &compiled[1..] {
            for (a, b) in compiled[0].iter().zip(worker) {
                assert!(Arc::ptr_eq(a, b));
            }
        }
        // Every (thread, query) lookup is accounted a hit or a miss, and each
        // distinct query compiled successfully at least once.
        assert_eq!(cache.hits() + cache.misses(), (4 * queries.len()) as u64);
        assert!(cache.misses() >= queries.len() as u64);
    }
}
