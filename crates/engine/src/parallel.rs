//! Scoped-thread parallel RPQ evaluation.
//!
//! [`graphdb::eval_csr`] runs one independent product-BFS per source node;
//! nothing is shared between sources except the read-only query automaton
//! and CSR adjacency.  That makes the source range embarrassingly parallel:
//! this module shards it across a hand-rolled work pool —
//! `std::thread::scope` workers pulling fixed-size chunks off an atomic
//! cursor (no external thread-pool crates exist in this environment) — with
//! one [`EvalScratch`] and one private answer buffer per worker, merged into
//! the final answer set after the scope joins.
//!
//! Chunked self-scheduling (rather than one static slice per worker) keeps
//! the pool balanced when source costs are skewed, e.g. when a hub node's
//! BFS touches most of the graph while leaf sources finish immediately.
//!
//! The evaluator only ever *reads* its inputs (`CsrAdjacency`, `DenseNfa`),
//! both of which are `Send + Sync`, so it is callable from any thread —
//! including concurrently from several [`crate::EngineSnapshot`] readers,
//! each of which may itself fan out onto this pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use automata::DenseNfa;
use graphdb::{
    eval_csr, eval_csr_range, eval_csr_range_budgeted, Answer, CsrAdjacency, EvalScratch, NodeId,
    SweepBudget, SweepInterrupt, SweepState,
};
use telemetry::{ParallelBreakdown, WorkerTiming};

fn as_us(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

/// Number of worker threads the hardware supports (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Evaluates `query` over `csr` with `threads` workers, sharding the
/// per-source product-BFS range.  Answer-identical to [`eval_csr`] (each
/// source's sweep is independent and workers only read shared state);
/// `threads <= 1` falls through to the sequential evaluator.
pub fn eval_csr_parallel(csr: &CsrAdjacency, query: &DenseNfa, threads: usize) -> Answer {
    let num_nodes = csr.num_nodes();
    let threads = threads.min(num_nodes.max(1));
    if threads <= 1 {
        return eval_csr(csr, query);
    }
    // Fail on the caller's thread (with the caller's message) rather than
    // poisoning a worker join.
    csr.domain()
        .check_compatible(query.alphabet())
        .expect("query automaton must be over the database domain");

    // Chunks small enough to self-balance, large enough that the atomic
    // cursor stays cold: aim for ~8 chunks per worker.
    let chunk = (num_nodes / (threads * 8)).clamp(1, 1024);
    let cursor = AtomicUsize::new(0);

    let buffers: Vec<Vec<(u32, u32)>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = EvalScratch::new(csr, query);
                    let mut pairs = Vec::new();
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= num_nodes {
                            break;
                        }
                        let hi = (lo + chunk).min(num_nodes);
                        eval_csr_range(csr, query, lo as u32..hi as u32, &mut scratch, &mut pairs);
                    }
                    pairs
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("evaluation worker panicked"))
            .collect()
    });

    buffers
        .into_iter()
        .flatten()
        .map(|(x, y)| (x as NodeId, y as NodeId))
        .collect()
}

/// Budgeted variant of [`eval_csr_parallel`]: every worker charges pops to
/// the shared `progress`, and the first tripped limit makes all workers stop
/// at their next chunk boundary (or mid-chunk at the next cooperative
/// check).  On interrupt the partial answers are discarded and the interrupt
/// cause is returned; `progress.visited()` carries the partial-work count.
pub fn eval_csr_parallel_budgeted(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    threads: usize,
    budget: &SweepBudget,
    progress: &SweepState,
) -> Result<Answer, SweepInterrupt> {
    let num_nodes = csr.num_nodes();
    let threads = threads.min(num_nodes.max(1));
    if threads <= 1 {
        // Sequential path: one worker, one scratch, the whole source range.
        csr.domain()
            .check_compatible(query.alphabet())
            .expect("query automaton must be over the database domain");
        let mut scratch = EvalScratch::new(csr, query);
        let mut pairs = Vec::new();
        eval_csr_range_budgeted(
            csr,
            query,
            0..num_nodes as u32,
            &mut scratch,
            &mut pairs,
            budget,
            progress,
        )?;
        return Ok(pairs
            .into_iter()
            .map(|(x, y)| (x as NodeId, y as NodeId))
            .collect());
    }
    csr.domain()
        .check_compatible(query.alphabet())
        .expect("query automaton must be over the database domain");

    let chunk = (num_nodes / (threads * 8)).clamp(1, 1024);
    let cursor = AtomicUsize::new(0);

    let buffers: Vec<Result<Vec<(u32, u32)>, SweepInterrupt>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = EvalScratch::new(csr, query);
                    let mut pairs = Vec::new();
                    loop {
                        // A trip in any worker stops the others at their next
                        // chunk boundary.
                        if let Some(why) = progress.interrupt() {
                            return Err(why);
                        }
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= num_nodes {
                            break;
                        }
                        let hi = (lo + chunk).min(num_nodes);
                        eval_csr_range_budgeted(
                            csr,
                            query,
                            lo as u32..hi as u32,
                            &mut scratch,
                            &mut pairs,
                            budget,
                            progress,
                        )?;
                    }
                    Ok(pairs)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("evaluation worker panicked"))
            .collect()
    });

    let mut answer = Answer::new();
    for buffer in buffers {
        answer.extend(buffer?.into_iter().map(|(x, y)| (x as NodeId, y as NodeId)));
    }
    Ok(answer)
}

/// [`eval_csr_parallel`] with per-worker timing: returns, alongside the
/// answer, how each worker's wall time split between claiming chunks off the
/// shared cursor and the product-BFS sweep proper, plus the single-threaded
/// merge cost.  Timing happens only at chunk boundaries (two `Instant` reads
/// per chunk, never per pop), so the breakdown variant stays within noise of
/// the plain one; the hot path itself is untouched.
pub fn eval_csr_parallel_breakdown(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    threads: usize,
) -> (Answer, ParallelBreakdown) {
    let num_nodes = csr.num_nodes();
    let threads = threads.min(num_nodes.max(1));
    csr.domain()
        .check_compatible(query.alphabet())
        .expect("query automaton must be over the database domain");
    if threads <= 1 {
        let sweep_start = Instant::now();
        let mut scratch = EvalScratch::new(csr, query);
        let mut pairs = Vec::new();
        eval_csr_range(csr, query, 0..num_nodes as u32, &mut scratch, &mut pairs);
        let merge_start = Instant::now();
        let answer: Answer = pairs
            .into_iter()
            .map(|(x, y)| (x as NodeId, y as NodeId))
            .collect();
        let breakdown = ParallelBreakdown {
            workers: vec![WorkerTiming {
                worker: 0,
                chunks: 1,
                acquire_us: 0,
                sweep_us: as_us(merge_start.duration_since(sweep_start)),
            }],
            merge_us: as_us(merge_start.elapsed()),
        };
        return (answer, breakdown);
    }

    let chunk = (num_nodes / (threads * 8)).clamp(1, 1024);
    let cursor = AtomicUsize::new(0);

    let results: Vec<(Vec<(u32, u32)>, WorkerTiming)> = std::thread::scope(|scope| {
        let cursor = &cursor;
        let workers: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    let mut scratch = EvalScratch::new(csr, query);
                    let mut pairs = Vec::new();
                    let mut timing = WorkerTiming {
                        worker: worker as u32,
                        ..WorkerTiming::default()
                    };
                    let mut acquire = Duration::ZERO;
                    let mut sweep = Duration::ZERO;
                    loop {
                        let acquire_start = Instant::now();
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        let sweep_start = Instant::now();
                        acquire += sweep_start.duration_since(acquire_start);
                        if lo >= num_nodes {
                            break;
                        }
                        let hi = (lo + chunk).min(num_nodes);
                        timing.chunks += 1;
                        eval_csr_range(csr, query, lo as u32..hi as u32, &mut scratch, &mut pairs);
                        sweep += sweep_start.elapsed();
                    }
                    timing.acquire_us = as_us(acquire);
                    timing.sweep_us = as_us(sweep);
                    (pairs, timing)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("evaluation worker panicked"))
            .collect()
    });

    let merge_start = Instant::now();
    let mut workers = Vec::with_capacity(results.len());
    let mut answer = Answer::new();
    for (pairs, timing) in results {
        workers.push(timing);
        answer.extend(pairs.into_iter().map(|(x, y)| (x as NodeId, y as NodeId)));
    }
    let breakdown = ParallelBreakdown {
        workers,
        merge_us: as_us(merge_start.elapsed()),
    };
    (answer, breakdown)
}

/// Budgeted variant of [`eval_csr_parallel_breakdown`]: the budgeted sweep
/// with the same per-worker chunk-acquire / sweep / merge attribution.  On
/// interrupt the partial breakdown is discarded with the partial answers.
pub fn eval_csr_parallel_budgeted_breakdown(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    threads: usize,
    budget: &SweepBudget,
    progress: &SweepState,
) -> Result<(Answer, ParallelBreakdown), SweepInterrupt> {
    let num_nodes = csr.num_nodes();
    let threads = threads.min(num_nodes.max(1));
    csr.domain()
        .check_compatible(query.alphabet())
        .expect("query automaton must be over the database domain");
    if threads <= 1 {
        let sweep_start = Instant::now();
        let mut scratch = EvalScratch::new(csr, query);
        let mut pairs = Vec::new();
        eval_csr_range_budgeted(
            csr,
            query,
            0..num_nodes as u32,
            &mut scratch,
            &mut pairs,
            budget,
            progress,
        )?;
        let merge_start = Instant::now();
        let answer: Answer = pairs
            .into_iter()
            .map(|(x, y)| (x as NodeId, y as NodeId))
            .collect();
        let breakdown = ParallelBreakdown {
            workers: vec![WorkerTiming {
                worker: 0,
                chunks: 1,
                acquire_us: 0,
                sweep_us: as_us(merge_start.duration_since(sweep_start)),
            }],
            merge_us: as_us(merge_start.elapsed()),
        };
        return Ok((answer, breakdown));
    }

    let chunk = (num_nodes / (threads * 8)).clamp(1, 1024);
    let cursor = AtomicUsize::new(0);

    let results: Vec<Result<(Vec<(u32, u32)>, WorkerTiming), SweepInterrupt>> =
        std::thread::scope(|scope| {
            let cursor = &cursor;
            let workers: Vec<_> = (0..threads)
                .map(|worker| {
                    scope.spawn(move || {
                        let mut scratch = EvalScratch::new(csr, query);
                        let mut pairs = Vec::new();
                        let mut timing = WorkerTiming {
                            worker: worker as u32,
                            ..WorkerTiming::default()
                        };
                        let mut acquire = Duration::ZERO;
                        let mut sweep = Duration::ZERO;
                        loop {
                            if let Some(why) = progress.interrupt() {
                                return Err(why);
                            }
                            let acquire_start = Instant::now();
                            let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                            let sweep_start = Instant::now();
                            acquire += sweep_start.duration_since(acquire_start);
                            if lo >= num_nodes {
                                break;
                            }
                            let hi = (lo + chunk).min(num_nodes);
                            timing.chunks += 1;
                            eval_csr_range_budgeted(
                                csr,
                                query,
                                lo as u32..hi as u32,
                                &mut scratch,
                                &mut pairs,
                                budget,
                                progress,
                            )?;
                            sweep += sweep_start.elapsed();
                        }
                        timing.acquire_us = as_us(acquire);
                        timing.sweep_us = as_us(sweep);
                        Ok((pairs, timing))
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("evaluation worker panicked"))
                .collect()
        });

    let merge_start = Instant::now();
    let mut workers = Vec::with_capacity(results.len());
    let mut answer = Answer::new();
    for result in results {
        let (pairs, timing) = result?;
        workers.push(timing);
        answer.extend(pairs.into_iter().map(|(x, y)| (x as NodeId, y as NodeId)));
    }
    let breakdown = ParallelBreakdown {
        workers,
        merge_us: as_us(merge_start.elapsed()),
    };
    Ok((answer, breakdown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Alphabet;
    use graphdb::GraphDb;

    fn sample_db() -> GraphDb {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
        db.add_edge_named("n0", "a", "n1");
        db.add_edge_named("n1", "b", "n2");
        db.add_edge_named("n2", "a", "n1");
        db.add_edge_named("n1", "c", "n1");
        db.add_edge_named("n2", "c", "n3");
        db
    }

    fn dense(db: &GraphDb, src: &str) -> DenseNfa {
        let nfa = regexlang::thompson(&regexlang::parse(src).unwrap(), db.domain()).unwrap();
        DenseNfa::from_nfa(&nfa)
    }

    #[test]
    fn parallel_matches_sequential_on_small_graphs() {
        let db = sample_db();
        let csr = db.csr_out();
        for q in ["a·(b·a+c)*", "c*", "ε", "∅", "a+b·c?"] {
            let query = dense(&db, q);
            let seq = eval_csr(&csr, &query);
            for threads in [1, 2, 3, 8, 64] {
                assert_eq!(seq, eval_csr_parallel(&csr, &query, threads), "{q} x{threads}");
            }
        }
    }

    #[test]
    fn zero_threads_degrades_to_sequential() {
        let db = sample_db();
        let csr = db.csr_out();
        let query = dense(&db, "a·b");
        assert_eq!(eval_csr(&csr, &query), eval_csr_parallel(&csr, &query, 0));
    }

    #[test]
    fn empty_databases_are_handled() {
        let db = GraphDb::new(Alphabet::from_chars(['a']).unwrap());
        let csr = db.csr_out();
        let query = dense(&db, "a*");
        assert!(eval_csr_parallel(&csr, &query, 4).is_empty());
    }

    #[test]
    fn breakdown_variant_is_answer_identical_and_attributes_workers() {
        let db = sample_db();
        let csr = db.csr_out();
        for q in ["a·(b·a+c)*", "c*", "a+b·c?"] {
            let query = dense(&db, q);
            let seq = eval_csr(&csr, &query);
            for threads in [1, 3] {
                let (answer, breakdown) = eval_csr_parallel_breakdown(&csr, &query, threads);
                assert_eq!(seq, answer, "{q} x{threads}");
                assert!(!breakdown.workers.is_empty());
                assert!(breakdown.workers.len() <= threads.max(1));
                let chunks: u64 = breakdown.workers.iter().map(|w| w.chunks).sum();
                assert!(chunks >= 1, "{q} x{threads}: no chunks claimed");
            }
        }
    }

    #[test]
    fn budgeted_breakdown_matches_and_respects_interrupts() {
        let db = sample_db();
        let csr = db.csr_out();
        let query = dense(&db, "a·(b·a+c)*");
        let progress = SweepState::new();
        let (answer, _) = eval_csr_parallel_budgeted_breakdown(
            &csr,
            &query,
            4,
            &SweepBudget::unlimited(),
            &progress,
        )
        .expect("unlimited budget never interrupts");
        assert_eq!(answer, eval_csr(&csr, &query));

        let strict = SweepBudget {
            max_visited: Some(0),
            ..SweepBudget::unlimited()
        };
        let tripped = SweepState::new();
        let err = eval_csr_parallel_budgeted_breakdown(&csr, &query, 4, &strict, &tripped)
            .unwrap_err();
        assert!(matches!(err, SweepInterrupt::VisitLimit));
    }

    #[test]
    #[should_panic(expected = "must be over the database domain")]
    fn incompatible_alphabets_panic_on_the_caller_thread() {
        let db = sample_db();
        let other = GraphDb::new(Alphabet::from_chars(['x', 'y']).unwrap());
        let query = dense(&other, "x·y");
        let _ = eval_csr_parallel(&db.csr_out(), &query, 4);
    }
}
