//! Scoped-thread parallel RPQ evaluation with a work-stealing scheduler.
//!
//! [`graphdb::eval_csr`] runs one independent product-BFS per source node;
//! nothing is shared between sources except the read-only query automaton
//! and CSR adjacency.  That makes the source range embarrassingly parallel,
//! but the seed's pool (fixed-size chunks off one atomic cursor, merged into
//! a `BTreeSet`) did not scale: `parallel_breakdown` measured ~3× the
//! sequential sweep work spread across workers plus a ~250 ms
//! single-threaded merge at |V|=2000.  This module is the rebuilt read path
//! (no external thread-pool crates exist in this environment, so the pool is
//! still hand-rolled on `std::thread::scope`):
//!
//! * **Degree-weighted chunks** — the source range is pre-split into chunks
//!   of roughly equal *frontier mass* (node count + out-degree sum, the
//!   cheap static proxy for sweep cost), so a hub-heavy span of a power-law
//!   graph becomes many small chunks instead of one fat one.
//! * **Work stealing** — each worker starts with a contiguous block of
//!   chunks in its own deque (preserving source locality) and pops from the
//!   front; a worker that runs dry steals from the *back* of a victim's
//!   deque.  Steal and chunk counts are reported per worker through
//!   [`WorkerTiming`].
//! * **Sorted runs, k-way merge** — each worker sorts its private
//!   `Vec<(u32, u32)>` run in parallel before joining; the runs are disjoint
//!   by construction (every source belongs to exactly one chunk), so the
//!   final merge is a duplicate-free k-way merge into the sorted-vector
//!   [`Answer`] ([`graphdb::SortedPairs`]) — no re-hashing, no tree
//!   insertion.
//!
//! The domain-compatibility check runs **once** per evaluation, on the
//! caller's thread (with the caller's message), before any worker spawns —
//! including on the `threads <= 1` sequential path, which previously
//! re-validated inside `eval_csr`; the chunk sweeps use the `_prechecked`
//! range evaluators.
//!
//! The evaluator only ever *reads* its inputs (`CsrAdjacency`, `DenseNfa`),
//! both of which are `Send + Sync`, so it is callable from any thread —
//! including concurrently from several [`crate::EngineSnapshot`] readers,
//! each of which may itself fan out onto this pool.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use automata::DenseNfa;
use graphdb::{
    eval_csr_range_budgeted_prechecked, eval_csr_range_prechecked, Answer, CsrAdjacency,
    EvalScratch, SweepBudget, SweepInterrupt, SweepState,
};
use telemetry::{ParallelBreakdown, WorkerTiming};

fn as_us(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

/// Number of worker threads the hardware supports (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Chunks each worker's deque is seeded with.  Enough granularity that
/// stealing can rebalance a skewed tail, few enough that deque traffic is
/// negligible against even the smallest sweeps.
const CHUNKS_PER_WORKER: usize = 16;

/// Splits the source range into chunks of roughly equal frontier mass,
/// weighting node `v` as `1 + out_degree(v)`.  Uniform graphs get uniform
/// chunks; on a power-law graph a hub's span shrinks to a few nodes so no
/// single chunk serializes the tail of the pool.
fn weighted_chunks(csr: &CsrAdjacency, threads: usize) -> Vec<Range<u32>> {
    let num_nodes = csr.num_nodes() as u32;
    let total_weight = (csr.num_nodes() + csr.num_edges()) as u64;
    let target = (total_weight / (threads * CHUNKS_PER_WORKER) as u64).max(1);
    let mut chunks = Vec::with_capacity(threads * CHUNKS_PER_WORKER + 1);
    let (mut lo, mut weight) = (0u32, 0u64);
    for node in 0..num_nodes {
        weight += 1 + csr.out_degree(node) as u64;
        if weight >= target {
            chunks.push(lo..node + 1);
            lo = node + 1;
            weight = 0;
        }
    }
    if lo < num_nodes {
        chunks.push(lo..num_nodes);
    }
    chunks
}

/// Per-worker chunk deques with back-stealing.
///
/// All chunks are placed before any worker starts and none are produced
/// during the run, so termination is trivial: a full scan finding every
/// deque empty means every chunk is owned by some worker already.
struct StealQueues {
    deques: Vec<Mutex<VecDeque<Range<u32>>>>,
}

impl StealQueues {
    /// Distributes `chunks` contiguously across `threads` deques, so each
    /// worker's initial block covers adjacent sources (cache locality) and
    /// steals take from the far end of a victim's block.
    fn new(chunks: Vec<Range<u32>>, threads: usize) -> Self {
        let per = chunks.len().div_ceil(threads).max(1);
        let mut deques: Vec<VecDeque<Range<u32>>> =
            (0..threads).map(|_| VecDeque::new()).collect();
        for (i, chunk) in chunks.into_iter().enumerate() {
            deques[(i / per).min(threads - 1)].push_back(chunk);
        }
        StealQueues {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// The next chunk for `worker`: front of its own deque, else the back of
    /// the first non-empty victim.  Returns the chunk and whether it was
    /// stolen; `None` means the pool is drained.
    fn next(&self, worker: usize) -> Option<(Range<u32>, bool)> {
        let pop = |victim: usize, back: bool| {
            let mut deque = self.deques[victim].lock().unwrap_or_else(|e| e.into_inner());
            if back {
                deque.pop_back()
            } else {
                deque.pop_front()
            }
        };
        if let Some(chunk) = pop(worker, false) {
            return Some((chunk, false));
        }
        let n = self.deques.len();
        for hop in 1..n {
            if let Some(chunk) = pop((worker + hop) % n, true) {
                return Some((chunk, true));
            }
        }
        None
    }
}

/// The shared pool core behind all four public entry points.  `BUDGETED`
/// compiles the budget checks out of the un-budgeted path entirely.
///
/// Always returns the breakdown — on interrupt the partial answers are
/// discarded but the per-worker counters (chunks, steals, visited, timings)
/// survive, so callers can report *where* the partial work happened.
fn run_pool<const BUDGETED: bool>(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    threads: usize,
    budget: &SweepBudget,
    progress: &SweepState,
) -> (Result<Answer, SweepInterrupt>, ParallelBreakdown) {
    let num_nodes = csr.num_nodes();
    let threads = threads.min(num_nodes.max(1)).max(1);
    // The single validation of the whole evaluation: on the caller's thread,
    // with the caller-facing message, before any worker spawns.
    csr.domain()
        .check_compatible(query.alphabet())
        .expect("query automaton must be over the database domain");

    if threads <= 1 {
        let sweep_start = Instant::now();
        let mut scratch = EvalScratch::new(csr, query);
        let mut pairs = Vec::new();
        let sources = 0..num_nodes as u32;
        let mut timing = WorkerTiming {
            worker: 0,
            chunks: 1,
            ..WorkerTiming::default()
        };
        let swept: Result<(), SweepInterrupt> = if BUDGETED {
            eval_csr_range_budgeted_prechecked(
                csr, query, sources, &mut scratch, &mut pairs, budget, progress,
            )
            .map(|charged| timing.visited = charged)
        } else {
            eval_csr_range_prechecked(csr, query, sources, &mut scratch, &mut pairs);
            Ok(())
        };
        if let Err(why) = swept {
            timing.sweep_us = as_us(sweep_start.elapsed());
            let breakdown = ParallelBreakdown {
                workers: vec![timing],
                merge_us: 0,
            };
            return (Err(why), breakdown);
        }
        pairs.sort_unstable();
        let merge_start = Instant::now();
        timing.sweep_us = as_us(merge_start.duration_since(sweep_start));
        let answer = Answer::from_sorted_runs(vec![pairs]);
        let breakdown = ParallelBreakdown {
            workers: vec![timing],
            merge_us: as_us(merge_start.elapsed()),
        };
        return (Ok(answer), breakdown);
    }

    let queues = StealQueues::new(weighted_chunks(csr, threads), threads);
    type WorkerOutcome = (Result<Vec<(u32, u32)>, SweepInterrupt>, WorkerTiming);
    let results: Vec<WorkerOutcome> =
        std::thread::scope(|scope| {
            let queues = &queues;
            let workers: Vec<_> = (0..threads)
                .map(|worker| {
                    scope.spawn(move || {
                        let mut scratch = EvalScratch::new(csr, query);
                        let mut pairs: Vec<(u32, u32)> = Vec::new();
                        let mut timing = WorkerTiming {
                            worker: worker as u32,
                            ..WorkerTiming::default()
                        };
                        let mut acquire = Duration::ZERO;
                        let mut sweep = Duration::ZERO;
                        let mut failed: Option<SweepInterrupt> = None;
                        loop {
                            if BUDGETED {
                                // A trip in any worker stops the others at
                                // their next chunk boundary.
                                if let Some(why) = progress.interrupt() {
                                    failed = Some(why);
                                    break;
                                }
                            }
                            let acquire_start = Instant::now();
                            let job = queues.next(worker);
                            let sweep_start = Instant::now();
                            acquire += sweep_start.duration_since(acquire_start);
                            let Some((chunk, stolen)) = job else { break };
                            timing.chunks += 1;
                            timing.steals += stolen as u64;
                            if BUDGETED {
                                match eval_csr_range_budgeted_prechecked(
                                    csr, query, chunk, &mut scratch, &mut pairs, budget,
                                    progress,
                                ) {
                                    Ok(charged) => timing.visited += charged,
                                    Err(why) => {
                                        failed = Some(why);
                                        break;
                                    }
                                }
                            } else {
                                eval_csr_range_prechecked(
                                    csr, query, chunk, &mut scratch, &mut pairs,
                                );
                            }
                            sweep += sweep_start.elapsed();
                        }
                        if failed.is_none() {
                            // Sort the private run while sibling workers are
                            // still sweeping: the post-join merge then only
                            // k-way-merges pre-sorted, disjoint runs.
                            let sort_start = Instant::now();
                            pairs.sort_unstable();
                            sweep += sort_start.elapsed();
                        }
                        timing.acquire_us = as_us(acquire);
                        timing.sweep_us = as_us(sweep);
                        match failed {
                            Some(why) => (Err(why), timing),
                            None => (Ok(pairs), timing),
                        }
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("evaluation worker panicked"))
                .collect()
        });

    let mut workers = Vec::with_capacity(results.len());
    let mut runs = Vec::with_capacity(results.len());
    let mut failed: Option<SweepInterrupt> = None;
    for (run, timing) in results {
        workers.push(timing);
        match run {
            Ok(pairs) => runs.push(pairs),
            Err(why) => failed = failed.or(Some(why)),
        }
    }
    if let Some(why) = failed {
        let breakdown = ParallelBreakdown {
            workers,
            merge_us: 0,
        };
        return (Err(why), breakdown);
    }
    let merge_start = Instant::now();
    let answer = Answer::from_sorted_runs(runs);
    let breakdown = ParallelBreakdown {
        workers,
        merge_us: as_us(merge_start.elapsed()),
    };
    (Ok(answer), breakdown)
}

/// Evaluates `query` over `csr` with `threads` workers, sharding the
/// per-source product-BFS range over the work-stealing pool.
/// Answer-identical to [`graphdb::eval_csr`] (each source's sweep is
/// independent and workers only read shared state); `threads <= 1` runs the
/// same pipeline on the caller's thread without spawning.
pub fn eval_csr_parallel(csr: &CsrAdjacency, query: &DenseNfa, threads: usize) -> Answer {
    eval_csr_parallel_breakdown(csr, query, threads).0
}

/// Budgeted variant of [`eval_csr_parallel`]: every worker charges pops to
/// the shared `progress`, and the first tripped limit makes all workers stop
/// at their next chunk boundary (or mid-chunk at the next cooperative
/// check).  On interrupt the partial answers are discarded and the interrupt
/// cause is returned; `progress.visited()` carries the aggregate
/// partial-work count (use [`eval_csr_parallel_budgeted_breakdown`] for the
/// per-worker split).
pub fn eval_csr_parallel_budgeted(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    threads: usize,
    budget: &SweepBudget,
    progress: &SweepState,
) -> Result<Answer, SweepInterrupt> {
    run_pool::<true>(csr, query, threads, budget, progress).0
}

/// [`eval_csr_parallel`] with per-worker attribution: how each worker's wall
/// time split between claiming chunks and sweeping, how many chunks it
/// processed and stole, plus the post-join k-way merge cost.  Timing happens
/// only at chunk boundaries (two `Instant` reads per chunk, never per pop),
/// so the breakdown stays within noise of the plain variant.
pub fn eval_csr_parallel_breakdown(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    threads: usize,
) -> (Answer, ParallelBreakdown) {
    let unlimited = SweepBudget::unlimited();
    let progress = SweepState::new();
    let (result, breakdown) = run_pool::<false>(csr, query, threads, &unlimited, &progress);
    (
        result.expect("unlimited sweeps cannot be interrupted"),
        breakdown,
    )
}

/// Budgeted variant of [`eval_csr_parallel_breakdown`].  The breakdown is
/// returned *alongside* the result — even on interrupt — so callers see the
/// per-worker partial-work counts ([`WorkerTiming::visited`], accurate to
/// the budget check interval), not just the shared aggregate in `progress`.
pub fn eval_csr_parallel_budgeted_breakdown(
    csr: &CsrAdjacency,
    query: &DenseNfa,
    threads: usize,
    budget: &SweepBudget,
    progress: &SweepState,
) -> (Result<Answer, SweepInterrupt>, ParallelBreakdown) {
    run_pool::<true>(csr, query, threads, budget, progress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Alphabet;
    use graphdb::{eval_csr, power_law_graph, GraphDb, PowerLawGraphConfig};

    fn sample_db() -> GraphDb {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
        db.add_edge_named("n0", "a", "n1");
        db.add_edge_named("n1", "b", "n2");
        db.add_edge_named("n2", "a", "n1");
        db.add_edge_named("n1", "c", "n1");
        db.add_edge_named("n2", "c", "n3");
        db
    }

    fn dense(db: &GraphDb, src: &str) -> DenseNfa {
        let nfa = regexlang::thompson(&regexlang::parse(src).unwrap(), db.domain()).unwrap();
        DenseNfa::from_nfa(&nfa)
    }

    #[test]
    fn parallel_matches_sequential_on_small_graphs() {
        let db = sample_db();
        let csr = db.csr_out();
        for q in ["a·(b·a+c)*", "c*", "ε", "∅", "a+b·c?"] {
            let query = dense(&db, q);
            let seq = eval_csr(&csr, &query);
            for threads in [1, 2, 3, 8, 64] {
                assert_eq!(seq, eval_csr_parallel(&csr, &query, threads), "{q} x{threads}");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_a_hubby_graph() {
        // Power-law degree skew is exactly what the degree-weighted chunks +
        // stealing are for; the answer must still be bit-identical.
        let db = power_law_graph(
            &Alphabet::from_chars(['a', 'b', 'c']).unwrap(),
            &PowerLawGraphConfig {
                num_nodes: 300,
                num_edges: 1200,
                label_exponent: 1.0,
            },
            17,
        );
        let csr = db.csr_out();
        for q in ["a·b", "(a+b)·c?", "c*·a"] {
            let query = dense(&db, q);
            let seq = eval_csr(&csr, &query);
            for threads in [2, 4, 7] {
                assert_eq!(seq, eval_csr_parallel(&csr, &query, threads), "{q} x{threads}");
            }
        }
    }

    #[test]
    fn zero_threads_degrades_to_sequential() {
        let db = sample_db();
        let csr = db.csr_out();
        let query = dense(&db, "a·b");
        assert_eq!(eval_csr(&csr, &query), eval_csr_parallel(&csr, &query, 0));
    }

    #[test]
    fn empty_databases_are_handled() {
        let db = GraphDb::new(Alphabet::from_chars(['a']).unwrap());
        let csr = db.csr_out();
        let query = dense(&db, "a*");
        assert!(eval_csr_parallel(&csr, &query, 4).is_empty());
    }

    #[test]
    fn weighted_chunks_cover_the_range_in_order() {
        let db = power_law_graph(
            &Alphabet::from_chars(['a']).unwrap(),
            &PowerLawGraphConfig {
                num_nodes: 500,
                num_edges: 3000,
                label_exponent: 0.0,
            },
            3,
        );
        let csr = db.csr_out();
        for threads in [1, 2, 4] {
            let chunks = weighted_chunks(&csr, threads);
            assert!(!chunks.is_empty());
            let mut expect = 0u32;
            for chunk in &chunks {
                assert_eq!(chunk.start, expect, "chunks must tile the range");
                assert!(chunk.end > chunk.start);
                expect = chunk.end;
            }
            assert_eq!(expect as usize, csr.num_nodes());
        }
    }

    #[test]
    fn breakdown_variant_is_answer_identical_and_attributes_workers() {
        let db = sample_db();
        let csr = db.csr_out();
        for q in ["a·(b·a+c)*", "c*", "a+b·c?"] {
            let query = dense(&db, q);
            let seq = eval_csr(&csr, &query);
            for threads in [1, 3] {
                let (answer, breakdown) = eval_csr_parallel_breakdown(&csr, &query, threads);
                assert_eq!(seq, answer, "{q} x{threads}");
                assert!(!breakdown.workers.is_empty());
                assert!(breakdown.workers.len() <= threads.max(1));
                assert!(breakdown.total_chunks() >= 1, "{q} x{threads}: no chunks claimed");
                // Every chunk is processed exactly once across the pool.
                if threads > 1 {
                    let placed = weighted_chunks(&csr, threads.min(csr.num_nodes())).len() as u64;
                    assert_eq!(breakdown.total_chunks(), placed, "{q} x{threads}");
                }
            }
        }
    }

    #[test]
    fn starved_workers_steal_from_their_neighbors() {
        // 2 nodes, 2 workers: each deque gets one single-source chunk (the
        // weighting can't split further), but 64 workers against 5 nodes
        // leaves most deques empty, so any work the empty-deque workers do
        // must show up as steals... unless the seeded workers drain
        // everything first.  Either way the counters must be consistent:
        // chunks processed ≥ chunks stolen, and the answer exact.
        let db = sample_db();
        let csr = db.csr_out();
        let query = dense(&db, "(a+b+c)*");
        let (answer, breakdown) = eval_csr_parallel_breakdown(&csr, &query, 64);
        assert_eq!(answer, eval_csr(&csr, &query));
        assert!(breakdown.total_chunks() >= breakdown.total_steals());
        let processed: u64 = breakdown.workers.iter().map(|w| w.chunks).sum();
        assert_eq!(processed, breakdown.total_chunks());
    }

    #[test]
    fn budgeted_breakdown_matches_and_reports_per_worker_work() {
        let db = sample_db();
        let csr = db.csr_out();
        let query = dense(&db, "a·(b·a+c)*");
        let progress = SweepState::new();
        let (result, breakdown) = eval_csr_parallel_budgeted_breakdown(
            &csr,
            &query,
            4,
            &SweepBudget::unlimited(),
            &progress,
        );
        let answer = result.expect("unlimited budget never interrupts");
        assert_eq!(answer, eval_csr(&csr, &query));
        // On success every pop is charged and attributed: the per-worker
        // counts sum to the shared aggregate exactly.
        assert_eq!(breakdown.total_visited(), progress.visited());
        assert!(progress.visited() > 0);

        let strict = SweepBudget {
            max_visited: Some(0),
            ..SweepBudget::unlimited()
        };
        let tripped = SweepState::new();
        let (result, breakdown) =
            eval_csr_parallel_budgeted_breakdown(&csr, &query, 4, &strict, &tripped);
        assert!(matches!(result.unwrap_err(), SweepInterrupt::VisitLimit));
        // The breakdown survives the interrupt (that is its point): worker
        // entries exist even though the answers were discarded.
        assert!(!breakdown.workers.is_empty());
    }

    #[test]
    fn budgeted_plain_variant_still_interrupts() {
        let db = sample_db();
        let csr = db.csr_out();
        let query = dense(&db, "a·(b·a+c)*");
        let progress = SweepState::new();
        let answer =
            eval_csr_parallel_budgeted(&csr, &query, 4, &SweepBudget::unlimited(), &progress)
                .expect("unlimited budget never interrupts");
        assert_eq!(answer, eval_csr(&csr, &query));

        let strict = SweepBudget {
            max_visited: Some(0),
            ..SweepBudget::unlimited()
        };
        let tripped = SweepState::new();
        let err = eval_csr_parallel_budgeted(&csr, &query, 4, &strict, &tripped).unwrap_err();
        assert!(matches!(err, SweepInterrupt::VisitLimit));
    }

    #[test]
    #[should_panic(expected = "must be over the database domain")]
    fn incompatible_alphabets_panic_on_the_caller_thread() {
        let db = sample_db();
        let other = GraphDb::new(Alphabet::from_chars(['x', 'y']).unwrap());
        let query = dense(&other, "x·y");
        let _ = eval_csr_parallel(&db.csr_out(), &query, 4);
    }
}
