//! Engine-wide timing telemetry: latency histograms and snapshot-age gauges.
//!
//! [`EngineTelemetry`] sits beside the counter block (`SharedStats`) as the
//! *timing* half of observability: where the counters say **how often** each
//! path ran, the histograms say **how long** it took.  One instance is shared
//! (as an `Arc`) between the writer and every published snapshot, exactly
//! like the counters, so `p99` figures aggregate work from both sides of the
//! MVCC split.
//!
//! Collection is gated by [`crate::EngineConfig::telemetry`]: when disabled
//! the evaluation paths skip every `Instant::now()` call, so the flag turns
//! the subsystem off completely rather than merely hiding its output.  The
//! recording sites themselves are cheap by construction — phase boundaries
//! and chunk boundaries only, never inside the product-BFS pop loop (see the
//! overhead guard in `bench`'s `experiments -- metrics`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use telemetry::Histogram;

/// Latency histograms (microsecond-valued, lock-free) plus the retained
/// snapshot-age window of one engine.
///
/// Obtainable from either side of the split —
/// [`crate::QueryEngine::telemetry`] or
/// [`crate::EngineSnapshot::telemetry`] — and safe to read while workers
/// record into it.
#[derive(Debug)]
pub struct EngineTelemetry {
    enabled: AtomicBool,
    /// Whole ad-hoc evaluations (cache hits included), end to end.
    eval: Histogram,
    /// Regex/NFA → frozen `DenseNfa` compilations (compile-cache hits
    /// included — a hit records the lookup cost).
    compile: Histogram,
    /// Product-BFS sweeps (the parallel pool, workers joined, pre-merge).
    product_bfs: Histogram,
    /// Incremental maintenance passes: insertion delta repair and DRed
    /// deletion repair, whole sharded phase.
    repair: Histogram,
    /// `publish_snapshot` calls that actually built a snapshot.
    snapshot_publish: Histogram,
    /// Interactive point lookups (`eval_pair_*`/`eval_from_*`), end to end —
    /// cache and extension fast paths included, so the histogram shows the
    /// served latency, not just fresh-search cost.
    interactive: Histogram,
    /// Publish instants of the snapshots the engine currently retains
    /// (`snapshot_keep_last` window plus the current one), oldest first —
    /// the source of the pinned-snapshot-age gauges.
    published: Mutex<Vec<(u64, Instant)>>,
}

impl EngineTelemetry {
    pub(crate) fn new(enabled: bool) -> Self {
        EngineTelemetry {
            enabled: AtomicBool::new(enabled),
            eval: Histogram::new(),
            compile: Histogram::new(),
            product_bfs: Histogram::new(),
            repair: Histogram::new(),
            snapshot_publish: Histogram::new(),
            interactive: Histogram::new(),
            published: Mutex::new(Vec::new()),
        }
    }

    /// Whether timing collection is on ([`crate::EngineConfig::telemetry`]).
    pub fn enabled(&self) -> bool {
        // ordering: Relaxed — the flag is set once at construction and only
        // read thereafter; it gates whether clocks are read, nothing else.
        self.enabled.load(Ordering::Relaxed)
    }

    /// End-to-end ad-hoc evaluation latency (cache hits included).
    pub fn eval(&self) -> &Histogram {
        &self.eval
    }

    /// Query-compilation latency.
    pub fn compile(&self) -> &Histogram {
        &self.compile
    }

    /// Product-BFS sweep latency (workers joined, before the merge).
    pub fn product_bfs(&self) -> &Histogram {
        &self.product_bfs
    }

    /// Incremental-maintenance (delta/DRed repair) phase latency.
    pub fn repair(&self) -> &Histogram {
        &self.repair
    }

    /// Snapshot build-and-publish latency.
    pub fn snapshot_publish(&self) -> &Histogram {
        &self.snapshot_publish
    }

    /// Interactive point-lookup latency (pair and single-source reads).
    pub fn interactive(&self) -> &Histogram {
        &self.interactive
    }

    /// `(name, histogram)` pairs of every engine histogram, in pipeline
    /// order — the iteration surface the service metrics op renders from.
    pub fn histograms(&self) -> [(&'static str, &Histogram); 6] {
        [
            ("eval", &self.eval),
            ("compile", &self.compile),
            ("product_bfs", &self.product_bfs),
            ("repair", &self.repair),
            ("snapshot_publish", &self.snapshot_publish),
            ("interactive", &self.interactive),
        ]
    }

    /// Records a snapshot publication, mirroring the engine's keep-last-K
    /// retention (plus the currently published snapshot) so the age gauges
    /// track exactly what the engine keeps pinned.
    pub(crate) fn note_published(&self, revision: u64, keep_last: usize) {
        let mut published = self.published.lock().unwrap_or_else(|e| e.into_inner());
        published.push((revision, Instant::now()));
        let window = keep_last.max(1);
        while published.len() > window {
            published.remove(0);
        }
    }

    /// Ages (in seconds) of the snapshots the engine currently pins, as
    /// `(revision, age_seconds)` pairs, oldest first.  This is the
    /// "pinned-snapshot-age" gauge set: the oldest entry bounds how stale a
    /// late-arriving reader handed a retained snapshot can be.
    pub fn snapshot_ages(&self) -> Vec<(u64, f64)> {
        self.published
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|&(revision, at)| (revision, at.elapsed().as_secs_f64()))
            .collect()
    }

    /// Age in seconds of the oldest snapshot the engine pins (0 when none
    /// was ever published).
    pub fn oldest_snapshot_age_s(&self) -> f64 {
        self.snapshot_ages().first().map_or(0.0, |&(_, age)| age)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_flag_is_visible() {
        assert!(EngineTelemetry::new(true).enabled());
        assert!(!EngineTelemetry::new(false).enabled());
    }

    #[test]
    fn published_window_mirrors_keep_last() {
        let t = EngineTelemetry::new(true);
        assert_eq!(t.oldest_snapshot_age_s(), 0.0);
        for revision in 0..6 {
            t.note_published(revision, 3);
        }
        let ages = t.snapshot_ages();
        assert_eq!(ages.len(), 3);
        assert_eq!(ages[0].0, 3, "oldest retained revision");
        assert_eq!(ages[2].0, 5, "newest retained revision");
        // Oldest first: ages decrease (weakly) toward the newest entry.
        assert!(ages[0].1 >= ages[2].1);

        // keep_last 0 still tracks the currently published snapshot.
        let t = EngineTelemetry::new(true);
        t.note_published(0, 0);
        t.note_published(1, 0);
        let ages = t.snapshot_ages();
        assert_eq!(ages.len(), 1);
        assert_eq!(ages[0].0, 1);
    }

    #[test]
    fn histograms_iterate_in_pipeline_order() {
        let t = EngineTelemetry::new(true);
        t.eval().record(10);
        let names: Vec<&str> = t.histograms().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["eval", "compile", "product_bfs", "repair", "snapshot_publish", "interactive"]
        );
        assert_eq!(t.histograms()[0].1.count(), 1);
    }
}
