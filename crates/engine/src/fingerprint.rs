//! 128-bit structural fingerprints for queries.
//!
//! The compile cache must recognize "the same query again" across call
//! sites that hold different in-memory values: a regex parsed twice, a view
//! definition grounded per problem, a rewriting automaton rebuilt per
//! comparison.  Fingerprints hash a canonical form — the regex rendering or
//! the NFA transition structure, always together with the alphabet — into
//! 128 bits (two independently-seeded [`FxHasher`] streams), wide enough
//! that accidental collisions are not a practical concern.

use std::hash::Hasher;

use automata::dense::FxHasher;
use automata::Nfa;
use regexlang::Regex;

/// A 128-bit query fingerprint (two independently-seeded 64-bit halves).
pub type Fingerprint = u128;

/// Two [`FxHasher`] streams with distinct initial states, combined into one
/// [`Fingerprint`] at the end.
struct Fp2 {
    lo: FxHasher,
    hi: FxHasher,
}

impl Fp2 {
    fn new(discriminant: u64) -> Self {
        let mut lo = FxHasher::default();
        let mut hi = FxHasher::default();
        lo.write_u64(discriminant);
        // Different seeds keep the halves independent even though the
        // streams see identical input afterwards.
        hi.write_u64(!discriminant);
        hi.write_u64(0x9e37_79b9_7f4a_7c15);
        Fp2 { lo, hi }
    }

    fn write_u64(&mut self, v: u64) {
        self.lo.write_u64(v);
        self.hi.write_u64(v);
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.lo.write(s.as_bytes());
        self.hi.write(s.as_bytes());
    }

    fn finish(self) -> Fingerprint {
        ((self.hi.finish() as u128) << 64) | self.lo.finish() as u128
    }
}

fn write_alphabet(fp: &mut Fp2, alphabet: &automata::Alphabet) {
    fp.write_u64(alphabet.len() as u64);
    for name in alphabet.names() {
        fp.write_str(name);
    }
}

/// Fingerprint of a regex to be compiled over `domain`.
///
/// The rendering of a [`Regex`] is canonical (it round-trips through the
/// parser), so two structurally equal expressions fingerprint equally even
/// when built through different constructors.
pub fn fingerprint_regex(domain: &automata::Alphabet, regex: &Regex) -> Fingerprint {
    let mut fp = Fp2::new(0x0052_4547_4558_u64); // "REGEX"
    write_alphabet(&mut fp, domain);
    fp.write_str(&regex.to_string());
    fp.finish()
}

/// Fingerprint of an NFA's transition structure and alphabet.
pub fn fingerprint_nfa(nfa: &Nfa) -> Fingerprint {
    let mut fp = Fp2::new(0x004e_4641_u64); // "NFA"
    write_alphabet(&mut fp, nfa.alphabet());
    fp.write_u64(nfa.num_states() as u64);
    for &s in nfa.initial_states() {
        fp.write_u64(s as u64);
    }
    fp.write_u64(u64::MAX); // section separator
    for &s in nfa.final_states() {
        fp.write_u64(s as u64);
    }
    fp.write_u64(u64::MAX);
    for (from, sym, to) in nfa.transitions() {
        fp.write_u64(from as u64);
        fp.write_u64(match sym {
            Some(s) => s.index() as u64,
            None => u64::MAX, // ε
        });
        fp.write_u64(to as u64);
    }
    fp.finish()
}

/// Fingerprint of a DFA's transition structure, tagged with the (compatible)
/// alphabet the frozen automaton will be evaluated over.
///
/// Rewriting automata are deterministic and re-labeled over the engine's
/// view alphabet before Σ_E-evaluation; fingerprinting the DFA directly
/// lets the compile cache intern the frozen dense form without constructing
/// a tree NFA per call.
pub fn fingerprint_dfa(target: &automata::Alphabet, dfa: &automata::Dfa) -> Fingerprint {
    let mut fp = Fp2::new(0x0044_4641_u64); // "DFA"
    write_alphabet(&mut fp, target);
    fp.write_u64(dfa.num_states() as u64);
    fp.write_u64(dfa.initial_state() as u64);
    fp.write_u64(u64::MAX); // section separator
    for s in dfa.final_states() {
        fp.write_u64(s as u64);
    }
    fp.write_u64(u64::MAX);
    for (from, sym, to) in dfa.transitions() {
        fp.write_u64(from as u64);
        fp.write_u64(sym.index() as u64);
        fp.write_u64(to as u64);
    }
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Alphabet;

    #[test]
    fn equal_regexes_fingerprint_equally() {
        let domain = Alphabet::from_chars(['a', 'b']).unwrap();
        let r1 = regexlang::parse("a·(b+a)*").unwrap();
        let r2 = regexlang::parse("a·(b+a)*").unwrap();
        assert_eq!(fingerprint_regex(&domain, &r1), fingerprint_regex(&domain, &r2));
        let r3 = regexlang::parse("a·(b+a)").unwrap();
        assert_ne!(fingerprint_regex(&domain, &r1), fingerprint_regex(&domain, &r3));
    }

    #[test]
    fn alphabet_is_part_of_the_fingerprint() {
        let d1 = Alphabet::from_chars(['a', 'b']).unwrap();
        let d2 = Alphabet::from_chars(['a', 'b', 'c']).unwrap();
        let r = regexlang::parse("a·b").unwrap();
        assert_ne!(fingerprint_regex(&d1, &r), fingerprint_regex(&d2, &r));
    }

    #[test]
    fn nfa_fingerprint_distinguishes_structure() {
        let alpha = Alphabet::from_chars(['a', 'b']).unwrap();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        let n1 = a.concat(&b);
        let n2 = a.concat(&b);
        let n3 = b.concat(&a);
        assert_eq!(fingerprint_nfa(&n1), fingerprint_nfa(&n2));
        assert_ne!(fingerprint_nfa(&n1), fingerprint_nfa(&n3));
    }
}
