//! The stateful query engine tying parallel evaluation, compile caching,
//! and incremental view maintenance together (see the crate docs for the
//! revision/caching model).
//!
//! Since the writer/snapshot split, `QueryEngine` is the **single writer**
//! of an MVCC pair: it owns the database and the view-extension cache,
//! mutates copy-on-write (shared `Arc`s are never modified in place), and
//! publishes immutable [`EngineSnapshot`] read handles pinned to a
//! revision.  The `&mut self` view-based query methods are thin wrappers
//! that publish (or reuse) the current revision's snapshot and read
//! through it, and the ad-hoc methods share the same caches, so the writer
//! and any number of concurrent readers always see identical answers.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use automata::{DenseNfa, DenseReverse, Nfa};
use graphdb::{
    Answer, CsrAdjacency, GraphDb, MaterializedViews, NodeId, SweepBudget, SweepInterrupt,
    SweepState,
};
use regexlang::Regex;

use crate::budget::QueryBudget;
use crate::cache::CompileCache;
use crate::delta::{delta_pairs, deletion_repair_budgeted, DeletionRepairReport};
use crate::error::EngineError;
use crate::fingerprint::{fingerprint_regex, Fingerprint};
use crate::metrics::EngineTelemetry;
use crate::parallel::available_threads;
use crate::snapshot::{bump, AdhocReader, AnswerCache, EngineSnapshot, PointCache, SharedStats};

/// Tuning knobs of a [`QueryEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for parallel evaluation; `0` means "use
    /// [`available_threads`]".
    pub threads: usize,
    /// Below this node count evaluation stays sequential (thread spawn and
    /// merge overhead dominates on small graphs).
    pub parallel_threshold: usize,
    /// Maximum number of ad-hoc answers kept in the shared answer cache;
    /// beyond it the least-recently-used entry (stale entries first) is
    /// evicted.  `0` disables answer caching entirely (every ad-hoc query
    /// re-evaluates).
    pub answer_cache_capacity: usize,
    /// Number of most-recently published snapshots the engine itself keeps
    /// alive (`0` — the default — retains none: a snapshot lives exactly as
    /// long as some reader holds its `Arc`).  A serving layer sets this so
    /// the last few revisions stay resident for late-arriving readers
    /// without unbounded growth; see
    /// [`QueryEngine::retained_snapshots`].
    pub snapshot_keep_last: usize,
    /// Whether timing telemetry ([`crate::EngineTelemetry`]: latency
    /// histograms, snapshot-age gauges, trace spans) is collected.  `true`
    /// by default — recording happens only at phase and chunk boundaries,
    /// so the overhead is noise (the `experiments -- metrics` bench guard
    /// pins it under 5%) — but `false` removes every `Instant` call from
    /// the evaluation paths entirely.
    pub telemetry: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            parallel_threshold: 256,
            answer_cache_capacity: 256,
            snapshot_keep_last: 0,
            telemetry: true,
        }
    }
}

impl EngineConfig {
    /// Strict validation for configurations built from untrusted input
    /// (e.g. a service config file).  The permissive constructors accept
    /// the degenerate values — `threads: 0` means auto-detect and
    /// `answer_cache_capacity: 0` disables caching, both documented and
    /// useful in tests — but a serving deployment asking for them almost
    /// certainly made a units mistake, so
    /// [`QueryEngine::try_with_config`] rejects them.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.threads == 0 {
            return Err(EngineError::InvalidConfig {
                message: "threads must be at least 1 (use EngineConfig::serving() for \
                          auto-detection)"
                    .to_string(),
            });
        }
        if self.answer_cache_capacity == 0 {
            return Err(EngineError::InvalidConfig {
                message: "answer_cache_capacity must be at least 1".to_string(),
            });
        }
        Ok(())
    }

    /// The preset a serving deployment starts from: all hardware threads,
    /// the default answer-cache capacity, and a small published-snapshot
    /// retention window.  Always passes [`validate`](Self::validate).
    pub fn serving() -> Self {
        EngineConfig {
            threads: available_threads(),
            snapshot_keep_last: 4,
            ..EngineConfig::default()
        }
    }
}

/// Observable counters: cache effectiveness and which evaluation/maintenance
/// paths ran.  The differential tests assert on these to prove the cached
/// and incremental paths (not silent fallbacks) produced the answers.
///
/// Counters are engine-wide: work done through any [`EngineSnapshot`] of an
/// engine (on any thread) is folded into the same totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Compile-cache hits (query already frozen).
    pub compile_hits: u64,
    /// Compile-cache misses (query frozen now).
    pub compile_misses: u64,
    /// Ad-hoc answers served from the answer cache.
    pub answer_hits: u64,
    /// Ad-hoc answers evaluated.
    pub answer_misses: u64,
    /// View extensions materialized from scratch.
    pub view_full_materializations: u64,
    /// View extensions served from cache at the current revision.
    pub view_cache_hits: u64,
    /// View extensions repaired incrementally after an edge insertion.
    pub view_delta_repairs: u64,
    /// Evaluations that ran on the sharded thread pool.
    pub parallel_evals: u64,
    /// Evaluations that ran sequentially (small graph or 1 thread).
    pub sequential_evals: u64,
    /// Source-range chunks processed across all parallel-pool workers.
    pub parallel_chunks: u64,
    /// Of those, chunks a worker stole from a sibling's deque after its own
    /// ran dry — the work-stealing scheduler rebalancing skewed sweeps.
    pub parallel_steals: u64,
    /// Ad-hoc answers evicted by the capacity bound of the answer cache.
    pub answer_evictions: u64,
    /// Mutations whose delta repairs ran on the worker pool (one count per
    /// mutation, not per view).
    pub parallel_repairs: u64,
    /// Revision-stale answers removed by a lookup (stale entries never pin
    /// cache capacity).
    pub answer_stale_evictions: u64,
    /// Identity pairs inserted into start-accepting cached extensions for
    /// nodes created by mutations (pre-existing nodes are never re-covered).
    pub identity_cover_pairs: u64,
    /// View extensions repaired by DRed over-deletion + re-derivation after
    /// an edge deletion (one count per view per deleting mutation).
    pub view_deletion_repairs: u64,
    /// Deleted edge occurrences skipped by the support-count fast path
    /// (a parallel copy of the edge survived, so no answer can change).
    pub deletion_support_skips: u64,
    /// Cached pairs removed by deletion over-deletion sweeps (some of them
    /// are typically restored by re-derivation).
    pub deletion_overdeleted_pairs: u64,
    /// Distinct sources re-swept (forward product-BFS on the post-deletion
    /// graph) to re-derive surviving pairs.
    pub deletion_rederived_sources: u64,
    /// Evaluations stopped by a query budget (deadline, visit cap, or
    /// cancellation) before completing.
    pub budget_interrupted_evals: u64,
    /// Cached view extensions dropped because a mutation's repair budget ran
    /// out mid-repair (the view re-materializes lazily on next use).
    pub repair_budget_drops: u64,
    /// Snapshots added to the keep-last-K retention window
    /// ([`EngineConfig::snapshot_keep_last`]).
    pub snapshot_retained: u64,
    /// Snapshots aged out of the retention window (they stay alive only as
    /// long as some reader still holds their `Arc`).
    pub snapshot_dropped: u64,
    /// Cached answers evicted because their revision retired from the
    /// retention window — the writer compacts the shared answer cache each
    /// time the window's oldest revision advances.
    pub answer_compactions: u64,
    /// Interactive lookups served from the point-query cache at the exact
    /// revision.
    pub point_hits: u64,
    /// Interactive point-query cache probes that found no resident
    /// (exact-revision) target list.
    pub point_misses: u64,
    /// Point-query cache entries evicted because their revision retired
    /// from the retention window (the DRed-safety compaction that runs
    /// beside `answer_compactions`).
    pub point_compactions: u64,
    /// Single-pair lookups answered by a fresh bidirectional
    /// meet-in-the-middle search (cache-served lookups are not counted).
    pub pair_evals: u64,
    /// Single-source lookups answered by a fresh seeded product-BFS
    /// (cache-served lookups are not counted).
    pub from_evals: u64,
    /// Interactive lookups served out of a full materialized extension
    /// resident in the ad-hoc answer cache.
    pub point_extension_hits: u64,
}

/// Folds the shared atomic counters into one [`EngineStats`] value.
pub(crate) fn assemble_stats(
    compile: &CompileCache,
    answers: &AnswerCache,
    points: &PointCache,
    shared: &SharedStats,
) -> EngineStats {
    // ordering: Relaxed throughout — this folds independent monotone
    // counters into one advisory snapshot; cross-counter consistency is
    // not promised to observers.
    EngineStats {
        compile_hits: compile.hits(),
        compile_misses: compile.misses(),
        answer_hits: answers.hits.load(Ordering::Relaxed),
        answer_misses: answers.misses.load(Ordering::Relaxed),
        answer_evictions: answers.evictions.load(Ordering::Relaxed),
        answer_stale_evictions: answers.stale_evictions.load(Ordering::Relaxed),
        view_full_materializations: shared.view_full_materializations.load(Ordering::Relaxed),
        view_cache_hits: shared.view_cache_hits.load(Ordering::Relaxed),
        view_delta_repairs: shared.view_delta_repairs.load(Ordering::Relaxed),
        parallel_evals: shared.parallel_evals.load(Ordering::Relaxed),
        sequential_evals: shared.sequential_evals.load(Ordering::Relaxed),
        parallel_chunks: shared.parallel_chunks.load(Ordering::Relaxed),
        parallel_steals: shared.parallel_steals.load(Ordering::Relaxed),
        parallel_repairs: shared.parallel_repairs.load(Ordering::Relaxed),
        identity_cover_pairs: shared.identity_cover_pairs.load(Ordering::Relaxed),
        view_deletion_repairs: shared.view_deletion_repairs.load(Ordering::Relaxed),
        deletion_support_skips: shared.deletion_support_skips.load(Ordering::Relaxed),
        deletion_overdeleted_pairs: shared.deletion_overdeleted_pairs.load(Ordering::Relaxed),
        deletion_rederived_sources: shared.deletion_rederived_sources.load(Ordering::Relaxed),
        budget_interrupted_evals: shared.budget_interrupted_evals.load(Ordering::Relaxed),
        repair_budget_drops: shared.repair_budget_drops.load(Ordering::Relaxed),
        snapshot_retained: shared.snapshot_retained.load(Ordering::Relaxed),
        snapshot_dropped: shared.snapshot_dropped.load(Ordering::Relaxed),
        answer_compactions: answers.compactions.load(Ordering::Relaxed),
        point_hits: points.hits.load(Ordering::Relaxed),
        point_misses: points.misses.load(Ordering::Relaxed),
        point_compactions: points.compactions.load(Ordering::Relaxed),
        pair_evals: shared.pair_evals.load(Ordering::Relaxed),
        from_evals: shared.from_evals.load(Ordering::Relaxed),
        point_extension_hits: shared.point_extension_hits.load(Ordering::Relaxed),
    }
}

/// One registered view: its grounded definition, compiled automaton, lazily
/// built reverse table, and revisioned cached extension.  The automaton and
/// the extension sit behind `Arc`s shared with published snapshots; repairs
/// go through [`Arc::make_mut`], so a snapshot holding the old extension
/// keeps it while the writer extends a private copy.
#[derive(Debug)]
struct ViewEntry {
    name: String,
    fingerprint: Fingerprint,
    nfa: Arc<DenseNfa>,
    reverse: Option<Arc<DenseReverse>>,
    /// `(revision the pairs are valid at, the extension)`.
    extension: Option<(u64, Arc<Answer>)>,
}

/// One cached view extension queued for repair after a mutation (delta
/// extension on insertion, DRed on deletion).  The references point at
/// *disjoint* engine state (the frozen automaton behind the entry's `Arc`,
/// its reverse table, and its — by now uniquely owned — extension set),
/// which is what lets the per-view repairs run concurrently on scoped
/// threads.
struct RepairTarget<'a> {
    /// Index of the view in the engine's registration order, so a repair
    /// interrupted by a budget can drop exactly that view's extension after
    /// the workers join.
    view_idx: usize,
    nfa: &'a DenseNfa,
    reverse: &'a DenseReverse,
    pairs: &'a mut Answer,
}

/// Repairs one cached extension against every edge of an insertion,
/// polling the time-like budget limits between per-edge delta sweeps.
fn repair_entry_budgeted(
    csr_out: &CsrAdjacency,
    csr_in: &CsrAdjacency,
    job: &mut RepairTarget<'_>,
    new_edges: &[(NodeId, automata::Symbol, NodeId)],
    budget: &SweepBudget,
    progress: &SweepState,
) -> Result<(), SweepInterrupt> {
    for &(from, label, to) in new_edges {
        progress.poll(budget)?;
        let delta = delta_pairs(csr_out, csr_in, job.nfa, job.reverse, from, label, to);
        job.pairs.extend(delta);
    }
    Ok(())
}

/// A [`RepairTarget`] of the insertion path, carrying the budget interrupt
/// (if any) out of the worker.
struct InsertionJob<'a> {
    target: RepairTarget<'a>,
    interrupted: Option<SweepInterrupt>,
}

/// A [`RepairTarget`] of the deletion path, additionally carrying its work
/// counters (and the budget interrupt, if any) out of the worker for the
/// post-join stats fold.
struct DeletionJob<'a> {
    target: RepairTarget<'a>,
    report: DeletionRepairReport,
    interrupted: Option<SweepInterrupt>,
}

/// Phase 1 of every mutation, run after the revision bump: validates each
/// cached extension (a cache more than one revision behind cannot happen
/// through this API, but is dropped — forcing lazy re-materialization —
/// rather than trusted as a stale baseline), runs `touch` on each survivor
/// (the insertion path covers new nodes' identity pairs there), stamps it
/// current, and — when `queue` — builds missing reverse tables and returns
/// the repair targets.  Each returned extension has been detached from
/// published snapshots via [`Arc::make_mut`], so snapshot readers keep
/// exactly the pre-mutation pairs no matter what the repair does to it.
fn queue_repair_targets<'a>(
    views: &'a mut [ViewEntry],
    revision: u64,
    queue: bool,
    mut touch: impl FnMut(&mut ViewEntry),
) -> Vec<RepairTarget<'a>> {
    let mut targets = Vec::new();
    for (view_idx, entry) in views.iter_mut().enumerate() {
        if matches!(&entry.extension, Some((rev, _)) if *rev + 1 != revision) {
            entry.extension = None;
            continue;
        }
        if entry.extension.is_none() {
            continue; // never materialized — nothing to repair
        }
        touch(entry);
        let (cached_rev, _) = entry.extension.as_mut().expect("validated above");
        *cached_rev = revision;
        if !queue {
            continue;
        }
        if entry.reverse.is_none() {
            entry.reverse = Some(Arc::new(entry.nfa.reverse_closed()));
        }
        let ViewEntry { nfa, reverse, extension, .. } = entry;
        targets.push(RepairTarget {
            view_idx,
            nfa,
            reverse: reverse.as_ref().expect("built above"),
            pairs: Arc::make_mut(&mut extension.as_mut().expect("validated above").1),
        });
    }
    targets
}

/// Phase 2 of every mutation: shards the per-view repair jobs across the
/// scoped-thread pool, or runs them inline when one worker suffices (the
/// jobs only read shared frozen state and each writes its own extension).
/// Bumps `parallel_repairs` once per pooled mutation.
fn shard_repair_jobs<J: Send>(
    configured_threads: usize,
    stats: &SharedStats,
    jobs: &mut [J],
    run: impl Fn(&mut J) + Sync,
) {
    let threads = match configured_threads {
        0 => available_threads(),
        n => n,
    }
    .min(jobs.len());
    if threads > 1 {
        bump(&stats.parallel_repairs);
        let chunk = jobs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let run = &run;
            for chunk_jobs in jobs.chunks_mut(chunk) {
                scope.spawn(move || chunk_jobs.iter_mut().for_each(run));
            }
        });
    } else {
        jobs.iter_mut().for_each(&run);
    }
}

/// A stateful RPQ query engine over one owned database — the writer half of
/// the writer/snapshot split.
///
/// Construct with [`QueryEngine::new`], register views with
/// [`register_view`](Self::register_view), query with
/// [`eval_regex`](Self::eval_regex) /
/// [`view_extension`](Self::view_extension) /
/// [`eval_over_views`](Self::eval_over_views), and mutate with
/// [`add_edge`](Self::add_edge) / [`remove_edge`](Self::remove_edge) —
/// cached view extensions survive both kinds of mutation via incremental
/// repair (delta extension on insert, DRed over-deletion + re-derivation
/// on delete).  For concurrent readers, publish an immutable
/// [`EngineSnapshot`] with [`publish_snapshot`](Self::publish_snapshot) and
/// hand clones of it to other threads; see the crate docs for the protocol.
#[derive(Debug)]
pub struct QueryEngine {
    db: GraphDb,
    revision: u64,
    /// Monotone counter of view-set changes; part of the snapshot identity.
    views_epoch: u64,
    csr_out: Arc<CsrAdjacency>,
    /// Incoming adjacency, frozen only when a mutation actually needs the
    /// backward delta sweeps (read-only engines never pay for it).
    /// Invariant: when `Some`, it is a freeze of the *current* database —
    /// insertions refreeze it after mutating, deletions take it as the
    /// pre-deletion freeze and leave `None`.
    csr_in: Option<CsrAdjacency>,
    config: EngineConfig,
    compile: Arc<CompileCache>,
    /// Registered views in registration order (the order defines the view
    /// alphabet, matching `MaterializedViews::materialize_regexes`).
    views: Vec<ViewEntry>,
    /// Shared ad-hoc answer cache (see [`AnswerCache`] for the revision and
    /// eviction protocol).
    answers: Arc<AnswerCache>,
    /// Shared point-query cache backing the snapshots' interactive read
    /// path (`(query, source)` → complete target list, same revision
    /// regime as `answers`).
    points: Arc<PointCache>,
    /// The snapshot published for the current `(revision, views_epoch)`,
    /// if any — invalidated by every mutation and view-set change.
    published: Option<Arc<EngineSnapshot>>,
    /// The keep-last-K retention window over published snapshots
    /// ([`EngineConfig::snapshot_keep_last`]); empty when retention is off.
    retained: VecDeque<Arc<EngineSnapshot>>,
    stats: Arc<SharedStats>,
    /// Timing telemetry, shared with every published snapshot (like
    /// `stats`); collection gated by [`EngineConfig::telemetry`].
    telemetry: Arc<EngineTelemetry>,
}

impl QueryEngine {
    /// Wraps a database with default configuration.
    pub fn new(db: GraphDb) -> Self {
        Self::with_config(db, EngineConfig::default())
    }

    /// Wraps a database with explicit configuration.
    pub fn with_config(db: GraphDb, config: EngineConfig) -> Self {
        let csr_out = Arc::new(db.csr_out());
        let answers = Arc::new(AnswerCache::new(config.answer_cache_capacity));
        let points = Arc::new(PointCache::new(config.answer_cache_capacity));
        let telemetry = Arc::new(EngineTelemetry::new(config.telemetry));
        QueryEngine {
            db,
            revision: 0,
            views_epoch: 0,
            csr_out,
            csr_in: None,
            config,
            compile: Arc::new(CompileCache::new()),
            views: Vec::new(),
            answers,
            points,
            published: None,
            retained: VecDeque::new(),
            stats: Arc::new(SharedStats::default()),
            telemetry,
        }
    }

    /// Wraps a database with a strictly validated configuration: degenerate
    /// knob values that the permissive [`with_config`](Self::with_config)
    /// accepts with documented special meanings (`threads: 0`,
    /// `answer_cache_capacity: 0`) are rejected with
    /// [`EngineError::InvalidConfig`].  This is the constructor serving
    /// deployments use on operator-supplied configuration.
    pub fn try_with_config(db: GraphDb, config: EngineConfig) -> Result<Self, EngineError> {
        config.validate()?;
        Ok(Self::with_config(db, config))
    }

    /// The underlying database (read-only; mutate through the engine).
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// The current database revision (bumped by every mutation).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cache/evaluation counters, shared with every published snapshot.
    pub fn stats(&self) -> EngineStats {
        assemble_stats(&self.compile, &self.answers, &self.points, &self.stats)
    }

    /// Timing telemetry (latency histograms, snapshot-age gauges), shared
    /// with every published snapshot.
    pub fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    /// The frozen outgoing adjacency at the current revision.
    pub fn csr_out(&self) -> &CsrAdjacency {
        &self.csr_out
    }

    // ------------------------------------------------------------------
    // Publishing

    /// Publishes (or reuses) the immutable snapshot of the current revision
    /// and view set: every registered view is materialized, and the
    /// returned handle answers the full read API with `&self` from any
    /// thread.  Repeated calls between mutations return the same `Arc`.
    pub fn publish_snapshot(&mut self) -> Arc<EngineSnapshot> {
        if let Some(snapshot) = &self.published {
            if snapshot.revision() == self.revision
                && snapshot.views_epoch() == self.views_epoch
            {
                return snapshot.clone();
            }
        }
        let publish_start = self.telemetry.enabled().then(Instant::now);
        for idx in 0..self.views.len() {
            self.materialize_entry(idx);
        }
        let views = self
            .views
            .iter()
            .map(|v| {
                let (_, pairs) = v.extension.as_ref().expect("just materialized");
                (v.name.clone(), pairs.clone())
            })
            .collect();
        // The snapshot's bidirectional single-pair evaluator needs the
        // incoming adjacency; freeze it from the current database (the
        // writer's own lazily-frozen `csr_in` may be absent or already
        // consumed by a deletion, so the snapshot gets its own freeze).
        let snapshot = Arc::new(EngineSnapshot::new(
            self.revision,
            self.views_epoch,
            self.config.clone(),
            self.csr_out.clone(),
            Arc::new(self.db.csr_in()),
            self.db.num_nodes(),
            views,
            self.compile.clone(),
            self.answers.clone(),
            self.points.clone(),
            self.stats.clone(),
            self.telemetry.clone(),
        ));
        self.published = Some(snapshot.clone());
        if self.config.snapshot_keep_last > 0 {
            self.retained.push_back(snapshot.clone());
            bump(&self.stats.snapshot_retained);
            let mut window_advanced = false;
            while self.retained.len() > self.config.snapshot_keep_last {
                self.retained.pop_front();
                bump(&self.stats.snapshot_dropped);
                window_advanced = true;
            }
            // A retired revision can never be asked for again through the
            // engine's own window: compact the shared answer cache so a
            // long-pinned reader's leftovers stop occupying capacity.
            // Readers still holding older snapshot `Arc`s keep evaluating
            // correctly — they just re-compute instead of hitting cache.
            if window_advanced {
                if let Some(oldest) = self.retained.front() {
                    self.answers.compact_older_than(oldest.revision());
                    // The point-query cache follows the same regime — in
                    // particular this is what keeps DRed deletion repair
                    // honest for interactive lookups: a target list cached
                    // before a deletion can outlive every reader of its
                    // revision only until the window advances past it.
                    self.points.compact_older_than(oldest.revision());
                }
            }
        }
        if let Some(start) = publish_start {
            self.telemetry.snapshot_publish().record_duration(start.elapsed());
            self.telemetry
                .note_published(self.revision, self.config.snapshot_keep_last);
        }
        snapshot
    }

    /// The published snapshots the engine itself is keeping alive, oldest
    /// first — at most [`EngineConfig::snapshot_keep_last`] of them.
    /// Snapshots outside the window stay valid for any reader still holding
    /// their `Arc`; the window only controls what the *engine* pins.
    pub fn retained_snapshots(&self) -> impl Iterator<Item = &Arc<EngineSnapshot>> {
        self.retained.iter()
    }

    // ------------------------------------------------------------------
    // Ad-hoc queries
    //
    // These run through the same [`AdhocReader`] protocol a snapshot of the
    // current revision uses — answer- and stats-identical by construction —
    // but deliberately do NOT publish a snapshot: publishing materializes
    // every registered view, and an ad-hoc query must stay cheap on an
    // engine whose views were registered but never asked for.

    /// The shared ad-hoc read path, borrowed over the writer's current
    /// state.
    fn adhoc(&self) -> AdhocReader<'_> {
        AdhocReader {
            revision: self.revision,
            config: &self.config,
            csr_out: &self.csr_out,
            compile: &self.compile,
            answers: &self.answers,
            stats: &self.stats,
            telemetry: &self.telemetry,
            trace: None,
        }
    }

    /// Number of ad-hoc answers currently cached (always within the
    /// configured capacity bound).
    pub fn answer_cache_len(&self) -> usize {
        self.answers.len()
    }

    /// Evaluates a regex query over the database, through the compile and
    /// answer caches.
    ///
    /// # Panics
    /// Panics when the query mentions a label outside the domain; use
    /// [`try_eval_regex`](Self::try_eval_regex) to handle that as an error.
    pub fn eval_regex(&mut self, query: &Regex) -> Arc<Answer> {
        self.adhoc().eval_regex(query)
    }

    /// Evaluates a query written in the paper's concrete syntax.
    ///
    /// # Panics
    /// Panics on a malformed query or an out-of-domain label; use
    /// [`try_eval_str`](Self::try_eval_str) to handle both as errors.
    pub fn eval_str(&mut self, query: &str) -> Arc<Answer> {
        let expr = regexlang::parse(query).expect("query must parse");
        self.eval_regex(&expr)
    }

    /// Evaluates an automaton-form query over the database, through the
    /// compile and answer caches.
    ///
    /// # Panics
    /// Panics when the automaton's alphabet falls outside the domain; use
    /// [`try_eval_nfa`](Self::try_eval_nfa) to handle that as an error.
    pub fn eval_nfa(&mut self, query: &Nfa) -> Arc<Answer> {
        self.adhoc().eval_nfa(query)
    }

    /// Fallible variant of [`eval_str`](Self::eval_str): parse failures and
    /// out-of-domain labels surface as [`EngineError`] instead of panicking.
    pub fn try_eval_str(&mut self, query: &str) -> Result<Arc<Answer>, EngineError> {
        self.eval_str_budgeted(query, &QueryBudget::unlimited())
    }

    /// Fallible variant of [`eval_regex`](Self::eval_regex): out-of-domain
    /// labels surface as [`EngineError`] instead of panicking.
    pub fn try_eval_regex(&mut self, query: &Regex) -> Result<Arc<Answer>, EngineError> {
        self.eval_regex_budgeted(query, &QueryBudget::unlimited())
    }

    /// Fallible variant of [`eval_nfa`](Self::eval_nfa): an incompatible
    /// alphabet surfaces as [`EngineError`] instead of panicking.
    pub fn try_eval_nfa(&mut self, query: &Nfa) -> Result<Arc<Answer>, EngineError> {
        self.eval_nfa_budgeted(query, &QueryBudget::unlimited())
    }

    /// Budgeted, fallible evaluation of a concrete-syntax query.  An
    /// unlimited budget takes the check-free fast path; a tripped limit maps
    /// to the matching [`EngineError`] variant carrying the partial-work
    /// count, and interrupted evaluations never pollute the answer cache.
    pub fn eval_str_budgeted(
        &mut self,
        query: &str,
        budget: &QueryBudget,
    ) -> Result<Arc<Answer>, EngineError> {
        let expr = regexlang::parse(query)?;
        self.eval_regex_budgeted(&expr, budget)
    }

    /// Budgeted, fallible variant of [`eval_regex`](Self::eval_regex).
    pub fn eval_regex_budgeted(
        &mut self,
        query: &Regex,
        budget: &QueryBudget,
    ) -> Result<Arc<Answer>, EngineError> {
        self.adhoc().eval_regex_budgeted(query, budget)
    }

    /// Budgeted, fallible variant of [`eval_nfa`](Self::eval_nfa).
    pub fn eval_nfa_budgeted(
        &mut self,
        query: &Nfa,
        budget: &QueryBudget,
    ) -> Result<Arc<Answer>, EngineError> {
        self.adhoc().eval_nfa_budgeted(query, budget)
    }

    // ------------------------------------------------------------------
    // Views

    /// Registers (or replaces) a named view.  Re-registering the same
    /// definition under the same name keeps the cached extension; a changed
    /// definition drops it.
    ///
    /// # Panics
    /// Panics when the definition mentions a label outside the domain; use
    /// [`try_register_view`](Self::try_register_view) to handle that as an
    /// error.
    pub fn register_view(&mut self, name: &str, definition: Regex) {
        self.try_register_view(name, definition)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible variant of [`register_view`](Self::register_view): an
    /// out-of-domain label in the definition surfaces as
    /// [`EngineError::UnknownLabel`] and leaves the view set unchanged.
    pub fn try_register_view(&mut self, name: &str, definition: Regex) -> Result<(), EngineError> {
        let fp = fingerprint_regex(self.db.domain(), &definition);
        if let Some(entry) = self.views.iter().find(|v| v.name == name) {
            if entry.fingerprint == fp {
                return Ok(()); // identical registration, cache (and snapshot) intact
            }
        }
        let nfa = self.compile.try_compile_regex(self.db.domain(), &definition)?;
        let entry = ViewEntry {
            name: name.to_string(),
            fingerprint: fp,
            nfa,
            reverse: None,
            extension: None,
        };
        match self.views.iter_mut().find(|v| v.name == name) {
            Some(slot) => *slot = entry,
            None => self.views.push(entry),
        }
        self.views_epoch += 1;
        self.published = None;
        Ok(())
    }

    /// Registers several views at once (e.g. a whole rewriting problem's).
    pub fn register_views<'a>(&mut self, views: impl IntoIterator<Item = (&'a str, Regex)>) {
        for (name, def) in views {
            self.register_view(name, def);
        }
    }

    /// Names of the registered views, in registration order.
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.views.iter().map(|v| v.name.as_str())
    }

    /// The materialized extension of a registered view at the current
    /// revision, materializing it (in parallel, when configured) on first
    /// access.  Returns `None` for unregistered names.
    pub fn view_extension(&mut self, name: &str) -> Option<&Answer> {
        let idx = self.views.iter().position(|v| v.name == name)?;
        self.materialize_entry(idx);
        self.views[idx]
            .extension
            .as_ref()
            .map(|(_, pairs)| pairs.as_ref())
    }

    fn materialize_entry(&mut self, idx: usize) {
        match &self.views[idx].extension {
            Some((rev, _)) if *rev == self.revision => {
                bump(&self.stats.view_cache_hits);
            }
            _ => {
                let dense = self.views[idx].nfa.clone();
                let pairs = self.adhoc().eval_on_csr(&dense);
                self.views[idx].extension = Some((self.revision, Arc::new(pairs)));
                bump(&self.stats.view_full_materializations);
            }
        }
    }

    /// Materializes every registered view and exposes the extensions as a
    /// [`MaterializedViews`] (cached per published snapshot), ready for
    /// Σ_E-evaluation of rewritings.
    pub fn materialized_views(&mut self) -> Arc<MaterializedViews> {
        self.publish_snapshot().materialized_views()
    }

    /// Evaluates a language over the view alphabet (e.g. a rewriting
    /// automaton) against the materialized extensions, freezing the
    /// automaton through the compile cache.
    pub fn eval_over_views(&mut self, over_views: &Nfa) -> Answer {
        self.publish_snapshot().eval_over_views(over_views)
    }

    /// Evaluates a deterministic Σ_E-automaton — the shape every maximal
    /// rewriting takes — against the materialized extensions.  The dense
    /// form is interned in the compile cache by DFA fingerprint
    /// ([`crate::fingerprint::fingerprint_dfa`]), so repeated evaluations of
    /// the same rewriting skip the construction entirely: no per-call tree
    /// NFA, no refreeze.
    pub fn eval_dfa_over_views(&mut self, rewriting: &automata::Dfa) -> Answer {
        self.publish_snapshot().eval_dfa_over_views(rewriting)
    }

    // ------------------------------------------------------------------
    // Mutation

    /// Inserts an edge, bumps the revision, refreezes both adjacencies, and
    /// incrementally repairs every cached view extension by delta
    /// product-BFS seeded from the edge's endpoints.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or a label outside the domain; use
    /// [`try_add_edges`](Self::try_add_edges) to handle those as errors.
    pub fn add_edge(&mut self, from: NodeId, label: automata::Symbol, to: NodeId) {
        self.try_add_edge(from, label, to).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible variant of [`add_edge`](Self::add_edge): out-of-range
    /// endpoints and unknown labels surface as [`EngineError`] instead of
    /// panicking, with the engine untouched on `Err`.
    pub fn try_add_edge(
        &mut self,
        from: NodeId,
        label: automata::Symbol,
        to: NodeId,
    ) -> Result<(), EngineError> {
        self.try_add_edges(&[(from, label, to)])
    }

    /// Inserts an edge between named nodes (creating them on demand, like
    /// [`GraphDb::add_edge_named`]).
    ///
    /// # Panics
    /// Panics on a label outside the domain.
    pub fn add_edge_named(&mut self, from: &str, label: &str, to: &str) {
        self.try_add_edge_named(from, label, to).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible variant of [`add_edge_named`](Self::add_edge_named): an
    /// unknown label surfaces as [`EngineError`] instead of panicking, with
    /// the engine untouched on `Err`.
    pub fn try_add_edge_named(
        &mut self,
        from: &str,
        label: &str,
        to: &str,
    ) -> Result<(), EngineError> {
        self.try_add_edges_named(&[(from, label, to)])
    }

    /// Inserts a batch of edges under a single revision bump, refreezing the
    /// adjacencies once and repairing each cached extension with one delta
    /// sweep per inserted edge.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or a label outside the domain —
    /// validated for the whole batch *before* anything mutates.
    pub fn add_edges(&mut self, edges: &[(NodeId, automata::Symbol, NodeId)]) {
        self.try_add_edges(edges).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible variant of [`add_edges`](Self::add_edges): the whole batch
    /// is validated before anything mutates, so on `Err` the engine —
    /// database, revision, caches — is untouched.
    pub fn try_add_edges(
        &mut self,
        edges: &[(NodeId, automata::Symbol, NodeId)],
    ) -> Result<(), EngineError> {
        self.try_add_edges_budgeted(edges, &QueryBudget::unlimited())
    }

    /// [`try_add_edges`](Self::try_add_edges) with a budget over the
    /// *repair* phase.  Once validation passes the mutation itself always
    /// applies; a budget tripped mid-repair degrades gracefully instead of
    /// failing the call — the affected views' cached extensions are dropped
    /// (`repair_budget_drops` counts them) and re-materialize lazily on
    /// next use.
    pub fn try_add_edges_budgeted(
        &mut self,
        edges: &[(NodeId, automata::Symbol, NodeId)],
        budget: &QueryBudget,
    ) -> Result<(), EngineError> {
        if edges.is_empty() {
            return Ok(());
        }
        for &(from, label, to) in edges {
            self.db.check_edge_parts(from, label, to)?;
        }
        let prev_nodes = self.db.num_nodes();
        for &(from, label, to) in edges {
            self.db.add_edge(from, label, to);
        }
        self.finish_mutation(prev_nodes, edges, budget);
        Ok(())
    }

    /// Fallible batch insertion between named nodes.  Labels are resolved
    /// (the only fallible step) before any node is created, so on `Err` the
    /// engine is untouched; nodes are then created on demand like
    /// [`add_edge_named`](Self::add_edge_named).
    pub fn try_add_edges_named(&mut self, edges: &[(&str, &str, &str)]) -> Result<(), EngineError> {
        self.try_add_edges_named_budgeted(edges, &QueryBudget::unlimited())
    }

    /// [`try_add_edges_named`](Self::try_add_edges_named) with a repair
    /// budget (see
    /// [`try_add_edges_budgeted`](Self::try_add_edges_budgeted)).
    pub fn try_add_edges_named_budgeted(
        &mut self,
        edges: &[(&str, &str, &str)],
        budget: &QueryBudget,
    ) -> Result<(), EngineError> {
        if edges.is_empty() {
            return Ok(());
        }
        let mut labels = Vec::with_capacity(edges.len());
        for &(_, label, _) in edges {
            labels.push(self.db.require_label(label)?);
        }
        let prev_nodes = self.db.num_nodes();
        let mut triples = Vec::with_capacity(edges.len());
        for (&(from, _, to), &label) in edges.iter().zip(&labels) {
            let from = self.db.node(from);
            let to = self.db.node(to);
            triples.push((from, label, to));
        }
        for &(from, label, to) in &triples {
            self.db.add_edge(from, label, to);
        }
        self.finish_mutation(prev_nodes, &triples, budget);
        Ok(())
    }

    /// Adds an isolated node.  Start-accepting cached extensions gain the
    /// new node's identity pair; nothing else can change.
    pub fn add_node(&mut self) -> NodeId {
        let prev_nodes = self.db.num_nodes();
        let id = self.db.add_node();
        self.finish_mutation(prev_nodes, &[], &QueryBudget::unlimited());
        id
    }

    /// Removes one occurrence of an edge, bumps the revision, refreezes the
    /// adjacency, and repairs every cached view extension DRed-style:
    /// over-delete each cached pair whose product-BFS derivation traverses
    /// the deleted edge (delta sweeps on the *pre-deletion* adjacencies),
    /// then re-derive survivors by restarting the forward product-BFS from
    /// each affected source on the post-deletion graph.  When a parallel
    /// copy of the edge survives, the per-edge support count proves no
    /// answer can change and the repair is skipped outright.
    ///
    /// Readers pinned at pre-deletion revisions are unaffected: extensions
    /// are detached copy-on-write before the over-deletion touches them, and
    /// the revision bump keeps shrunken ad-hoc answers out of older
    /// revisions' cache lookups.
    ///
    /// # Examples
    /// ```
    /// use automata::Alphabet;
    /// use engine::QueryEngine;
    /// use graphdb::GraphDb;
    ///
    /// let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b']).unwrap());
    /// db.add_edge_named("u", "a", "v");
    /// db.add_edge_named("v", "b", "w");
    /// let mut engine = QueryEngine::new(db);
    /// engine.register_view("ab", regexlang::parse("a·b").unwrap());
    /// assert_eq!(engine.view_extension("ab").unwrap().len(), 1);
    ///
    /// let v = engine.db().node_by_name("v").unwrap();
    /// let w = engine.db().node_by_name("w").unwrap();
    /// let b = engine.db().domain().symbol("b").unwrap();
    /// engine.remove_edge(v, b, w);
    /// assert_eq!(engine.view_extension("ab").unwrap().len(), 0);
    /// assert_eq!(engine.stats().view_deletion_repairs, 1);
    /// ```
    ///
    /// # Panics
    /// Panics if the edge is not present in the database.
    pub fn remove_edge(&mut self, from: NodeId, label: automata::Symbol, to: NodeId) {
        self.try_remove_edge(from, label, to).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible variant of [`remove_edge`](Self::remove_edge): a missing
    /// occurrence surfaces as [`EngineError::EdgeNotPresent`] instead of
    /// panicking, with the engine untouched on `Err`.
    pub fn try_remove_edge(
        &mut self,
        from: NodeId,
        label: automata::Symbol,
        to: NodeId,
    ) -> Result<(), EngineError> {
        self.try_remove_edges(&[(from, label, to)])
    }

    /// Removes one occurrence of an edge between named nodes (mirroring
    /// [`add_edge_named`](Self::add_edge_named)).
    ///
    /// # Panics
    /// Panics on unknown node names, a label outside the domain, or an edge
    /// that is not present.
    pub fn remove_edge_named(&mut self, from: &str, label: &str, to: &str) {
        self.try_remove_edge_named(from, label, to).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible variant of [`remove_edge_named`](Self::remove_edge_named):
    /// unknown names, unknown labels, and missing occurrences surface as
    /// [`EngineError`] instead of panicking, with the engine untouched on
    /// `Err`.
    pub fn try_remove_edge_named(
        &mut self,
        from: &str,
        label: &str,
        to: &str,
    ) -> Result<(), EngineError> {
        self.try_remove_edges_named(&[(from, label, to)])
    }

    /// Fallible batch removal between named nodes: every name and label is
    /// resolved before anything mutates, and the resolved batch then runs
    /// through [`try_remove_edges`](Self::try_remove_edges)' whole-batch
    /// validation — on `Err` the engine is untouched.
    pub fn try_remove_edges_named(
        &mut self,
        edges: &[(&str, &str, &str)],
    ) -> Result<(), EngineError> {
        let mut triples = Vec::with_capacity(edges.len());
        for &(from, label, to) in edges {
            let label = self.db.require_label(label)?;
            let from = self.db.require_node(from)?;
            let to = self.db.require_node(to)?;
            triples.push((from, label, to));
        }
        self.try_remove_edges(&triples)
    }

    /// Removes a batch of edge occurrences under a single revision bump,
    /// refreezing the adjacencies once and repairing each cached extension
    /// with one DRed pass over the whole batch (see
    /// [`remove_edge`](Self::remove_edge)).  A triple listed twice removes
    /// two parallel copies.
    ///
    /// # Panics
    /// Panics if any listed occurrence is not present — checked for the
    /// whole batch *before* anything is removed, so a bad batch never
    /// leaves the engine partially mutated.
    pub fn remove_edges(&mut self, edges: &[(NodeId, automata::Symbol, NodeId)]) {
        self.try_remove_edges(edges).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible variant of [`remove_edges`](Self::remove_edges): a missing
    /// occurrence surfaces as [`EngineError::EdgeNotPresent`], checked for
    /// the whole batch before anything mutates.
    pub fn try_remove_edges(
        &mut self,
        edges: &[(NodeId, automata::Symbol, NodeId)],
    ) -> Result<(), EngineError> {
        self.try_remove_edges_budgeted(edges, &QueryBudget::unlimited())
    }

    /// [`try_remove_edges`](Self::try_remove_edges) with a budget over the
    /// DRed repair phase.  Once validation passes the deletion itself always
    /// applies; a budget tripped mid-repair drops the affected views'
    /// cached extensions (`repair_budget_drops`) instead of failing the
    /// call — they re-materialize lazily on next use.
    pub fn try_remove_edges_budgeted(
        &mut self,
        edges: &[(NodeId, automata::Symbol, NodeId)],
        budget: &QueryBudget,
    ) -> Result<(), EngineError> {
        // ordering: Relaxed for every stats counter below — monotone
        // tallies read only by advisory stats()/metrics snapshots; the
        // repaired extensions are published via `&mut self`, not atomics.
        if edges.is_empty() {
            return Ok(());
        }
        // Validate the whole batch up front (so the documented error cannot
        // fire mid-batch and leave a half-mutated engine): tally requested
        // removals per triple and check the multigraph holds enough copies.
        let mut triples: Vec<((NodeId, automata::Symbol, NodeId), usize)> = Vec::new();
        for &edge in edges {
            match triples.iter_mut().find(|(t, _)| *t == edge) {
                Some((_, count)) => *count += 1,
                None => triples.push((edge, 1)),
            }
        }
        for &((from, label, to), count) in &triples {
            let present = self.db.edge_multiplicity(from, label, to);
            if present < count {
                return Err(EngineError::EdgeNotPresent {
                    from,
                    label: label.to_string(),
                    to,
                    requested: count,
                    present,
                });
            }
        }

        // Support-count fast path, decided before mutating: a triple keeping
        // more copies than the batch removes cannot change any answer (every
        // witness through a deleted copy reroutes through a survivor), so it
        // never reaches the DRed pass.
        let needs_repair = self.views.iter().any(|v| v.extension.is_some());
        let mut repair_edges: Vec<(NodeId, automata::Symbol, NodeId)> = Vec::new();
        if needs_repair {
            for &((from, label, to), count) in &triples {
                if self.db.edge_multiplicity(from, label, to) > count {
                    self.stats
                        .deletion_support_skips
                        .fetch_add(count as u64, Ordering::Relaxed);
                } else {
                    repair_edges.push((from, label, to));
                }
            }
        }

        // The over-deletion sweeps must run on the graph the cached
        // extensions are valid for, so freeze the pre-deletion adjacencies
        // before mutating — only when a DRed pass will actually run.  The
        // outgoing side is already frozen, and an incoming freeze left by a
        // preceding insertion repair is still current, so it is reused.
        let old_csrs = (!repair_edges.is_empty()).then(|| {
            let old_in = self.csr_in.take().unwrap_or_else(|| self.db.csr_in());
            (self.csr_out.clone(), old_in)
        });

        for &(from, label, to) in edges {
            let removed = self.db.remove_edge(from, label, to);
            debug_assert!(removed, "batch validated above");
        }
        self.revision += 1;
        self.csr_out = Arc::new(self.db.csr_out());
        self.csr_in = None;
        // Retire the published snapshot; existing reader handles stay valid
        // at their pinned revisions (their extensions and CSR are behind
        // `Arc`s the writer no longer touches).
        self.published = None;

        // Phases 1 and 2, shared with the insertion path: validate + detach
        // (`Arc::make_mut`, so pinned readers keep every pre-deletion pair),
        // then one DRed pass per view on the pool.
        let targets = queue_repair_targets(
            &mut self.views,
            self.revision,
            !repair_edges.is_empty(),
            |_| {},
        );
        if targets.is_empty() {
            return Ok(());
        }
        let mut jobs: Vec<DeletionJob<'_>> = targets
            .into_iter()
            .map(|target| DeletionJob {
                target,
                report: DeletionRepairReport::default(),
                interrupted: None,
            })
            .collect();
        self.stats
            .view_deletion_repairs
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);

        let Some((old_csr_out, old_csr_in)) = old_csrs else {
            // Unreachable in practice: `targets` is non-empty only when
            // `repair_edges` is, and that is exactly when the CSRs froze
            // above.  Degrade by invalidating the queued extensions (they
            // re-materialize on next access) instead of panicking
            // mid-mutation with the graph already changed.
            let queued: Vec<usize> = jobs.iter().map(|job| job.target.view_idx).collect();
            drop(jobs);
            for idx in queued {
                if let Some(view) = self.views.get_mut(idx) {
                    view.extension = None;
                }
            }
            return Ok(());
        };
        let new_csr_out: &CsrAdjacency = &self.csr_out;
        let repair_start = self.telemetry.enabled().then(Instant::now);
        let sweep = budget.to_sweep();
        let progress = SweepState::new();
        shard_repair_jobs(self.config.threads, &self.stats, &mut jobs, |job| {
            match deletion_repair_budgeted(
                &old_csr_out,
                &old_csr_in,
                new_csr_out,
                job.target.nfa,
                job.target.reverse,
                &repair_edges,
                job.target.pairs,
                &sweep,
                &progress,
            ) {
                Ok(report) => job.report = report,
                Err(why) => job.interrupted = Some(why),
            }
        });

        // Fold the per-job work counters gathered inside the workers.
        let (mut overdeleted, mut rederived) = (0u64, 0u64);
        for job in &jobs {
            overdeleted += job.report.overdeleted_pairs;
            rederived += job.report.rederived_sources;
        }
        // A view whose repair was interrupted holds a half-repaired
        // (over-deleted but not re-derived) extension: drop it so the next
        // access re-materializes from scratch.
        let dropped: Vec<usize> = jobs
            .iter()
            .filter(|job| job.interrupted.is_some())
            .map(|job| job.target.view_idx)
            .collect();
        drop(jobs);
        for idx in dropped {
            if let Some(view) = self.views.get_mut(idx) {
                view.extension = None;
            }
            bump(&self.stats.repair_budget_drops);
        }
        self.stats
            .deletion_overdeleted_pairs
            .fetch_add(overdeleted, Ordering::Relaxed);
        self.stats
            .deletion_rederived_sources
            .fetch_add(rederived, Ordering::Relaxed);
        if let Some(start) = repair_start {
            self.telemetry.repair().record_duration(start.elapsed());
        }
        Ok(())
    }

    fn finish_mutation(
        &mut self,
        prev_num_nodes: usize,
        new_edges: &[(NodeId, automata::Symbol, NodeId)],
        budget: &QueryBudget,
    ) {
        // ordering: Relaxed for every stats counter below — monotone
        // tallies read only by advisory stats()/metrics snapshots; the
        // repaired extensions are published via `&mut self`, not atomics.
        self.revision += 1;
        self.csr_out = Arc::new(self.db.csr_out());
        // Retire the published snapshot; existing reader handles stay valid
        // at their pinned revision.  The shared answer cache is NOT cleared
        // (pinned readers may still hit it): revision-stale entries are
        // evicted lazily on lookup and preferentially on capacity pressure.
        self.published = None;

        // The incoming adjacency only exists to serve the backward delta
        // sweeps below; freeze it only when some cached extension needs
        // repairing against real new edges.
        let needs_delta =
            !new_edges.is_empty() && self.views.iter().any(|v| v.extension.is_some());
        self.csr_in = needs_delta.then(|| self.db.csr_in());

        // Phase 1: validate each cached extension, cover identity pairs of
        // nodes created by this mutation, and queue the extensions needing
        // delta repair.  A start-accepting view answers (v, v) for every
        // node; cover exactly the nodes created by this mutation — the
        // cached extension already covers every pre-existing node, so
        // re-inserting those would be O(V·views) of wasted work per
        // mutation.
        let num_nodes = self.db.num_nodes();
        let stats = &self.stats;
        let targets = queue_repair_targets(
            &mut self.views,
            self.revision,
            !new_edges.is_empty(),
            |entry| {
                if num_nodes > prev_num_nodes && entry.nfa.any_final(entry.nfa.start()) {
                    let (_, pairs) = entry.extension.as_mut().expect("validated by the caller");
                    let pairs = Arc::make_mut(pairs);
                    // New node ids sort past every cached pair, so this
                    // lands on the sorted-vector append fast path.
                    pairs.extend((prev_num_nodes..num_nodes).map(|v| (v, v)));
                    stats
                        .identity_cover_pairs
                        .fetch_add((num_nodes - prev_num_nodes) as u64, Ordering::Relaxed);
                }
            },
        );
        if targets.is_empty() {
            return;
        }
        let mut jobs: Vec<InsertionJob<'_>> = targets
            .into_iter()
            .map(|target| InsertionJob { target, interrupted: None })
            .collect();
        self.stats
            .view_delta_repairs
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);

        // Phase 2: one delta sweep per (view, inserted edge) on the pool.
        let csr_out: &CsrAdjacency = &self.csr_out;
        let csr_in = self.csr_in.as_ref().expect("frozen above when edges exist");
        let repair_start = self.telemetry.enabled().then(Instant::now);
        let sweep = budget.to_sweep();
        let progress = SweepState::new();
        shard_repair_jobs(self.config.threads, &self.stats, &mut jobs, |job| {
            job.interrupted =
                repair_entry_budgeted(csr_out, csr_in, &mut job.target, new_edges, &sweep, &progress)
                    .err();
        });

        // A view whose repair was interrupted may be missing delta pairs:
        // drop its extension so the next access re-materializes.
        let dropped: Vec<usize> = jobs
            .iter()
            .filter(|job| job.interrupted.is_some())
            .map(|job| job.target.view_idx)
            .collect();
        drop(jobs);
        for idx in dropped {
            if let Some(view) = self.views.get_mut(idx) {
                view.extension = None;
            }
            bump(&self.stats.repair_budget_drops);
        }
        if let Some(start) = repair_start {
            self.telemetry.repair().record_duration(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Alphabet;

    fn chain_engine() -> QueryEngine {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
        db.add_edge_named("n0", "a", "n1");
        db.add_edge_named("n1", "b", "n2");
        db.add_edge_named("n2", "a", "n1");
        db.add_edge_named("n1", "c", "n1");
        QueryEngine::new(db)
    }

    #[test]
    fn eval_matches_graphdb_and_caches_answers() {
        let mut engine = chain_engine();
        let direct = graphdb::eval_str(engine.db(), "a·(b·a+c)*");
        let first = engine.eval_str("a·(b·a+c)*");
        assert_eq!(*first, direct);
        let second = engine.eval_str("a·(b·a+c)*");
        assert!(Arc::ptr_eq(&first, &second));
        let stats = engine.stats();
        assert_eq!((stats.answer_hits, stats.answer_misses), (1, 1));
        assert_eq!(stats.compile_misses, 1);
    }

    #[test]
    fn mutation_invalidates_ad_hoc_answers() {
        let mut engine = chain_engine();
        let before = engine.eval_str("a·b").len();
        engine.add_edge_named("n1", "a", "n1");
        assert_eq!(engine.revision(), 1);
        let after = engine.eval_str("a·b").len();
        assert!(after > before, "n1-a->n1 then n1-b->n2 adds (n1, n2)");
        assert_eq!(engine.stats().answer_misses, 2);
        // The revision-0 entry was evicted by the revision-1 lookup, not
        // left to pin cache capacity.
        assert_eq!(engine.stats().answer_stale_evictions, 1);
    }

    #[test]
    fn view_extensions_are_cached_and_repaired() {
        let mut engine = chain_engine();
        engine.register_view("e2", regexlang::parse("a·c*·b").unwrap());
        let before = engine.view_extension("e2").unwrap().clone();
        assert_eq!(before, graphdb::eval_str(engine.db(), "a·c*·b"));
        // Cached on second access.
        engine.view_extension("e2");
        assert_eq!(engine.stats().view_cache_hits, 1);

        // n1-b->n0 gives every a·c*-path into n1 a new b-exit: the repair
        // must actually grow the extension.
        engine.add_edge_named("n1", "b", "n0");
        let repaired = engine.view_extension("e2").unwrap().clone();
        assert_eq!(repaired, graphdb::eval_str(engine.db(), "a·c*·b"));
        assert!(repaired.len() > before.len());
        assert!(before.is_subset(&repaired));
        let stats = engine.stats();
        assert_eq!(stats.view_delta_repairs, 1);
        assert_eq!(stats.view_full_materializations, 1, "never re-materialized");
    }

    #[test]
    fn unmaterialized_views_are_not_repaired() {
        let mut engine = chain_engine();
        engine.register_view("e1", regexlang::parse("a").unwrap());
        engine.add_edge_named("n0", "a", "n2");
        assert_eq!(engine.stats().view_delta_repairs, 0);
        let ext = engine.view_extension("e1").unwrap().clone();
        assert_eq!(ext, graphdb::eval_str(engine.db(), "a"));
    }

    #[test]
    fn identity_views_cover_nodes_created_after_materialization() {
        let mut engine = chain_engine();
        engine.register_view("eps", regexlang::parse("c*").unwrap());
        // Three nodes, each with its identity pair; the c-loop at n1 adds
        // nothing new.
        assert_eq!(engine.view_extension("eps").unwrap().len(), 3);
        // add_edge_named creates a brand-new node n9 after materialization.
        engine.add_edge_named("n9", "c", "n1");
        let ext = engine.view_extension("eps").unwrap().clone();
        assert_eq!(ext, graphdb::eval_str(engine.db(), "c*"));
        assert_eq!(engine.stats().view_full_materializations, 1);
    }

    #[test]
    fn identity_repair_covers_only_nodes_created_by_the_mutation() {
        let mut engine = chain_engine();
        engine.register_view("eps", regexlang::parse("c*").unwrap());
        engine.view_extension("eps");
        // Mutations among pre-existing nodes insert no identity pairs at
        // all: the O(V·views)-per-mutation re-cover loop is gone.
        engine.add_edge_named("n0", "c", "n2");
        engine.add_edge_named("n2", "c", "n0");
        assert_eq!(engine.stats().identity_cover_pairs, 0);
        // A mutation creating two nodes repairs exactly those two.
        engine.add_edge_named("p", "c", "q");
        assert_eq!(engine.stats().identity_cover_pairs, 2);
        let ext = engine.view_extension("eps").unwrap().clone();
        assert_eq!(ext, graphdb::eval_str(engine.db(), "c*"));
        // add_node repairs exactly the one created node.
        engine.add_node();
        assert_eq!(engine.stats().identity_cover_pairs, 3);
        let ext = engine.view_extension("eps").unwrap().clone();
        assert_eq!(ext, graphdb::eval_str(engine.db(), "c*"));
        assert_eq!(engine.stats().view_full_materializations, 1);
    }

    #[test]
    fn edge_removal_repairs_cached_extensions() {
        let mut engine = chain_engine();
        engine.register_view("e2", regexlang::parse("a·c*·b").unwrap());
        let before = engine.view_extension("e2").unwrap().clone();
        assert!(!before.is_empty());

        // Deleting the only a-edge into n1 severs every a·c*·b-path.
        engine.remove_edge_named("n0", "a", "n1");
        assert_eq!(engine.revision(), 1);
        let repaired = engine.view_extension("e2").unwrap().clone();
        assert_eq!(repaired, graphdb::eval_str(engine.db(), "a·c*·b"));
        assert!(repaired.len() < before.len());
        let stats = engine.stats();
        assert_eq!(stats.view_deletion_repairs, 1);
        assert!(stats.deletion_overdeleted_pairs > 0);
        assert_eq!(stats.view_full_materializations, 1, "never re-materialized");
    }

    #[test]
    fn deletion_rederives_pairs_with_surviving_witnesses() {
        // n1 reaches n1 via c and via b·a; deleting the c-loop must keep
        // (n1, n1) etc. alive through the b·a witnesses.
        let mut engine = chain_engine();
        engine.register_view("q", regexlang::parse("a·(b·a+c)*").unwrap());
        engine.view_extension("q");
        engine.remove_edge_named("n1", "c", "n1");
        let repaired = engine.view_extension("q").unwrap().clone();
        assert_eq!(repaired, graphdb::eval_str(engine.db(), "a·(b·a+c)*"));
        let stats = engine.stats();
        assert!(stats.deletion_rederived_sources > 0, "survivors were re-derived");
    }

    #[test]
    fn support_counts_skip_repairs_for_duplicated_edges() {
        let mut engine = chain_engine();
        engine.register_view("v", regexlang::parse("a·b").unwrap());
        let a = engine.db().domain().symbol("a").unwrap();
        // A parallel copy of n0-a->n1; deleting one copy keeps full support.
        engine.add_edge(0, a, 1);
        let before = engine.view_extension("v").unwrap().clone();
        engine.remove_edge(0, a, 1);
        assert_eq!(engine.revision(), 2);
        let after = engine.view_extension("v").unwrap().clone();
        assert_eq!(after, before);
        let stats = engine.stats();
        assert_eq!(stats.deletion_support_skips, 1);
        assert_eq!(stats.view_deletion_repairs, 0, "no DRed pass ran");
        assert_eq!(stats.deletion_overdeleted_pairs, 0);
    }

    #[test]
    fn batch_removal_bumps_one_revision_and_repairs_once() {
        let mut engine = chain_engine();
        engine.register_view("q", regexlang::parse("a·(b·a+c)*").unwrap());
        engine.view_extension("q");
        let a = engine.db().domain().symbol("a").unwrap();
        let c = engine.db().domain().symbol("c").unwrap();
        engine.remove_edges(&[(2, a, 1), (1, c, 1)]);
        assert_eq!(engine.revision(), 1);
        let ext = engine.view_extension("q").unwrap().clone();
        assert_eq!(ext, graphdb::eval_str(engine.db(), "a·(b·a+c)*"));
        assert_eq!(engine.stats().view_deletion_repairs, 1);
    }

    #[test]
    fn mixed_insertions_and_deletions_keep_extensions_exact() {
        let mut engine = chain_engine();
        engine.register_view("q", regexlang::parse("a·(b·a+c)*").unwrap());
        engine.view_extension("q");
        engine.add_edge_named("n2", "c", "n0");
        engine.remove_edge_named("n1", "b", "n2");
        engine.add_edge_named("n0", "b", "n2");
        engine.remove_edge_named("n2", "c", "n0");
        assert_eq!(engine.revision(), 4);
        let ext = engine.view_extension("q").unwrap().clone();
        assert_eq!(ext, graphdb::eval_str(engine.db(), "a·(b·a+c)*"));
        let stats = engine.stats();
        assert_eq!(stats.view_full_materializations, 1, "repairs only");
        assert_eq!(stats.view_delta_repairs, 2);
        assert_eq!(stats.view_deletion_repairs, 2);
    }

    #[test]
    fn deletion_shrinks_ad_hoc_answers_at_the_new_revision() {
        let mut engine = chain_engine();
        let before = engine.eval_str("a·b").len();
        assert!(before > 0);
        engine.remove_edge_named("n1", "b", "n2");
        let after = engine.eval_str("a·b").len();
        assert!(after < before, "the answer must shrink");
        // The revision-0 cached answer was evicted by the revision-1 lookup
        // — a shrunken answer is never served from a stale entry.
        assert_eq!(engine.stats().answer_stale_evictions, 1);
    }

    #[test]
    #[should_panic(expected = "is not present")]
    fn removing_a_missing_edge_panics() {
        let mut engine = chain_engine();
        let b = engine.db().domain().symbol("b").unwrap();
        engine.remove_edge(0, b, 2);
    }

    #[test]
    fn bad_batches_panic_before_mutating_anything() {
        let mut engine = chain_engine();
        engine.register_view("v", regexlang::parse("a·b").unwrap());
        let before = engine.view_extension("v").unwrap().clone();
        let edges_before = engine.db().num_edges();
        let a = engine.db().domain().symbol("a").unwrap();
        let b = engine.db().domain().symbol("b").unwrap();
        // First edge exists, second does not: the batch must be rejected as
        // a whole, leaving database, revision, and caches untouched.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.remove_edges(&[(0, a, 1), (0, b, 2)]);
        }));
        assert!(result.is_err(), "bad batch must panic");
        assert_eq!(engine.db().num_edges(), edges_before, "nothing was removed");
        assert_eq!(engine.revision(), 0);
        let ext = engine.view_extension("v").unwrap().clone();
        assert_eq!(ext, before);
        assert_eq!(ext, graphdb::eval_str(engine.db(), "a·b"));
    }

    #[test]
    fn duplicate_triples_in_a_batch_remove_parallel_copies() {
        let mut engine = chain_engine();
        engine.register_view("v", regexlang::parse("a·b").unwrap());
        engine.view_extension("v");
        let a = engine.db().domain().symbol("a").unwrap();
        engine.add_edge(0, a, 1); // second parallel copy of n0-a->n1
        // Removing both copies in one batch: support drops to zero, so the
        // DRed pass (not the support skip) must run, and the answer shrinks.
        engine.remove_edges(&[(0, a, 1), (0, a, 1)]);
        let ext = engine.view_extension("v").unwrap().clone();
        assert_eq!(ext, graphdb::eval_str(engine.db(), "a·b"));
        let stats = engine.stats();
        assert_eq!(stats.deletion_support_skips, 0);
        assert_eq!(stats.view_deletion_repairs, 1);
    }

    #[test]
    fn snapshots_pin_their_revision_under_writer_deletions() {
        let mut engine = chain_engine();
        engine.register_view("e2", regexlang::parse("a·c*·b").unwrap());
        let snapshot = engine.publish_snapshot();
        let at_publish = snapshot.eval_str("a·c*·b");
        let ext_at_publish = snapshot.view_extension("e2").unwrap().clone();
        assert!(!ext_at_publish.is_empty());

        // The writer over-deletes copy-on-write; the snapshot's captured
        // pairs must keep every pre-deletion answer.
        engine.remove_edge_named("n0", "a", "n1");
        let writer_ext = engine.view_extension("e2").unwrap().clone();
        assert!(writer_ext.len() < ext_at_publish.len());
        assert_eq!(*snapshot.view_extension("e2").unwrap(), ext_at_publish);
        assert_eq!(*snapshot.eval_str("a·c*·b"), *at_publish);
        assert_eq!(snapshot.revision(), 0);
        assert_eq!(engine.revision(), 1);
        // The writer's own reads see the shrunken revision.
        assert_eq!(*engine.eval_str("a·c*·b"), writer_ext);
    }

    #[test]
    fn materialized_views_match_graphdb_materialization() {
        let mut engine = chain_engine();
        let defs = [
            ("e1", "a"),
            ("e2", "a·c*·b"),
            ("e3", "c"),
        ];
        for (name, src) in defs {
            engine.register_view(name, regexlang::parse(src).unwrap());
        }
        let via_engine = engine.materialized_views();
        let reference = MaterializedViews::materialize_regexes(
            engine.db(),
            &defs
                .iter()
                .map(|(n, s)| (n.to_string(), regexlang::parse(s).unwrap()))
                .collect::<Vec<_>>(),
        );
        for (name, _) in defs {
            assert_eq!(via_engine.extension(name), reference.extension(name));
        }
        assert!(via_engine
            .view_alphabet()
            .is_compatible(reference.view_alphabet()));
        // Cached per revision.
        let again = engine.materialized_views();
        assert!(Arc::ptr_eq(&via_engine, &again));
    }

    #[test]
    fn eval_over_views_matches_direct_evaluation_of_exact_rewriting() {
        let mut engine = chain_engine();
        for (name, src) in [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")] {
            engine.register_view(name, regexlang::parse(src).unwrap());
        }
        let views = engine.materialized_views();
        let rewriting = regexlang::thompson(
            &regexlang::parse("e2*·e1·e3*").unwrap(),
            views.view_alphabet(),
        )
        .unwrap();
        drop(views);
        let via_views = engine.eval_over_views(&rewriting);
        assert_eq!(via_views, graphdb::eval_str(engine.db(), "a·(b·a+c)*"));
    }

    #[test]
    fn batch_insertion_bumps_one_revision_and_repairs_once_per_edge() {
        let mut engine = chain_engine();
        engine.register_view("v", regexlang::parse("a·b").unwrap());
        engine.view_extension("v");
        let a = engine.db().domain().symbol("a").unwrap();
        let b = engine.db().domain().symbol("b").unwrap();
        engine.add_edges(&[(2, a, 0), (0, b, 2)]);
        assert_eq!(engine.revision(), 1);
        let ext = engine.view_extension("v").unwrap().clone();
        assert_eq!(ext, graphdb::eval_str(engine.db(), "a·b"));
    }

    #[test]
    fn re_registering_identical_definition_keeps_the_cache() {
        let mut engine = chain_engine();
        engine.register_view("v", regexlang::parse("a·b").unwrap());
        engine.view_extension("v");
        engine.register_view("v", regexlang::parse("a·b").unwrap());
        engine.view_extension("v");
        let stats = engine.stats();
        assert_eq!(stats.view_full_materializations, 1);
        assert_eq!(stats.view_cache_hits, 1);
        // A changed definition drops the cached extension.
        engine.register_view("v", regexlang::parse("a·c").unwrap());
        let ext = engine.view_extension("v").unwrap().clone();
        assert_eq!(ext, graphdb::eval_str(engine.db(), "a·c"));
        assert_eq!(engine.stats().view_full_materializations, 2);
    }

    /// Distinct queries `a·c^i` (i repetitions of `·c`) for cache-pressure
    /// tests.
    fn distinct_query(i: usize) -> regexlang::Regex {
        regexlang::parse(&format!("a{}", "·c".repeat(i))).unwrap()
    }

    #[test]
    fn answer_cache_respects_the_lru_bound() {
        let mut engine = QueryEngine::with_config(
            chain_engine().db().clone(),
            EngineConfig {
                answer_cache_capacity: 8,
                ..EngineConfig::default()
            },
        );
        for i in 0..50 {
            engine.eval_regex(&distinct_query(i));
            assert!(
                engine.answer_cache_len() <= 8,
                "cache grew to {} after query {i}",
                engine.answer_cache_len()
            );
        }
        let stats = engine.stats();
        assert_eq!(engine.answer_cache_len(), 8);
        assert_eq!(stats.answer_evictions, 50 - 8);
        assert_eq!(stats.answer_misses, 50);
    }

    #[test]
    fn answer_cache_evicts_least_recently_used_first() {
        let mut engine = QueryEngine::with_config(
            chain_engine().db().clone(),
            EngineConfig {
                answer_cache_capacity: 3,
                ..EngineConfig::default()
            },
        );
        for i in 0..3 {
            engine.eval_regex(&distinct_query(i)); // cache = {0, 1, 2}
        }
        engine.eval_regex(&distinct_query(0)); // touch 0: LRU order 1 < 2 < 0
        engine.eval_regex(&distinct_query(3)); // evicts 1
        let hits_before = engine.stats().answer_hits;
        engine.eval_regex(&distinct_query(0));
        engine.eval_regex(&distinct_query(2));
        engine.eval_regex(&distinct_query(3));
        assert_eq!(engine.stats().answer_hits, hits_before + 3, "survivors hit");
        let misses_before = engine.stats().answer_misses;
        engine.eval_regex(&distinct_query(1));
        assert_eq!(engine.stats().answer_misses, misses_before + 1, "victim was evicted");
    }

    #[test]
    fn stale_answers_never_pin_cache_capacity() {
        let mut engine = QueryEngine::with_config(
            chain_engine().db().clone(),
            EngineConfig {
                answer_cache_capacity: 4,
                ..EngineConfig::default()
            },
        );
        for i in 0..4 {
            engine.eval_regex(&distinct_query(i)); // fill at revision 0
        }
        engine.add_edge_named("n0", "c", "n2"); // revision 1: all 4 entries stale
        // Four fresh queries at revision 1: capacity pressure must fall on
        // the stale entries, never on a live revision-1 entry.
        for i in 4..8 {
            engine.eval_regex(&distinct_query(i));
            assert!(engine.answer_cache_len() <= 4);
        }
        let hits_before = engine.stats().answer_hits;
        for i in 4..8 {
            engine.eval_regex(&distinct_query(i));
        }
        assert_eq!(
            engine.stats().answer_hits,
            hits_before + 4,
            "all four live answers must still be resident"
        );
    }

    #[test]
    fn zero_capacity_disables_answer_caching() {
        let mut engine = QueryEngine::with_config(
            chain_engine().db().clone(),
            EngineConfig {
                answer_cache_capacity: 0,
                ..EngineConfig::default()
            },
        );
        engine.eval_str("a·b");
        engine.eval_str("a·b");
        assert_eq!(engine.answer_cache_len(), 0);
        assert_eq!(engine.stats().answer_misses, 2);
        assert_eq!(engine.stats().answer_evictions, 0);
    }

    #[test]
    fn eval_dfa_over_views_interns_the_rewriting_once() {
        let mut engine = chain_engine();
        for (name, src) in [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")] {
            engine.register_view(name, regexlang::parse(src).unwrap());
        }
        let views = engine.materialized_views();
        let rewriting = automata::determinize(
            &regexlang::thompson(
                &regexlang::parse("e2*·e1·e3*").unwrap(),
                views.view_alphabet(),
            )
            .unwrap(),
        );
        drop(views);
        let first = engine.eval_dfa_over_views(&rewriting);
        assert_eq!(first, graphdb::eval_str(engine.db(), "a·(b·a+c)*"));
        let compiles = engine.stats().compile_misses;
        let second = engine.eval_dfa_over_views(&rewriting);
        assert_eq!(first, second);
        assert_eq!(
            engine.stats().compile_misses,
            compiles,
            "second evaluation must reuse the interned dense rewriting"
        );
        assert!(engine.stats().compile_hits > 0);
    }

    #[test]
    fn forced_parallel_config_is_exercised_on_small_graphs() {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
        db.add_edge_named("n0", "a", "n1");
        db.add_edge_named("n1", "b", "n2");
        db.add_edge_named("n2", "a", "n1");
        let mut engine = QueryEngine::with_config(
            db,
            EngineConfig {
                threads: 4,
                parallel_threshold: 0,
                ..EngineConfig::default()
            },
        );
        let ans = engine.eval_str("a·b·a");
        assert_eq!(*ans, graphdb::eval_str(engine.db(), "a·b·a"));
        assert_eq!(engine.stats().parallel_evals, 1);
        assert_eq!(engine.stats().sequential_evals, 0);
    }

    #[test]
    fn published_snapshot_is_reused_until_the_state_changes() {
        let mut engine = chain_engine();
        let s1 = engine.publish_snapshot();
        let s2 = engine.publish_snapshot();
        assert!(Arc::ptr_eq(&s1, &s2), "same revision, same snapshot");
        // A mutation retires the published snapshot…
        engine.add_edge_named("n0", "c", "n1");
        let s3 = engine.publish_snapshot();
        assert!(!Arc::ptr_eq(&s1, &s3));
        assert_eq!((s1.revision(), s3.revision()), (0, 1));
        // …and so does a view-set change, even at the same revision.
        engine.register_view("v", regexlang::parse("a").unwrap());
        let s4 = engine.publish_snapshot();
        assert!(!Arc::ptr_eq(&s3, &s4));
        assert_eq!(s4.revision(), 1);
        assert_eq!(s4.view_names().collect::<Vec<_>>(), ["v"]);
    }

    #[test]
    fn snapshots_pin_their_revision_under_writer_mutations() {
        let mut engine = chain_engine();
        engine.register_view("e2", regexlang::parse("a·c*·b").unwrap());
        let snapshot = engine.publish_snapshot();
        let at_publish = snapshot.eval_str("a·c*·b");
        let ext_at_publish = snapshot.view_extension("e2").unwrap().clone();

        // The writer repairs its extension copy-on-write; the snapshot's
        // captured pairs and CSR must not move.
        engine.add_edge_named("n1", "b", "n0");
        let writer_ext = engine.view_extension("e2").unwrap().clone();
        assert!(writer_ext.len() > ext_at_publish.len());
        assert_eq!(*snapshot.view_extension("e2").unwrap(), ext_at_publish);
        assert_eq!(*snapshot.eval_str("a·c*·b"), *at_publish);
        assert_eq!(snapshot.revision(), 0);
        assert_eq!(engine.revision(), 1);
        // The writer's own reads see the new revision.
        assert_eq!(*engine.eval_str("a·c*·b"), writer_ext);
    }
}
