//! Typed errors for every engine path reachable from untrusted input.
//!
//! Library-internal invariant violations still panic (a bug should fail
//! loudly), but everything a *request* can trigger — parse failures, unknown
//! labels or nodes, absent edges, incompatible alphabets, exhausted query
//! budgets — surfaces as an [`EngineError`] so a serving layer can map it to
//! a structured wire response instead of tearing down a connection.
//!
//! The `Display` strings deliberately preserve the historical panic-message
//! substrings ("not a label", "not in domain", "is not present", "no node
//! named"): the panicking convenience methods now delegate to the fallible
//! ones and re-panic with `Display`, so existing `should_panic` pins and
//! downstream log scrapers keep matching.

use graphdb::{GraphError, NodeId, SweepInterrupt};

/// Structured failure of an engine operation on user-supplied input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query text did not parse.
    Parse {
        /// The parser's message.
        message: String,
    },
    /// The query or view definition mentions a symbol outside the database
    /// domain.
    UnknownLabel {
        /// The offending symbol name.
        label: String,
    },
    /// A node name did not resolve.
    UnknownNode {
        /// The offending name.
        name: String,
    },
    /// An edge endpoint id does not exist.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Current node count of the database.
        num_nodes: usize,
    },
    /// A removal batch listed more occurrences of an edge than the
    /// multigraph holds.  Reported for the whole batch before anything
    /// mutates (validate-before-mutate).
    EdgeNotPresent {
        /// Source node of the missing edge.
        from: NodeId,
        /// Label of the missing edge (rendered).
        label: String,
        /// Target node of the missing edge.
        to: NodeId,
        /// Occurrences the batch asked to remove.
        requested: usize,
        /// Occurrences actually present.
        present: usize,
    },
    /// An automaton was evaluated over an incompatible alphabet.
    IncompatibleAlphabet {
        /// What was incompatible.
        message: String,
    },
    /// The query's wall-clock deadline passed mid-evaluation.
    DeadlineExceeded {
        /// Product pairs visited before the interrupt (partial-work stat).
        visited: u64,
    },
    /// The query was cancelled (e.g. its client disconnected).
    Cancelled {
        /// Product pairs visited before the interrupt.
        visited: u64,
    },
    /// The query's visited-pair cap was reached.
    VisitBudgetExceeded {
        /// Product pairs visited before the interrupt.
        visited: u64,
    },
    /// An [`crate::EngineConfig`] failed validation.
    InvalidConfig {
        /// Which knob was rejected and why.
        message: String,
    },
}

impl EngineError {
    /// Stable machine-readable code for the wire protocol (`error.code` in
    /// the service's JSON responses).
    pub fn code(&self) -> &'static str {
        match self {
            EngineError::Parse { .. } => "parse_error",
            EngineError::UnknownLabel { .. } => "unknown_label",
            EngineError::UnknownNode { .. } => "unknown_node",
            EngineError::NodeOutOfRange { .. } => "node_out_of_range",
            EngineError::EdgeNotPresent { .. } => "edge_not_present",
            EngineError::IncompatibleAlphabet { .. } => "incompatible_alphabet",
            EngineError::DeadlineExceeded { .. } => "deadline_exceeded",
            EngineError::Cancelled { .. } => "cancelled",
            EngineError::VisitBudgetExceeded { .. } => "visit_budget_exceeded",
            EngineError::InvalidConfig { .. } => "invalid_config",
        }
    }

    /// Whether this error is a cooperative budget interrupt (the request was
    /// well-formed; it just ran out of budget) rather than a bad input.
    pub fn is_budget_interrupt(&self) -> bool {
        matches!(
            self,
            EngineError::DeadlineExceeded { .. }
                | EngineError::Cancelled { .. }
                | EngineError::VisitBudgetExceeded { .. }
        )
    }

    /// Maps a sweep interrupt plus its partial-work count to the
    /// corresponding error variant.
    pub fn from_interrupt(interrupt: SweepInterrupt, visited: u64) -> Self {
        match interrupt {
            SweepInterrupt::DeadlineExceeded => EngineError::DeadlineExceeded { visited },
            SweepInterrupt::Cancelled => EngineError::Cancelled { visited },
            SweepInterrupt::VisitLimit => EngineError::VisitBudgetExceeded { visited },
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Parse { message } => write!(f, "query must parse: {message}"),
            EngineError::UnknownLabel { label } => {
                write!(
                    f,
                    "query mentions `{label}` which is not a label of the database domain"
                )
            }
            EngineError::UnknownNode { name } => write!(f, "no node named `{name}`"),
            EngineError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (database has {num_nodes} node(s))")
            }
            EngineError::EdgeNotPresent {
                from,
                label,
                to,
                requested,
                present,
            } => {
                write!(
                    f,
                    "edge {from} -{label}-> {to} is not present \
                     ({requested} removal(s) requested, {present} present)"
                )
            }
            EngineError::IncompatibleAlphabet { message } => {
                write!(f, "incompatible alphabet: {message}")
            }
            EngineError::DeadlineExceeded { visited } => {
                write!(f, "deadline exceeded after visiting {visited} product pair(s)")
            }
            EngineError::Cancelled { visited } => {
                write!(f, "cancelled after visiting {visited} product pair(s)")
            }
            EngineError::VisitBudgetExceeded { visited } => {
                write!(f, "visit budget exceeded after {visited} product pair(s)")
            }
            EngineError::InvalidConfig { message } => {
                write!(f, "invalid engine config: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GraphError> for EngineError {
    fn from(err: GraphError) -> Self {
        match err {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                EngineError::NodeOutOfRange { node, num_nodes }
            }
            GraphError::LabelOutOfDomain { label, .. } => EngineError::UnknownLabel {
                // GraphError renders names as `name`; strip for the bare label.
                label: label.trim_matches('`').to_string(),
            },
            GraphError::UnknownNode { name } => EngineError::UnknownNode { name },
        }
    }
}

impl From<regexlang::ParseError> for EngineError {
    fn from(err: regexlang::ParseError) -> Self {
        EngineError::Parse {
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_the_historical_panic_substrings() {
        let cases = [
            (
                EngineError::UnknownLabel { label: "zz".into() },
                "not a label",
            ),
            (
                EngineError::UnknownNode { name: "ghost".into() },
                "no node named `ghost`",
            ),
            (
                EngineError::NodeOutOfRange { node: 9, num_nodes: 3 },
                "out of range",
            ),
            (
                EngineError::EdgeNotPresent {
                    from: 0,
                    label: "a".into(),
                    to: 1,
                    requested: 2,
                    present: 1,
                },
                "is not present",
            ),
        ];
        for (err, substring) in cases {
            assert!(
                err.to_string().contains(substring),
                "{err} must contain {substring:?}"
            );
        }
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let errs = [
            EngineError::Parse { message: String::new() },
            EngineError::UnknownLabel { label: String::new() },
            EngineError::UnknownNode { name: String::new() },
            EngineError::NodeOutOfRange { node: 0, num_nodes: 0 },
            EngineError::EdgeNotPresent {
                from: 0,
                label: String::new(),
                to: 0,
                requested: 0,
                present: 0,
            },
            EngineError::IncompatibleAlphabet { message: String::new() },
            EngineError::DeadlineExceeded { visited: 0 },
            EngineError::Cancelled { visited: 0 },
            EngineError::VisitBudgetExceeded { visited: 0 },
            EngineError::InvalidConfig { message: String::new() },
        ];
        let codes: std::collections::BTreeSet<&str> = errs.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), errs.len(), "codes must be distinct");
        assert!(errs[6].is_budget_interrupt());
        assert!(!errs[0].is_budget_interrupt());
    }

    #[test]
    fn graph_errors_map_onto_engine_variants() {
        let err: EngineError = GraphError::LabelOutOfDomain {
            label: "`train`".into(),
            domain: "{a}".into(),
        }
        .into();
        assert_eq!(err, EngineError::UnknownLabel { label: "train".into() });
        let err: EngineError = GraphError::UnknownNode { name: "x".into() }.into();
        assert_eq!(err.code(), "unknown_node");
    }
}
