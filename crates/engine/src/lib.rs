//! # engine — a parallel, caching, incrementally-maintained RPQ query engine
//!
//! The rest of the workspace answers regular path queries with one-shot
//! library calls: `rpq::materialize_views` re-evaluates every view from
//! scratch per database, and `graphdb::eval_dense` runs its independent
//! per-source product-BFS sweeps on a single thread.  This crate packages
//! the paper's central workload — RPQs over a database and over materialized
//! view extensions (§4 of Calvanese–De Giacomo–Lenzerini–Vardi, PODS'99) —
//! as a stateful [`QueryEngine`] with three cooperating mechanisms:
//!
//! ## Parallel evaluation
//!
//! RPQ evaluation ([`graphdb::eval_csr`]) runs one independent product-BFS
//! per source node over a shared read-only [`automata::DenseNfa`] and CSR
//! adjacency.  [`eval_csr_parallel`] shards the source range across a
//! hand-rolled scoped-thread work pool (`std::thread::scope` plus an atomic
//! chunk cursor — the build environment has no external crates): each worker
//! owns an [`graphdb::EvalScratch`] and a private answer buffer, claims
//! chunks of sources until the range is drained, and the buffers are merged
//! into the answer set at the end.  Workers only *read* shared state, so the
//! sharded evaluation is answer-identical to the sequential one by
//! construction (and pinned to it by differential tests).
//!
//! ## The caches and the revision counter
//!
//! The engine owns its [`graphdb::GraphDb`] together with the frozen CSR
//! adjacencies (outgoing for forward sweeps, always current; incoming
//! frozen on demand for the backward sweeps of delta maintenance) and a
//! monotone **revision** counter that bumps on every mutation.  Three
//! caches hang off this state:
//!
//! * a **compile cache** ([`CompileCache`]): frozen [`automata::DenseNfa`]s
//!   keyed by a 128-bit fingerprint of the regex (rendering + alphabet) or
//!   NFA (structure + alphabet).  Freezing — ε-closure precomputation and
//!   CSR layout — happens once per distinct query/view/rewriting automaton,
//!   no matter how many times or over how many revisions it is evaluated.
//! * a **view-extension cache**: each registered view stores its
//!   materialized extension tagged with the revision it is valid at
//!   (conceptually keyed by `(db revision, view name)`).  Extensions are
//!   materialized lazily, repaired incrementally on mutation (below), and
//!   only re-materialized from scratch when no valid cached state exists.
//! * an **answer cache**: ad-hoc query answers keyed by
//!   `(fingerprint, revision)`, invalidated wholesale on mutation.
//!
//! ## Incremental maintenance under edge insertion
//!
//! The engine's mutation surface is insert-only ([`QueryEngine::add_edge`] /
//! [`QueryEngine::add_edges`] — "remove-free"), which makes RPQ answers
//! *monotone*: inserting an edge only ever adds pairs.  On insertion of
//! `u --a--> v` the engine repairs every cached view extension with a
//! **delta product-BFS** ([`delta_pairs`]) instead of re-materializing:
//! every new answer pair crosses the new edge, so for each automaton
//! transition `q --a--> q'`:
//!
//! * a *backward* sweep over the incoming CSR and the reversed ε-closed
//!   transition table ([`automata::DenseReverse`]) finds the sources `x`
//!   with `(x, start) →* (u, q)`, and
//! * a *forward* sweep from `(v, q')` (memoized per `q'`) finds the targets
//!   `y` from which acceptance is reachable;
//!
//! their cross product is exactly the set of candidate new pairs, and both
//! sweeps run over the *updated* graph so paths crossing the new edge
//! several times are found too.  Cost is `O(|Q|·(V+E)·|Q|)` per inserted
//! edge versus `O(V·(V+E)·|Q|)` for a from-scratch re-materialization — the
//! win the `engine` criterion bench and `BENCH_rpq.json` track.
//!
//! ```
//! use automata::Alphabet;
//! use engine::QueryEngine;
//! use graphdb::GraphDb;
//!
//! let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
//! db.add_edge_named("n0", "a", "n1");
//! db.add_edge_named("n1", "b", "n2");
//! let mut engine = QueryEngine::new(db);
//!
//! engine.register_view("e1", regexlang::parse("a·b?").unwrap());
//! let before = engine.view_extension("e1").unwrap().len();
//!
//! // Insert an edge: the cached extension is repaired, not recomputed.
//! let n2 = engine.db().node_by_name("n2").unwrap();
//! let n0 = engine.db().node_by_name("n0").unwrap();
//! let a = engine.db().domain().symbol("a").unwrap();
//! engine.add_edge(n2, a, n0);
//! assert!(engine.view_extension("e1").unwrap().len() > before);
//! assert_eq!(engine.stats().view_delta_repairs, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod delta;
pub mod fingerprint;
pub mod parallel;
pub mod query_engine;

pub use cache::CompileCache;
pub use delta::delta_pairs;
pub use fingerprint::{fingerprint_nfa, fingerprint_regex, Fingerprint};
pub use parallel::{available_threads, eval_csr_parallel};
pub use query_engine::{EngineConfig, EngineStats, QueryEngine};
