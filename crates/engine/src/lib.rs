//! # engine — a parallel, caching, incrementally-maintained RPQ query engine
//!
//! The rest of the workspace answers regular path queries with one-shot
//! library calls: `rpq::materialize_views` re-evaluates every view from
//! scratch per database, and `graphdb::eval_dense` runs its independent
//! per-source product-BFS sweeps on a single thread.  This crate packages
//! the paper's central workload — RPQs over a database and over materialized
//! view extensions (§4 of Calvanese–De Giacomo–Lenzerini–Vardi, PODS'99) —
//! as a stateful [`QueryEngine`] with three cooperating mechanisms:
//!
//! ## Parallel evaluation
//!
//! RPQ evaluation ([`graphdb::eval_csr`]) runs one independent product-BFS
//! per source node over a shared read-only [`automata::DenseNfa`] and CSR
//! adjacency.  [`eval_csr_parallel`] shards the source range across a
//! hand-rolled scoped-thread work pool (`std::thread::scope` plus an atomic
//! chunk cursor — the build environment has no external crates): each worker
//! owns an [`graphdb::EvalScratch`] and a private answer buffer, claims
//! chunks of sources until the range is drained, and the buffers are merged
//! into the answer set at the end.  Workers only *read* shared state, so the
//! sharded evaluation is answer-identical to the sequential one by
//! construction (and pinned to it by differential tests).
//!
//! ## The caches and the revision counter
//!
//! The engine owns its [`graphdb::GraphDb`] together with the frozen CSR
//! adjacencies (outgoing for forward sweeps, always current; incoming
//! frozen on demand for the backward sweeps of delta maintenance) and a
//! monotone **revision** counter that bumps on every mutation.  Three
//! caches hang off this state:
//!
//! * a **compile cache** ([`CompileCache`]): frozen [`automata::DenseNfa`]s
//!   keyed by a 128-bit fingerprint of the regex (rendering + alphabet) or
//!   NFA (structure + alphabet).  Freezing — ε-closure precomputation and
//!   CSR layout — happens once per distinct query/view/rewriting automaton,
//!   no matter how many times or over how many revisions it is evaluated.
//! * a **view-extension cache**: each registered view stores its
//!   materialized extension tagged with the revision it is valid at
//!   (conceptually keyed by `(db revision, view name)`).  Extensions are
//!   materialized lazily, repaired incrementally on mutation (below), and
//!   only re-materialized from scratch when no valid cached state exists.
//! * an **answer cache**: ad-hoc query answers keyed by
//!   `(fingerprint, revision)`.  Answers are only ever served on an *exact*
//!   revision match, so both growth (insertions) and shrinkage (deletions)
//!   of the true answer are safe: entries from retired revisions are
//!   evicted lazily, never returned.
//!
//! ## Incremental maintenance under edge insertion
//!
//! RPQ answers are *monotone* under edge insertion
//! ([`QueryEngine::add_edge`] / [`QueryEngine::add_edges`]): inserting an
//! edge only ever adds pairs.  On insertion of `u --a--> v` the engine
//! repairs every cached view extension with a **delta product-BFS**
//! ([`delta_pairs`]) instead of re-materializing: every new answer pair
//! crosses the new edge, so for each automaton transition `q --a--> q'`:
//!
//! * a *backward* sweep over the incoming CSR and the reversed ε-closed
//!   transition table ([`automata::DenseReverse`]) finds the sources `x`
//!   with `(x, start) →* (u, q)`, and
//! * a *forward* sweep from `(v, q')` (memoized per `q'`) finds the targets
//!   `y` from which acceptance is reachable;
//!
//! their cross product is exactly the set of candidate new pairs, and both
//! sweeps run over the *updated* graph so paths crossing the new edge
//! several times are found too.  Cost is `O(|Q|·(V+E)·|Q|)` per inserted
//! edge versus `O(V·(V+E)·|Q|)` for a from-scratch re-materialization — the
//! win the `engine` criterion bench and `BENCH_rpq.json` track.
//!
//! ## Incremental maintenance under edge deletion (DRed)
//!
//! Deletion ([`QueryEngine::remove_edge`] / [`QueryEngine::remove_edges`])
//! is **non-monotone**: a cached pair survives iff *some* witness path
//! avoids every deleted edge.  The engine maintains extensions with two
//! mechanisms, cheapest first:
//!
//! * **Support counts.**  The database is a multigraph; deleting one copy
//!   of an edge whose triple retains a surviving parallel copy
//!   ([`graphdb::GraphDb::edge_multiplicity`] > 0) cannot change any
//!   answer, so the repair is skipped outright (the
//!   [`EngineStats::deletion_support_skips`] counter pins the fast path).
//! * **DRed over-deletion + re-derivation** ([`deletion_repair`]) for
//!   edges whose support dropped to zero: the same delta sweeps as
//!   insertion, run on the **pre-deletion** adjacencies, enumerate exactly
//!   the cached pairs with some derivation traversing a deleted edge; those
//!   are over-deleted, and survivors are re-derived by restarting the
//!   forward product-BFS from each affected source over the
//!   **post-deletion** graph.  The per-view repairs shard across the same
//!   scoped-thread pool as insertion repairs.
//!
//! Both paths are pinned by a 200+-case differential suite
//! (`crates/engine/tests/deletion.rs`) interleaving random insertions and
//! deletions against from-scratch re-materialization, and the
//! delta-vs-rematerialize win is tracked in the `deletion` section of
//! `BENCH_rpq.json`.
//!
//! ## The writer/snapshot split (MVCC)
//!
//! The paper's workload is read-heavy — one expensive offline rewriting
//! construction, then many cheap evaluations over materialized views — so
//! the engine is split into a single **writer** ([`QueryEngine`]) and
//! immutable, revision-pinned **read handles** ([`EngineSnapshot`]):
//!
//! * [`QueryEngine::publish_snapshot`] materializes every registered view
//!   and returns an `Arc<EngineSnapshot>` pinned to the current revision.
//!   The snapshot exposes the full read API with `&self`
//!   ([`EngineSnapshot::eval_regex`] / [`eval_nfa`](EngineSnapshot::eval_nfa)
//!   / [`eval_dfa_over_views`](EngineSnapshot::eval_dfa_over_views) /
//!   [`materialized_views`](EngineSnapshot::materialized_views) /
//!   [`view_extension`](EngineSnapshot::view_extension)) and is cheap to
//!   clone and hand to reader threads.
//! * The writer mutates **copy-on-write**: every piece of state a snapshot
//!   can see (frozen CSR adjacency, compiled automata, view extensions)
//!   sits behind an `Arc`, and every repair — the extending delta sweeps of
//!   an insertion as much as the over-deleting DRed pass of a deletion —
//!   detaches via [`Arc::make_mut`] before touching a set.  A published
//!   snapshot keeps serving exactly the answers of its revision while the
//!   writer streams mutations and publishes fresh snapshots.
//! * The **compile cache** and the **ad-hoc answer cache** are shared
//!   between the writer and all snapshots and are concurrent (sharded
//!   `RwLock`s with atomic hit/miss counters; revision-tagged answers with
//!   atomic LRU clocks, so lookups only ever take read locks).  Readers on
//!   different threads get cache hits without blocking each other; answers
//!   cached at retired revisions are evicted lazily on lookup and
//!   preferentially under capacity pressure, never served.
//!
//! `Send + Sync` types: [`EngineSnapshot`], [`CompileCache`], and every
//! frozen input they share (`CsrAdjacency`, `DenseNfa`, `DenseReverse`,
//! `Answer`, `MaterializedViews`).  The writer itself is `Send` (it owns
//! its database) but intentionally not shared: all mutation goes through
//! `&mut self`, so "one writer, many readers" is enforced by the borrow
//! checker rather than a lock.  The `&mut self` view-based query methods
//! on [`QueryEngine`] (`materialized_views` / `eval_over_views` /
//! `eval_dfa_over_views`) are thin wrappers that publish (or reuse) the
//! current snapshot and read through it; the ad-hoc methods (`eval_regex`
//! / `eval_nfa`) go through the same shared caches directly — identical
//! answers and counters, but no forced materialization of registered
//! views — so the single-threaded API keeps its cost model.
//!
//! [`Arc::make_mut`]: std::sync::Arc::make_mut
//!
//! ## Error handling & query budgets (the serving layer)
//!
//! Every engine path reachable from untrusted input has a fallible variant
//! returning [`EngineError`] — [`QueryEngine::try_eval_str`] /
//! [`EngineSnapshot::try_eval_str`] for queries,
//! [`QueryEngine::try_add_edges`] / [`QueryEngine::try_remove_edges`] (and
//! the `_named` forms) for mutations with whole-batch validate-before-mutate
//! semantics, [`QueryEngine::try_register_view`] for view registration, and
//! [`QueryEngine::try_with_config`] for strict configuration validation.
//! The historical panicking methods delegate to them and re-panic with the
//! error's `Display`, so their messages are unchanged.
//!
//! Long-running evaluations accept a [`QueryBudget`] (wall-clock deadline,
//! visited-pair cap, cancel flag), threaded down to the product-BFS hot loop
//! where it is checked cooperatively every
//! [`graphdb::SWEEP_CHECK_INTERVAL`] pops
//! ([`QueryEngine::eval_str_budgeted`] /
//! [`EngineSnapshot::eval_str_budgeted`] /
//! [`parallel::eval_csr_parallel_budgeted`]).  An unlimited budget compiles
//! the checks out of the loop entirely.  Mutations take budgets over their
//! *repair* phase ([`QueryEngine::try_add_edges_budgeted`] /
//! [`QueryEngine::try_remove_edges_budgeted`]): once validated, the
//! mutation always applies — a tripped budget degrades by dropping the
//! affected views' cached extensions (counted by
//! [`EngineStats::repair_budget_drops`]) rather than failing the call.
//! [`EngineConfig::snapshot_keep_last`] additionally retains the last K
//! published snapshots for late-arriving readers.  The `service` crate
//! builds a line-delimited JSON TCP server on exactly these hooks.
//!
//! ## Telemetry
//!
//! Beside the counters ([`EngineStats`]) the engine collects *timing*:
//! [`EngineTelemetry`] (shared writer ↔ snapshots like the counters) holds
//! lock-free latency histograms for evaluation / compilation / product-BFS /
//! repair / snapshot-publish plus the pinned-snapshot-age gauge window, and
//! [`EngineSnapshot::eval_str_traced`] threads a per-query
//! [`TraceContext`] through the pipeline, recording phase spans (parse,
//! cache-lookup, compile, product-BFS, chunk-merge) with per-worker
//! chunk-acquire/sweep attribution from
//! [`eval_csr_parallel_breakdown`].  Collection is gated by
//! [`EngineConfig::telemetry`]; recording happens only at phase and chunk
//! boundaries, never inside the pop loop (`experiments -- metrics` asserts
//! the on/off difference stays under 5%).
//!
//! ## The interactive read path
//!
//! Full materialization answers "all pairs"; interactive callers usually
//! ask two narrower questions.  [`EngineSnapshot::eval_pair_str`] answers
//! "is `t` reachable from `s`?" with a bidirectional meet-in-the-middle
//! search (forward over the outgoing CSR from `(s, q₀)`, backward over the
//! incoming CSR from the accepting states, always expanding the smaller
//! frontier) that exits on the first frontier intersection.
//! [`EngineSnapshot::eval_from_str`] answers "what is reachable from `s`?"
//! — optionally top-k via `limit` — with a product-BFS seeded only at `s`.
//! Both are served without any search when a materialized answer is
//! resident: the full extension in the ad-hoc answer cache, or a complete
//! single-source drain in the **point-query cache** (keyed
//! `(query, source)`, same exact-revision regime as the answer cache, so
//! DRed deletions can never leak a stale target list).  Partial results —
//! limit-truncated or budget-interrupted — are never cached.
//!
//! # Examples
//!
//! The full lifecycle — build a database, register a view, publish a
//! snapshot, mutate (insert *and* delete), and read back at the pinned
//! revision:
//!
//! ```
//! use automata::Alphabet;
//! use engine::QueryEngine;
//! use graphdb::GraphDb;
//!
//! let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
//! db.add_edge_named("n0", "a", "n1");
//! db.add_edge_named("n1", "b", "n2");
//! let mut engine = QueryEngine::new(db);
//!
//! engine.register_view("e1", regexlang::parse("a·b?").unwrap());
//! let before = engine.view_extension("e1").unwrap().len();
//!
//! // Pin the current revision for concurrent readers.
//! let snapshot = engine.publish_snapshot();
//! assert_eq!(snapshot.revision(), 0);
//!
//! // Insert an edge: the cached extension is repaired (delta product-BFS),
//! // not recomputed.
//! let n2 = engine.db().node_by_name("n2").unwrap();
//! let n0 = engine.db().node_by_name("n0").unwrap();
//! let a = engine.db().domain().symbol("a").unwrap();
//! engine.add_edge(n2, a, n0);
//! let grown = engine.view_extension("e1").unwrap().len();
//! assert!(grown > before);
//! assert_eq!(engine.stats().view_delta_repairs, 1);
//!
//! // Delete an edge: the cached extension is repaired DRed-style
//! // (over-delete + re-derive), again without re-materializing.
//! engine.remove_edge(n2, a, n0);
//! assert_eq!(engine.view_extension("e1").unwrap().len(), before);
//! assert_eq!(engine.stats().view_deletion_repairs, 1);
//! assert_eq!(engine.stats().view_full_materializations, 1);
//!
//! // The pinned snapshot still answers exactly at revision 0 — both
//! // mutations happened copy-on-write behind it.
//! assert_eq!(snapshot.view_extension("e1").unwrap().len(), before);
//! assert_eq!(engine.revision(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod budget;
pub mod cache;
pub mod delta;
pub mod error;
pub mod fingerprint;
pub mod metrics;
pub mod parallel;
pub mod query_engine;
pub mod snapshot;

pub use budget::QueryBudget;
pub use cache::CompileCache;
pub use delta::{delta_pairs, deletion_repair, deletion_repair_budgeted, DeletionRepairReport};
pub use error::EngineError;
pub use fingerprint::{fingerprint_nfa, fingerprint_regex, Fingerprint};
pub use metrics::EngineTelemetry;
pub use parallel::{
    available_threads, eval_csr_parallel, eval_csr_parallel_breakdown, eval_csr_parallel_budgeted,
    eval_csr_parallel_budgeted_breakdown,
};
pub use query_engine::{EngineConfig, EngineStats, QueryEngine};
pub use snapshot::EngineSnapshot;
// Re-exported so interactive-read-path callers (`eval_from_str` returns a
// `Reachable`) don't need a direct `graphdb` dependency.
pub use graphdb::Reachable;
// Re-exported so engine users can consume traces and breakdowns without a
// direct `telemetry` dependency.
pub use telemetry::{ParallelBreakdown, Phase, Span, TraceContext, WorkerTiming};
